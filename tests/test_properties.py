"""Tests for the property classifiers in ``repro.verify.properties``."""

import pickle

from repro import smt
from repro.dataplane import Pipeline
from repro.dataplane.elements import CheckIPHeader, DecIPTTL
from repro.symbex.segment import SegmentOutcome, SegmentSummary
from repro.verify import (
    BoundedInstructions,
    CrashFreedom,
    PipelineVerifier,
    Reachability,
    all_packets,
    destination_reachability,
)


def _segment(outcome, instructions=0, element="el"):
    return SegmentSummary(
        element_name=element,
        index=0,
        outcome=outcome,
        constraint=smt.TRUE,
        port=0 if outcome == SegmentOutcome.EMIT else None,
        instructions=instructions,
    )


class TestReachabilitySuspects:
    def test_drop_segments_are_suspect(self):
        prop = Reachability()
        assert prop.is_suspect("el", _segment(SegmentOutcome.DROP))
        assert not prop.is_suspect("el", _segment(SegmentOutcome.EMIT))
        assert not prop.is_suspect("el", _segment(SegmentOutcome.CRASH))

    def test_exempt_elements_suppress_drops(self):
        prop = Reachability(exempt_elements={"check_ip"})
        drop = _segment(SegmentOutcome.DROP, element="check_ip")
        assert not prop.is_suspect("check_ip", drop)
        # The same segment shape from a non-exempt element stays suspect.
        assert prop.is_suspect("dec_ttl", _segment(SegmentOutcome.DROP, element="dec_ttl"))

    def test_exemption_flips_the_verdict(self):
        # CheckIPHeader drops malformed packets; the paper's "unless it is
        # malformed" qualifier is exactly the exemption mechanism.
        destination = 0x0A000001
        pipeline = Pipeline.chain([CheckIPHeader(name="check_ip")], name="check-only")
        strict = PipelineVerifier(pipeline).verify(
            destination_reachability(destination), input_lengths=[24]
        )
        assert strict.violated  # a malformed packet to 10.0.0.1 is dropped

        pipeline_again = Pipeline.chain([CheckIPHeader(name="check_ip")], name="check-only")
        lenient = PipelineVerifier(pipeline_again).verify(
            destination_reachability(destination, exempt_elements={"check_ip"}),
            input_lengths=[24],
        )
        assert lenient.proved

    def test_default_predicate_admits_all_packets(self):
        assert all_packets([]) is smt.TRUE
        assert Reachability().input_predicate([]) is smt.TRUE

    def test_properties_are_picklable(self):
        prop = destination_reachability(0x0A000001, exempt_elements={"check_ip"})
        clone = pickle.loads(pickle.dumps(prop))
        packet_bytes = [smt.BitVec(f"in_b{i}", 8) for i in range(24)]
        assert clone.input_predicate(packet_bytes) is prop.input_predicate(packet_bytes)
        assert clone.exempt_elements == prop.exempt_elements
        pickle.loads(pickle.dumps(Reachability()))  # default predicate too


class TestBoundedInstructionsBoundary:
    def test_at_the_bound_is_not_suspect(self):
        prop = BoundedInstructions(bound=100)
        assert not prop.is_suspect("el", _segment(SegmentOutcome.EMIT, instructions=100))

    def test_one_over_the_bound_is_suspect(self):
        prop = BoundedInstructions(bound=100)
        assert prop.is_suspect("el", _segment(SegmentOutcome.EMIT, instructions=101))
        assert not prop.is_suspect("el", _segment(SegmentOutcome.EMIT, instructions=99))

    def test_verifier_proves_a_generous_bound_and_refutes_a_tight_one(self):
        pipeline = Pipeline.chain([DecIPTTL(name="ttl")], name="ttl-only")
        verifier = PipelineVerifier(pipeline)
        bound = verifier.instruction_bound(input_lengths=[24], find_witness=False).bound
        generous = verifier.verify(BoundedInstructions(bound=bound), input_lengths=[24])
        assert generous.proved  # segments at exactly the bound are fine
        tight = PipelineVerifier(
            Pipeline.chain([DecIPTTL(name="ttl")], name="ttl-only")
        ).verify(BoundedInstructions(bound=bound - 1), input_lengths=[24])
        assert tight.violated


class TestDestinationReachabilityOffsets:
    def test_too_short_packet_yields_no_packets_of_interest(self):
        prop = destination_reachability(0x0A000001)
        # 16-byte packets cannot hold the destination field at offset 16..19.
        packet_bytes = [smt.BitVec(f"in_b{i}", 8) for i in range(16)]
        assert prop.input_predicate(packet_bytes) is smt.FALSE

    def test_boundary_length_exactly_fits_the_field(self):
        prop = destination_reachability(0x0A000001)
        packet_bytes = [smt.BitVec(f"in_b{i}", 8) for i in range(20)]
        predicate = prop.input_predicate(packet_bytes)
        assert predicate is not smt.FALSE
        names = set(predicate.free_variables())
        assert names == {"in_b16", "in_b17", "in_b18", "in_b19"}

    def test_header_offset_shifts_the_field(self):
        prop = destination_reachability(0x0A000001, ip_header_offset=14)
        # 33 bytes: field would occupy 30..33 -> does not fit.
        assert prop.input_predicate([smt.BitVec(f"in_b{i}", 8) for i in range(33)]) is smt.FALSE
        predicate = prop.input_predicate([smt.BitVec(f"in_b{i}", 8) for i in range(34)])
        assert set(predicate.free_variables()) == {"in_b30", "in_b31", "in_b32", "in_b33"}

    def test_too_short_length_proves_trivially(self):
        # With no packets of interest the property holds vacuously — the
        # verifier must not crash composing an unsatisfiable predicate.
        pipeline = Pipeline.chain([CheckIPHeader(name="check_ip")], name="check-only")
        result = PipelineVerifier(pipeline).verify(
            destination_reachability(0x0A000001), input_lengths=[8]
        )
        assert result.proved


def test_crash_freedom_suspects_only_crashes():
    prop = CrashFreedom()
    assert prop.is_suspect("el", _segment(SegmentOutcome.CRASH))
    assert not prop.is_suspect("el", _segment(SegmentOutcome.DROP))
    assert not prop.is_suspect("el", _segment(SegmentOutcome.EMIT))
