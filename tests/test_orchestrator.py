"""Tests for the fleet orchestrator: serialization, store, workers, fleet API."""

import json

import pytest

from repro import smt
from repro.orchestrator import (
    SummaryStore,
    certify_fleet,
    decode_terms,
    dumps_summary,
    encode_terms,
    loads_summary,
    program_fingerprint,
    run_tasks,
    summarize_jobs,
    summary_key,
)
from repro.orchestrator.errors import OrchestratorError, SerializationError
from repro.symbex import SymbexOptions
from repro.symbex.engine import SymbolicEngine
from repro.verify import CrashFreedom, PipelineVerifier, SummaryCache
from repro.workloads import fleet_catalog, ip_router_elements, ip_router_pipeline
from repro.workloads.pipelines import SyntheticBranchyElement


CONCRETE = SymbexOptions(static_table_mode="concrete")
HAVOC = SymbexOptions(static_table_mode="havoc")


def _summarize(element, length=24, **options):
    engine = SymbolicEngine(SymbexOptions(**options))
    return engine.summarize_element(
        element.program,
        length,
        tables=element.state.tables(),
        element_name=element.name,
        configuration_key=element.configuration_key(),
    )


class TestTermSerialization:
    def test_roundtrip_reinterns_to_identical_terms(self):
        x, y = smt.BitVec("x", 8), smt.BitVec("y", 8)
        term = smt.And(smt.ULT(x, 10), smt.Eq(x + y, smt.BitVecVal(3, 8)))
        decoded = decode_terms(encode_terms([term]))[0]
        # Decoding re-interns: the canonical instance is *the same object*.
        assert decoded is term

    def test_shared_subterms_are_emitted_once(self):
        x = smt.BitVec("x", 32)
        shared = (x + 1) * (x + 1)
        sum_term = shared + shared
        payload = encode_terms([smt.Eq(sum_term, smt.BitVecVal(0, 32))])
        # Node count equals the DAG size, not the tree size.
        root = decode_terms(payload)[0]
        assert len(payload["nodes"]) == root.size()

    def test_multiple_roots_share_one_table(self):
        x = smt.BitVec("x", 8)
        a, b = smt.ULT(x, 5), smt.ULE(x, 5)
        payload = encode_terms([a, b, a])
        decoded = decode_terms(payload)
        assert decoded[0] is a and decoded[1] is b and decoded[2] is a
        # "x" appears once in the node list despite three roots using it.
        variable_nodes = [n for n in payload["nodes"] if n[0] == smt.Op.BV_VAR]
        assert len(variable_nodes) == 1

    def test_bool_constants_roundtrip(self):
        payload = encode_terms([smt.TRUE, smt.FALSE])
        assert decode_terms(payload) == [smt.TRUE, smt.FALSE]

    def test_version_mismatch_raises(self):
        payload = encode_terms([smt.TRUE])
        payload["version"] = 999
        with pytest.raises(SerializationError):
            decode_terms(payload)

    def test_forward_reference_rejected(self):
        with pytest.raises(SerializationError):
            decode_terms({"version": 1, "nodes": [["bvadd", 8, [1, 1], None, None, []]], "roots": [0]})


class TestSummarySerialization:
    def test_roundtrip_preserves_segments(self):
        element = ip_router_elements(3)[0]  # CheckIPHeader
        summary = _summarize(element)
        loaded = loads_summary(dumps_summary(summary))
        assert loaded.element_name == summary.element_name
        assert loaded.configuration_key == summary.configuration_key
        assert loaded.input_length == summary.input_length
        assert len(loaded.segments) == len(summary.segments)
        for fresh, roundtripped in zip(summary.segments, loaded.segments):
            assert roundtripped.constraint is fresh.constraint  # re-interned
            assert roundtripped.outcome == fresh.outcome
            assert roundtripped.port == fresh.port
            assert roundtripped.instructions == fresh.instructions
            assert tuple(roundtripped.output_bytes) == tuple(fresh.output_bytes)

    def test_roundtrip_preserves_havoc_and_table_writes(self):
        # NetFlow reads and writes its private flow table.
        from repro.dataplane.elements import NetFlow

        summary = _summarize(NetFlow(name="nf"), length=24)
        loaded = loads_summary(dumps_summary(summary))
        fresh_havocs = [s.havoc_reads for s in summary.segments]
        loaded_havocs = [s.havoc_reads for s in loaded.segments]
        assert loaded_havocs == fresh_havocs
        assert any(s.table_writes for s in loaded.segments)

    def test_loaded_summaries_verify_identically(self):
        """The tentpole invariant: verification over loaded summaries equals
        verification over freshly computed ones — verdicts and packets."""
        pipeline = ip_router_pipeline(length=3)
        fresh_verifier = PipelineVerifier(pipeline, options=SymbexOptions())
        fresh = fresh_verifier.verify(CrashFreedom(), input_lengths=[24])

        # Round-trip every cached summary through JSON into a new cache.
        seeded = SummaryCache(SymbexOptions())
        elements = {element.name: element for element in pipeline.elements}
        for (config_key, length, _mode), summary in fresh_verifier.cache._summaries.items():
            loaded = loads_summary(dumps_summary(summary))
            seeded.seed(elements[loaded.element_name], length, loaded)

        pipeline_again = ip_router_pipeline(length=3)
        reverifier = PipelineVerifier(pipeline_again, options=SymbexOptions(), cache=seeded)
        again = reverifier.verify(CrashFreedom(), input_lengths=[24])
        assert seeded.statistics.misses == 0  # nothing re-executed
        assert again.verdict == fresh.verdict
        assert [c.packet for c in again.counterexamples] == [
            c.packet for c in fresh.counterexamples
        ]


class TestSummaryStore:
    def test_save_load(self, tmp_path):
        element = ip_router_elements(1)[0]
        summary = _summarize(element)
        store = SummaryStore(tmp_path / "store")
        digest = store.save(element, 24, CONCRETE, summary)
        assert len(store) == 1
        loaded = store.load(element, 24, CONCRETE)
        assert loaded is not None and len(loaded.segments) == len(summary.segments)
        assert store.statistics.hits == 1 and store.statistics.puts == 1
        assert store.load_digest(digest) is not None

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path)
        assert store.load(element, 24, CONCRETE) is None
        digest = store.save(element, 24, CONCRETE, _summarize(element))
        path = store._path(digest)
        path.write_text("{not json")
        assert store.load(element, 24, CONCRETE) is None
        assert store.statistics.corrupt_entries == 1
        # Version-mismatched payloads are also treated as misses.
        path.write_text(json.dumps({"version": 999}))
        assert store.load(element, 24, CONCRETE) is None

    def test_corrupt_entries_are_quarantined_not_reparsed(self, tmp_path):
        # The satellite fix: a corrupt entry used to stay in place, so
        # every warm run re-read and re-parsed the same garbage.  Now the
        # first detection moves it aside; later loads are plain misses.
        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path)
        digest = store.save(element, 24, CONCRETE, _summarize(element))
        path = store._path(digest)
        path.write_text("{not json")

        assert store.load(element, 24, CONCRETE) is None
        assert store.statistics.corrupt_entries == 1
        assert store.statistics.quarantined == 1
        assert not path.exists()  # moved aside: the garbage is gone
        assert path.with_name(path.name + ".corrupt").exists()  # kept for post-mortem
        assert len(store) == 0  # quarantined entries are not live entries

        # The second load never touches the garbage again: a plain miss,
        # no new corruption detected.
        assert store.load(element, 24, CONCRETE) is None
        assert store.statistics.corrupt_entries == 1
        assert store.statistics.misses == 2

        # Recomputing overwrites the digest; gc sweeps the quarantine file.
        store.save(element, 24, CONCRETE, _summarize(element))
        assert store.load(element, 24, CONCRETE) is not None
        result = store.gc()
        assert result.removed_debris == 1 and result.kept_entries == 1
        assert not path.with_name(path.name + ".corrupt").exists()

    def test_gc_evicts_old_entries(self, tmp_path):
        import os
        import time

        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path)
        digest = store.save(element, 24, CONCRETE, _summarize(element))
        old = time.time() - 3600
        os.utime(store._path(digest), (old, old))
        kept = store.gc(older_than_seconds=7200)
        assert kept.removed_entries == 0 and kept.kept_entries == 1
        # A hit refreshes the mtime: entries that are *read* stay warm, so
        # "older than" means "not touched", not "not rewritten".
        assert store.load(element, 24, CONCRETE) is not None
        assert store.gc(older_than_seconds=1800).removed_entries == 0
        os.utime(store._path(digest), (old, old))
        swept = store.gc(older_than_seconds=60)
        assert swept.removed_entries == 1 and swept.bytes_freed > 0
        assert len(store) == 0

    def test_key_distinguishes_length_mode_and_config(self):
        a, b = SyntheticBranchyElement(2, name="a"), SyntheticBranchyElement(3, name="b")
        assert summary_key(a, 24, CONCRETE) != summary_key(a, 32, CONCRETE)
        assert summary_key(a, 24, CONCRETE) != summary_key(a, 24, HAVOC)
        assert summary_key(a, 24, CONCRETE) != summary_key(b, 24, CONCRETE)

    def test_key_covers_summary_shaping_options(self):
        # Options that change summary content partition the store; the
        # incremental toggle (differentially tested to agree) does not.
        element = SyntheticBranchyElement(2, name="opts")
        base = summary_key(element, 24, SymbexOptions())
        assert base != summary_key(element, 24, SymbexOptions(prune_infeasible_branches=False))
        assert base != summary_key(element, 24, SymbexOptions(solver_max_conflicts=10))
        assert base == summary_key(element, 24, SymbexOptions(incremental=False))
        assert base == summary_key(element, 24, SymbexOptions(max_paths=7))

    def test_verifier_rejects_cache_plus_store(self, tmp_path):
        from repro.verify import VerificationError

        with pytest.raises(VerificationError):
            PipelineVerifier(
                ip_router_pipeline(length=1),
                cache=SummaryCache(SymbexOptions()),
                store=SummaryStore(tmp_path),
            )

    def test_key_covers_static_table_contents(self, tmp_path):
        # Two elements with identical programs and default configuration
        # keys but different *static table contents* must not share a
        # store entry in concrete mode: the contents are baked into the
        # summary terms, so serving one for the other is unsound.
        from repro.dataplane import Element
        from repro.dataplane.state import ElementState, StaticExactTable
        from repro.ir import ElementProgram, ProgramBuilder

        class StaticMarker(Element):
            def __init__(self, entries, name=None):
                super().__init__(name=name)
                self.entries = entries

            def build_program(self) -> ElementProgram:
                builder = ProgramBuilder(self.name)
                builder.declare_table("marks", kind="static")
                key = builder.let("key", builder.load(0, 1))
                value, found = builder.table_read("marks", key, "mark", "mark_found")
                with builder.if_(found):
                    builder.store(1, 1, value)
                builder.emit(0)
                return builder.build()

            def create_state(self) -> ElementState:
                state = ElementState()
                state.add_table("marks", StaticExactTable(self.entries))
                return state

        first = StaticMarker({1: 2}, name="m1")
        second = StaticMarker({1: 3}, name="m2")
        assert summary_key(first, 24, CONCRETE) != summary_key(second, 24, CONCRETE)
        # Under havoc'd tables the contents are unobservable: keys may share.
        assert summary_key(first, 24, HAVOC) == summary_key(second, 24, HAVOC)

        store = SummaryStore(tmp_path)
        store.save(first, 24, CONCRETE, _summarize(first))
        assert store.load(second, 24, CONCRETE) is None  # no stale hit

    def test_key_ignores_instance_names(self):
        # Same configuration, different instance names -> same store entry,
        # even for programs whose loop ids embed the element name.
        from repro.dataplane.elements import CheckIPHeader

        first = CheckIPHeader(name="check_a", verify_checksum=True)
        second = CheckIPHeader(name="check_b", verify_checksum=True)
        assert program_fingerprint(first) == program_fingerprint(second)
        assert summary_key(first, 24, CONCRETE) == summary_key(second, 24, CONCRETE)

    def test_key_ignores_names_that_occur_in_the_render(self):
        # A one-letter name like "e" appears all over a naive repr render
        # ("PacketLength", "Reg") — the fingerprint must not depend on it.
        from repro.dataplane.elements import Classifier

        short = Classifier(["16/06"], name="e")
        longer = Classifier(["16/06"], name="zz")
        assert program_fingerprint(short) == program_fingerprint(longer)

    def test_key_distinguishes_branch_body_configuration(self):
        # If/While repr abbreviates nested blocks; the fingerprint render
        # must recurse into them, or configs differing only inside a
        # branch body would share (and poison) one summary.
        from repro.dataplane import Element
        from repro.ir import ElementProgram, ProgramBuilder

        class Masker(Element):
            def __init__(self, mask, name=None):
                super().__init__(name=name)
                self.mask = mask

            def build_program(self) -> ElementProgram:
                builder = ProgramBuilder(self.name)
                value = builder.let("value", builder.load(0, 1))
                with builder.if_(value > 0):
                    builder.store(1, 1, builder.load(1, 1) & self.mask)
                builder.emit(0)
                return builder.build()

        first, second = Masker(0x10, name="a"), Masker(0xF0, name="b")
        assert program_fingerprint(first) != program_fingerprint(second)
        assert summary_key(first, 4, CONCRETE) != summary_key(second, 4, CONCRETE)

    def test_clear(self, tmp_path):
        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path)
        store.save(element, 24, CONCRETE, _summarize(element))
        assert store.clear() == 1
        assert len(store) == 0


class TestTieredCache:
    def test_l1_l2_miss_split_and_live_entries(self, tmp_path):
        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path)
        cache = SummaryCache(SymbexOptions(), store=store)

        cache.summarize(element, 24)  # miss -> compute + write-through
        cache.summarize(element, 24)  # L1 hit
        assert (cache.statistics.misses, cache.statistics.l1_hits, cache.statistics.l2_hits) == (1, 1, 0)
        assert cache.statistics.entries == 1
        assert cache.statistics.hits == 1

        cache.invalidate()
        assert cache.statistics.entries == 0  # the satellite fix: not `misses`

        cache.summarize(element, 24)  # L2 hit: loaded from store, no symbex
        assert cache.statistics.l2_hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.entries == 1

    def test_entries_tracks_live_summaries_without_store(self):
        cache = SummaryCache(SymbexOptions())
        element = ip_router_elements(1)[0]
        cache.summarize(element, 24)
        cache.summarize(element, 32)
        assert cache.statistics.entries == 2 == len(cache)
        cache.invalidate()
        assert cache.statistics.entries == 0 == len(cache)


def _double(value):
    return value * 2


class TestWorkers:
    def test_run_tasks_preserves_order(self):
        payloads = list(range(8))
        assert run_tasks(_double, payloads, workers=1) == run_tasks(_double, payloads, workers=3)

    def test_summarize_jobs_parallel_matches_serial(self):
        jobs = [
            (SyntheticBranchyElement(2, name="s2"), 12),
            (SyntheticBranchyElement(3, name="s3"), 12),
        ]
        options = SymbexOptions()
        serial = summarize_jobs(jobs, options, workers=1)
        parallel = summarize_jobs(jobs, options, workers=2)
        for (_, fresh, _), (_, shipped, _) in zip(serial, parallel):
            assert [s.outcome for s in fresh.segments] == [s.outcome for s in shipped.segments]
            assert [s.constraint is t.constraint for s, t in zip(fresh.segments, shipped.segments)]

    def test_summarize_jobs_uses_store(self, tmp_path):
        from repro.orchestrator.workers import COMPUTED, LOADED

        element = SyntheticBranchyElement(2, name="stored")
        options = SymbexOptions()
        first = summarize_jobs([(element, 12)], options, workers=1, store=str(tmp_path))
        second = summarize_jobs([(element, 12)], options, workers=1, store=str(tmp_path))
        assert first[0][0] == COMPUTED
        assert second[0][0] == LOADED
        assert len(second[0][1].segments) == len(first[0][1].segments)

    def test_path_explosion_is_shipped_not_raised(self):
        from repro.orchestrator.workers import EXPLODED

        jobs = [(SyntheticBranchyElement(6, name="wide"), 12)]
        results = summarize_jobs(jobs, SymbexOptions(max_paths=4, merge="off"), workers=2)
        status, summary, detail = results[0]
        assert status == EXPLODED and summary is None and "budget" in detail
        # The explosion names the offending element so EXPLODED jobs and
        # trace summaries can attribute it.
        assert "wide" in detail


class TestFleet:
    @pytest.fixture(scope="class")
    def catalog(self):
        return fleet_catalog(4)

    def test_serial_certification_and_dedupe(self, catalog):
        report = certify_fleet(catalog, [CrashFreedom()], input_lengths=(24,))
        assert len(report.certifications) == len(catalog)
        assert all(c.certified for c in report.certifications)
        stats = report.statistics
        # The catalog shares element configurations: far fewer distinct
        # Step-1 jobs than element instances.
        assert stats.distinct_summary_jobs < stats.element_instances
        assert stats.summaries_computed == stats.distinct_summary_jobs

    def test_warm_store_computes_nothing(self, catalog, tmp_path):
        store = SummaryStore(tmp_path)
        cold = certify_fleet(catalog, [CrashFreedom()], input_lengths=(24,), store=store)
        warm = certify_fleet(
            fleet_catalog(4), [CrashFreedom()], input_lengths=(24,), store=SummaryStore(tmp_path)
        )
        assert cold.statistics.summaries_computed > 0
        assert warm.statistics.summaries_computed == 0
        assert warm.statistics.store_hits == cold.statistics.summaries_computed
        assert warm.verdicts() == cold.verdicts()

    def test_parallel_matches_serial(self, catalog, tmp_path):
        serial = certify_fleet(catalog, [CrashFreedom()], input_lengths=(24,))
        parallel = certify_fleet(
            fleet_catalog(4),
            [CrashFreedom()],
            input_lengths=(24,),
            workers=2,
            store=SummaryStore(tmp_path),
        )
        assert parallel.verdicts() == serial.verdicts()
        serial_packets = [
            [ce.packet for result in c.results for ce in result.counterexamples]
            for c in serial.certifications
        ]
        parallel_packets = [
            [ce.packet for result in c.results for ce in result.counterexamples]
            for c in parallel.certifications
        ]
        assert parallel_packets == serial_packets

    def test_parallel_without_store_uses_ephemeral(self):
        report = certify_fleet(fleet_catalog(2), [CrashFreedom()], input_lengths=(24,), workers=2)
        assert len(report.certifications) == 2

    def test_budget_explosion_degrades_identically_in_both_modes(self):
        from repro.workloads import synthetic_pipeline

        # merge=off: state merging would collapse the branchy element under
        # the starved budget, defeating the manufactured explosion.
        options = SymbexOptions(max_paths=4, merge="off")  # starves Step-1
        serial = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), workers=1, options=options,
        )
        parallel = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), workers=2, options=options,
        )
        assert serial.verdicts() == parallel.verdicts()
        assert serial.verdicts()[0][2] == "unknown"

    def test_instruction_bounds(self):
        report = certify_fleet(
            fleet_catalog(2), [CrashFreedom()], input_lengths=(24,), instruction_bounds=True
        )
        assert all(
            c.instruction_bound is not None and c.instruction_bound.bound > 0
            for c in report.certifications
        )

    def test_rejects_multi_entry_pipeline(self):
        from repro.dataplane import Pipeline
        from repro.dataplane.elements import Discard

        pipeline = Pipeline(name="two-entries")
        sink = Discard(name="sink")
        pipeline.connect(SyntheticBranchyElement(1, name="a"), sink)
        pipeline.connect(SyntheticBranchyElement(1, offset=2, name="b"), sink)
        with pytest.raises(OrchestratorError):
            certify_fleet([pipeline], [CrashFreedom()])
