"""Tests for the dataplane framework: packets, state isolation, pipelines, config, driver."""

import pytest

from repro.dataplane import (
    ELEMENT_REGISTRY,
    Packet,
    PacketOwnershipError,
    Pipeline,
    PipelineConfigurationError,
    PipelineDriver,
    StateIsolationError,
    parse_click_config,
    split_config_args,
)
from repro.dataplane.elements import (
    CheckIPHeader,
    Classifier,
    Counter,
    DecIPTTL,
    Discard,
    EthDecap,
    EthEncap,
    IPLookup,
    IPOptions,
    PassThrough,
    Strip,
)
from repro.dataplane.state import ElementState, ExactMatchTable, LpmTable, StaticExactTable
from repro.workloads import PacketWorkload, well_formed_ip_packet


class TestPacketOwnership:
    def test_owner_can_access(self):
        owner = object()
        packet = Packet(b"abc", owner=owner)
        assert bytes(packet.data(owner)) == b"abc"
        packet.metadata(owner)["x"] = 1

    def test_non_owner_cannot_access(self):
        owner, intruder = object(), object()
        packet = Packet(b"abc", owner=owner)
        with pytest.raises(PacketOwnershipError):
            packet.data(intruder)
        with pytest.raises(PacketOwnershipError):
            packet.metadata(intruder)

    def test_transfer_revokes_previous_owner(self):
        first, second = object(), object()
        packet = Packet(b"abc", owner=first)
        packet.transfer(first, second)
        with pytest.raises(PacketOwnershipError):
            packet.data(first)
        assert bytes(packet.data(second)) == b"abc"

    def test_only_owner_may_transfer(self):
        first, second, thief = object(), object(), object()
        packet = Packet(b"abc", owner=first)
        with pytest.raises(PacketOwnershipError):
            packet.transfer(thief, second)

    def test_killed_packet_is_inaccessible(self):
        owner = object()
        packet = Packet(b"abc", owner=owner)
        packet.kill(owner)
        assert not packet.alive
        with pytest.raises(PacketOwnershipError):
            packet.data(owner)

    def test_acquire_unowned(self):
        packet = Packet(b"abc")
        owner = object()
        packet.acquire(owner)
        with pytest.raises(PacketOwnershipError):
            packet.acquire(object())

    def test_clone_is_unowned(self):
        owner = object()
        packet = Packet(b"abc", {"m": 1}, owner=owner)
        clone = packet.clone()
        assert clone.owner is None
        clone.acquire(object())


class TestState:
    def test_exact_match_table(self):
        table = ExactMatchTable()
        assert table.read(1) == (0, False)
        table.write(1, 42)
        assert table.read(1) == (42, True)

    def test_exact_match_capacity_eviction(self):
        table = ExactMatchTable(capacity=2)
        table.write(1, 1)
        table.write(2, 2)
        table.write(3, 3)
        assert len(table) == 2
        assert table.read(1) == (0, False)  # oldest evicted
        assert table.read(3) == (3, True)

    def test_static_table_rejects_writes(self):
        table = StaticExactTable({1: 2})
        assert table.read(1) == (2, True)
        with pytest.raises(StateIsolationError):
            table.write(1, 3)

    def test_lpm_table_adapter(self):
        table = LpmTable()
        table.add_route("10.0.0.0/8", 3)
        assert table.read(0x0A000001) == (3, True)
        assert table.read(0x0B000001) == (0, False)
        with pytest.raises(StateIsolationError):
            table.write(0, 0)

    def test_element_state_dispatch_and_isolation(self):
        state = ElementState()
        state.add_table("private", ExactMatchTable())
        state.add_table("static", StaticExactTable({5: 6}))
        state.table_write("private", 1, 2)
        assert state.table_read("private", 1) == (2, True)
        assert state.table_read("static", 5) == (6, True)
        with pytest.raises(StateIsolationError):
            state.table_write("static", 5, 7)
        with pytest.raises(StateIsolationError):
            state.table("missing")
        with pytest.raises(StateIsolationError):
            state.add_table("private", ExactMatchTable())


class TestPipeline:
    def test_chain_and_routing(self):
        a, b, c = PassThrough(name="a"), PassThrough(name="b"), Discard(name="c")
        pipeline = Pipeline.chain([a, b, c], name="chain")
        assert pipeline.downstream(a, 0) == (b, 0)
        assert pipeline.downstream(b, 0) == (c, 0)
        assert pipeline.downstream(c, 0) is None
        assert pipeline.entry_elements() == [a]

    def test_duplicate_port_connection_rejected(self):
        a, b, c = PassThrough(name="a"), PassThrough(name="b"), PassThrough(name="c")
        pipeline = Pipeline()
        pipeline.connect(a, b)
        with pytest.raises(PipelineConfigurationError):
            pipeline.connect(a, c)

    def test_invalid_port_rejected(self):
        a, b = PassThrough(name="a"), PassThrough(name="b")
        with pytest.raises(PipelineConfigurationError):
            Pipeline().connect(a, b, source_port=5)

    def test_cycle_detected(self):
        a, b = PassThrough(name="a"), PassThrough(name="b")
        pipeline = Pipeline()
        pipeline.connect(a, b)
        pipeline.connect(b, a)
        with pytest.raises(PipelineConfigurationError):
            pipeline.validate()

    def test_element_paths_enumeration(self):
        classifier = Classifier(["12/0800", "-"], name="cls")
        left, right = Discard(name="left"), Discard(name="right")
        pipeline = Pipeline()
        pipeline.connect(classifier, left, source_port=0)
        pipeline.connect(classifier, right, source_port=1)
        paths = pipeline.element_paths()
        assert len(paths) == 2

    def test_duplicate_names_rejected(self):
        pipeline = Pipeline()
        pipeline.add_element(PassThrough(name="same"))
        with pytest.raises(PipelineConfigurationError):
            pipeline.add_element(PassThrough(name="same"))


class TestConfigParser:
    def test_declarations_and_connections(self):
        pipeline = parse_click_config(
            """
            // the classic front end
            cls :: Classifier(12/0800, -);
            chk :: CheckIPHeader();
            cls[0] -> EthDecap() -> chk -> Discard();
            cls[1] -> Discard();
            """
        )
        pipeline.validate()
        assert len(pipeline.elements) == 5
        assert pipeline.element("cls").num_output_ports == 2

    def test_config_args_splitting(self):
        assert split_config_args("a, b, c") == ["a", "b", "c"]
        assert split_config_args("10.0.0.0/8 0, 0.0.0.0/0 1") == ["10.0.0.0/8 0", "0.0.0.0/0 1"]
        assert split_config_args("") == []

    def test_unknown_element_rejected(self):
        from repro.dataplane import UnknownElementError

        with pytest.raises(UnknownElementError):
            parse_click_config("x :: NoSuchElement();")

    def test_registry_contains_standard_elements(self):
        for name in ("Classifier", "CheckIPHeader", "IPLookup", "DecIPTTL", "IPOptions",
                     "EtherEncap", "Strip", "Discard", "Counter", "NetFlow", "NAT"):
            assert name in ELEMENT_REGISTRY

    def test_parsed_pipeline_runs_packets(self):
        pipeline = parse_click_config(
            """
            chk :: CheckIPHeader();
            rt :: IPLookup(0.0.0.0/0 0);
            chk -> rt -> DecIPTTL() -> Discard();
            """
        )
        driver = PipelineDriver(pipeline)
        trace = driver.inject(well_formed_ip_packet(), entry=pipeline.element("chk"))
        assert trace.final_outcome == "drop"  # ends in Discard
        assert [hop.element_name for hop in trace.hops][:3] == ["chk", "rt"] + [trace.hops[2].element_name]


class TestDriver:
    def build_router(self):
        elements = [
            CheckIPHeader(name="chk"),
            IPLookup([("10.0.0.0/8", 0), ("0.0.0.0/0", 1)], name="rt"),
            DecIPTTL(name="ttl"),
            IPOptions(name="opts"),
        ]
        return Pipeline.chain(elements, name="router"), elements

    def test_delivery_and_statistics(self):
        pipeline, _elements = self.build_router()
        driver = PipelineDriver(pipeline)
        trace = driver.inject(well_formed_ip_packet(dst="10.1.2.3"))
        assert trace.delivered and trace.egress_element == "opts"
        assert trace.total_instructions > 0
        assert driver.statistics.packets_delivered == 1

    def test_malformed_packets_do_not_crash_the_router(self):
        pipeline, _elements = self.build_router()
        driver = PipelineDriver(pipeline)
        for packet in PacketWorkload(valid=20, malformed=20, random_blobs=20, seed=3):
            driver.inject(packet)
        assert driver.statistics.packets_crashed == 0
        assert driver.statistics.packets_in == 60

    def test_ttl_decrement_and_checksum_stay_valid(self):
        from repro.net import verify_checksum

        pipeline, _elements = self.build_router()
        driver = PipelineDriver(pipeline)
        trace = driver.inject(well_formed_ip_packet(dst="10.9.9.9", ttl=33))
        assert trace.delivered
        assert trace.output_data[8] == 32
        assert verify_checksum(trace.output_data[:20])

    def test_counter_element_counts(self):
        counter = Counter(name="count")
        pipeline = Pipeline.chain([counter, Discard(name="sink")])
        driver = PipelineDriver(pipeline)
        for _ in range(5):
            driver.inject(b"\x00" * 40)
        assert counter.packet_count == 5
        assert counter.byte_count == 200

    def test_ethernet_wrapping_roundtrip(self):
        pipeline = Pipeline.chain(
            [EthDecap(name="decap"), Strip(nbytes=1, name="strip"), EthEncap(name="encap")]
        )
        driver = PipelineDriver(pipeline)
        frame = b"\xff" * 14 + b"Zpayload"
        trace = driver.inject(frame)
        assert trace.delivered
        assert trace.output_data.endswith(b"payload")
        assert len(trace.output_data) == 14 + len(b"payload")

    def test_multiple_entry_points_require_explicit_entry(self):
        a, b, sink = PassThrough(name="a"), PassThrough(name="b"), Discard(name="sink")
        pipeline = Pipeline()
        pipeline.connect(a, sink)
        pipeline.connect(b, sink)
        driver = PipelineDriver(pipeline)
        with pytest.raises(PipelineConfigurationError):
            driver.inject(b"x")
        assert driver.inject(b"x", entry=a).final_outcome == "drop"
