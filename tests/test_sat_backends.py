"""Differential tests across the pluggable SAT backends.

The reference solver is the oracle: every other backend must agree with
it on sat/unsat for random CNF instances and random bitvector goals, and
every SAT model must evaluate the instance to true.  DIMACS emit/parse
round-trips (including assumption handling) and the subprocess bridge
are covered here too; the external-binary suite skips cleanly when no
solver is installed.
"""

import os
import random
import stat

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt import And, BitVec, Eq, Not, Or, Solver, ULE, ULT
from repro.smt.backend import (
    ARRAY,
    EXTERNAL,
    REFERENCE,
    ExternalSolver,
    available_backends,
    find_external_solver,
    make_sat_solver,
    parse_dimacs,
    parse_solver_output,
    to_dimacs,
)
from repro.smt.errors import SolverError
from repro.smt.sat import SATSolver, SatResult
from repro.smt.satcore import ArraySolver, solve_clauses


def random_cnf(rng, num_vars, num_clauses, width=4):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        clauses.append(
            [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(size)]
        )
    return clauses


def assignment_satisfies(model, clauses):
    return all(
        any((model[abs(lit)] if lit > 0 else not model[abs(lit)]) for lit in clause)
        for clause in clauses
    )


def local_backends():
    return [name for name in available_backends() if name != EXTERNAL]


class TestDifferentialCnf:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_backends_agree_on_random_cnf(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 14)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 50))
        assumptions = [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(0, 3))
        ]
        verdicts = {}
        for name in local_backends():
            solver = make_sat_solver(name, num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            status = solver.solve(assumptions)
            verdicts[name] = status
            if status == SatResult.SAT:
                model = solver.model()
                assert assignment_satisfies(model, clauses), (name, clauses, model)
                for lit in assumptions:
                    assert model[abs(lit)] is (lit > 0), (name, lit, model)
        assert len(set(verdicts.values())) == 1, verdicts

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_stream_feed_matches_per_clause_feed(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 10)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 40), width=5)
        flat = []
        for clause in clauses:
            flat.extend(clause)
            flat.append(0)
        one = ArraySolver(num_vars)
        for clause in clauses:
            one.add_clause(clause)
        bulk = ArraySolver(num_vars)
        bulk.add_clause_stream(flat)
        assert one.solve() == bulk.solve()

    def test_solve_clauses_wrapper(self):
        status, model = solve_clauses([[1, 2], [-1], [-2, 3]], num_vars=3)
        assert status == SatResult.SAT
        assert model[2] is True and model[3] is True


BV_WIDTH = 8


def random_goal(rng):
    """A random conjunction of comparisons over a few 8-bit variables."""
    variables = [BitVec(name, BV_WIDTH) for name in ("a", "b", "c")]

    def atom():
        left = rng.choice(variables)
        right = rng.choice(variables + [rng.randint(0, 255)])
        op = rng.choice([ULT, ULE, Eq, lambda x, y: Not(Eq(x, y))])
        return op(left, right)

    conjuncts = [atom() for _ in range(rng.randint(1, 5))]
    if rng.random() < 0.4:
        conjuncts.append(Or(atom(), atom()))
    return And(*conjuncts)


class TestDifferentialBitvector:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_on_random_goals(self, seed):
        rng = random.Random(seed)
        goal = random_goal(rng)
        verdicts = {}
        for name in local_backends():
            solver = Solver(sat_backend=name, enable_cache=False)
            solver.add(goal)
            status = solver.check()
            verdicts[name] = status
            if status == "sat":
                assert solver.model().satisfies(goal)
        assert len(set(verdicts.values())) == 1, verdicts

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_batched_arena_matches_sequential(self, seed):
        """Multi-slice goals through the query cache (batched arena) agree
        with the plain per-goal path on every backend."""
        rng = random.Random(seed)
        # Disjoint variable groups force multiple slices.
        groups = []
        for prefix in ("x", "y", "z"):
            variables = [BitVec(f"{prefix}{i}", BV_WIDTH) for i in range(2)]
            groups.append(
                And(
                    ULT(variables[0], rng.randint(1, 255)),
                    rng.choice([ULE, ULT, Eq])(variables[0], variables[1]),
                )
            )
        goal = And(*groups)
        for name in local_backends():
            plain = Solver(sat_backend=name, enable_cache=False)
            plain.add(goal)
            batched = Solver(
                sat_backend=name, enable_cache=False, query_cache=smt.QueryCache()
            )
            batched.add(goal)
            assert plain.check() == batched.check()
            if plain.check() == "sat":
                assert batched.model().satisfies(goal)


class TestLearnedClauseBounds:
    def _hard_instance(self, rng, num_vars=70, ratio=5.0):
        clauses = []
        for _ in range(int(num_vars * ratio)):
            chosen = rng.sample(range(1, num_vars + 1), 3)
            clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
        return clauses

    @pytest.mark.parametrize("backend", [REFERENCE, ARRAY])
    def test_max_learned_bounds_database(self, backend):
        rng = random.Random(5)
        clauses = self._hard_instance(rng)
        bounded = make_sat_solver(backend, 70, max_learned=25)
        unbounded = make_sat_solver(backend, 70)
        for clause in clauses:
            bounded.add_clause(clause)
            unbounded.add_clause(clause)
        assert bounded.solve() == unbounded.solve()
        assert bounded.db_reductions > 0
        # The bound holds between reductions up to the in-flight clauses
        # recorded since the last sweep (checked loosely: far below the
        # unbounded count on an instance this conflict-heavy).
        assert bounded.learned_clause_count <= 25

    def test_reduction_keeps_verdicts_incremental(self):
        rng = random.Random(6)
        solver = ArraySolver(50, max_learned=15)
        oracle = SATSolver(50, max_learned=15)
        for round_number in range(4):
            batch = self._hard_instance(rng, num_vars=50, ratio=1.2)
            solver.cancel()
            oracle.cancel()
            for clause in batch:
                solver.add_clause(clause)
                oracle.add_clause(clause)
            assert solver.solve() == oracle.solve()


class TestDimacs:
    def test_round_trip(self):
        clauses = [[1, -2, 3], [-1], [2, 3, -4, 4]]
        text = to_dimacs(clauses, num_vars=4)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 4
        assert parsed == clauses

    def test_round_trip_with_assumptions(self):
        clauses = [[1, 2], [-2, 3]]
        text = to_dimacs(clauses, num_vars=3, assumptions=[-1, 3])
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses + [[-1], [3]]

    def test_parse_tolerates_comments_and_multiline_clauses(self):
        text = "c a comment\np cnf 3 2\n1 2\n3 0\nc mid\n-1 -3 0\n"
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == [[1, 2, 3], [-1, -3]]

    def test_parse_rejects_malformed(self):
        with pytest.raises(SolverError):
            parse_dimacs("p cnf oops\n")
        with pytest.raises(SolverError):
            parse_dimacs("p cnf 2 1\n1 2\n")  # missing terminating 0

    def test_parse_solver_output_competition_format(self):
        status, lits = parse_solver_output("c banner\ns SATISFIABLE\nv 1 -2 3\nv 0\n")
        assert status == SatResult.SAT
        assert lits == [1, -2, 3]

    def test_parse_solver_output_minisat_result_file(self):
        status, lits = parse_solver_output("SAT\n1 -2 3 0\n")
        assert status == SatResult.SAT
        assert lits == [1, -2, 3]
        status, lits = parse_solver_output("UNSAT\n")
        assert status == SatResult.UNSAT
        assert lits == []


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            make_sat_solver("quantum")

    def test_default_is_array(self):
        assert isinstance(make_sat_solver(None), ArraySolver)
        assert isinstance(make_sat_solver(REFERENCE), SATSolver)

    def test_missing_external_binary_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVER", "/nonexistent/sat-solver")
        assert find_external_solver() is None
        with pytest.raises(SolverError):
            make_sat_solver(EXTERNAL)

    def test_available_backends_always_has_local_cores(self):
        names = available_backends()
        assert REFERENCE in names and ARRAY in names


def _fake_solver(tmp_path, script_body):
    path = tmp_path / "fake-solver"
    path.write_text("#!/bin/sh\n" + script_body)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestExternalBridge:
    def test_scripted_sat(self, tmp_path, monkeypatch):
        command = _fake_solver(tmp_path, 'echo "s SATISFIABLE"; echo "v 1 -2 0"\n')
        solver = ExternalSolver(2, command=command)
        solver.add_clause([1, -2])
        assert solver.solve() == SatResult.SAT
        assert solver.model()[1] is True and solver.model()[2] is False

    def test_scripted_unsat(self, tmp_path):
        command = _fake_solver(tmp_path, 'echo "s UNSATISFIABLE"\n')
        solver = ExternalSolver(1, command=command)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == SatResult.UNSAT

    def test_crash_degrades_to_unknown(self, tmp_path):
        command = _fake_solver(tmp_path, 'echo "segfault haiku"; exit 1\n')
        solver = ExternalSolver(1, command=command)
        solver.add_clause([1])
        assert solver.solve() == SatResult.UNKNOWN

    def test_empty_clause_short_circuits(self, tmp_path):
        command = _fake_solver(tmp_path, 'echo "s SATISFIABLE"\n')
        solver = ExternalSolver(1, command=command)
        assert solver.add_clause([]) is False
        assert solver.solve() == SatResult.UNSAT


# REPRO_REQUIRE_EXTERNAL turns the graceful skip into a loud failure:
# the CI external-solver job sets it so a broken solver install reads as
# red, never as silently-skipped coverage.
needs_external = pytest.mark.skipif(
    find_external_solver() is None
    and os.environ.get("REPRO_REQUIRE_EXTERNAL", "") in ("", "0"),
    reason="no external DIMACS solver installed",
)


@needs_external
class TestExternalDifferential:
    """Runs only where a real DIMACS solver binary is installed (CI job)."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_external_agrees_on_random_cnf(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 12)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 40))
        oracle = SATSolver(num_vars)
        external = make_sat_solver(EXTERNAL, num_vars)
        for clause in clauses:
            oracle.add_clause(clause)
            external.add_clause(clause)
        expected = oracle.solve()
        status = external.solve()
        assert status == expected
        if status == SatResult.SAT:
            assert assignment_satisfies(external.model(), clauses)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_external_agrees_on_random_goals(self, seed):
        rng = random.Random(seed)
        goal = random_goal(rng)
        oracle = Solver(sat_backend=REFERENCE, enable_cache=False)
        oracle.add(goal)
        external = Solver(sat_backend=EXTERNAL, enable_cache=False)
        external.add(goal)
        expected = oracle.check()
        status = external.check()
        assert status == expected
        if status == "sat":
            assert external.model().satisfies(goal)

    def test_external_assumptions(self):
        external = make_sat_solver(EXTERNAL, 2)
        external.add_clause([1, 2])
        assert external.solve([-1, -2]) == SatResult.UNSAT
        assert external.solve([-1]) == SatResult.SAT
        assert external.model()[2] is True


if os.environ.get("REPRO_REQUIRE_EXTERNAL"):
    # The dedicated CI job sets this so a broken install fails loudly
    # instead of skipping the whole differential suite.
    assert find_external_solver() is not None, "REPRO_REQUIRE_EXTERNAL set but no solver found"
