"""Tests for the pluggable store-backend seam: JSON files vs batched SQLite.

Every tier (summary, verdict, query) must behave identically through the
:class:`repro.orchestrator.store.Store` façade no matter which backend
holds the bytes; these tests parametrize the round trips over both
backends, exercise the SQLite-only machinery (schema versioning, whole-
database quarantine, worker shards, write batching) and the explicit
migrations (JSON layout -> SQLite, schema v1 -> v2).
"""

import json
import os
import sqlite3
import time

import pytest

from repro.cli.main import EXIT_OK, main as cli_main
from repro.orchestrator import (
    SQLITE_FILENAME,
    STORE_SCHEMA_VERSION,
    QueryStore,
    SummaryStore,
    VerdictStore,
    certify_fleet,
    detect_backend_name,
    migrate_store,
)
from repro.orchestrator.errors import StoreError
from repro.symbex import SymbexOptions
from repro.symbex.engine import SymbolicEngine
from repro.verify import CrashFreedom
from repro.workloads import fleet_catalog, ip_router_elements

BACKENDS = ("json", "sqlite")
CONCRETE = SymbexOptions(static_table_mode="concrete")


def _summarize(element, length=24):
    engine = SymbolicEngine(SymbexOptions())
    return engine.summarize_element(
        element.program,
        length,
        tables=element.state.tables(),
        element_name=element.name,
        configuration_key=element.configuration_key(),
    )


def _digest(index):
    return f"{index:064x}"


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTrip:
    """The same tier contents must survive a close/reopen on either backend."""

    def test_summary_tier(self, backend, tmp_path):
        element = ip_router_elements(1)[0]
        store = SummaryStore(tmp_path, backend=backend)
        assert store.backend_name == backend
        store.save(element, 24, CONCRETE, _summarize(element))
        store.close()
        # Reopen with auto-detection: the layout on disk decides.
        reopened = SummaryStore(tmp_path)
        assert reopened.backend_name == backend
        loaded = reopened.load(element, 24, CONCRETE)
        assert loaded is not None and reopened.statistics.hits == 1
        assert len(reopened) == 1

    def test_verdict_tier_serves_delta_mode(self, backend, tmp_path):
        catalog = fleet_catalog(3)
        cold = certify_fleet(
            catalog, [CrashFreedom()], input_lengths=(24,),
            verdict_store=VerdictStore(tmp_path, backend=backend),
        )
        warm = certify_fleet(
            fleet_catalog(3), [CrashFreedom()], input_lengths=(24,),
            verdict_store=VerdictStore(tmp_path),
        )
        assert warm.statistics.verdicts_reused == len(catalog)
        assert warm.statistics.summaries_computed == 0
        assert warm.verdicts() == cold.verdicts()

    def test_query_tier(self, backend, tmp_path):
        payload = {"verdict": "unsat", "core": [1, 2, 3]}
        store = QueryStore(tmp_path, backend=backend)
        store.save_payload(_digest(1), payload)
        store.flush()
        assert store.contains(_digest(1)) and not store.contains(_digest(2))
        store.close()
        reopened = QueryStore(tmp_path)
        assert reopened.load_payload(_digest(1)) == payload
        assert reopened.load_payload(_digest(2)) is None
        assert reopened.statistics.hits == 1 and reopened.statistics.misses == 1

    def test_read_entries_bulk(self, backend, tmp_path):
        store = QueryStore(tmp_path, backend=backend)
        for index in range(5):
            store.write_entry(_digest(index), f"payload-{index}")
        store.flush()
        wanted = [_digest(index) for index in range(7)]  # 5 present + 2 absent
        found = store.read_entries(wanted)
        assert found == {_digest(index): f"payload-{index}" for index in range(5)}
        assert store.statistics.misses == 2

    def test_read_entries_sees_unflushed_writes(self, backend, tmp_path):
        store = QueryStore(tmp_path, backend=backend)
        store.write_entry(_digest(1), "buffered")
        assert store.read_entries([_digest(1)]) == {_digest(1): "buffered"}

    def test_metrics_accumulate_across_reopen(self, backend, tmp_path):
        store = QueryStore(tmp_path, backend=backend)
        store.record_metrics({"hits": 3, "label": "ignored-not-numeric"})
        store.close()
        reopened = QueryStore(tmp_path)
        totals = reopened.record_metrics({"hits": 4})
        assert totals["hits"] == 7 and totals["runs"] == 2
        assert reopened.load_metrics() == totals

    def test_clear_and_size(self, backend, tmp_path):
        store = QueryStore(tmp_path, backend=backend)
        for index in range(3):
            store.write_entry(_digest(index), "x" * 10)
        store.flush()
        assert store.size_bytes() >= 30
        assert store.clear() == 3 and len(store) == 0


class TestSqliteCorruption:
    """SQLite parity for the torn-write / quarantine behaviour of JSON tiers."""

    def test_truncated_database_is_quarantined(self, tmp_path):
        (tmp_path / SQLITE_FILENAME).write_bytes(b"SQLite format 3\x00 torn mid-write")
        store = SummaryStore(tmp_path, backend="sqlite")
        # The garbage moved aside (kept for post-mortem), the store works.
        assert (tmp_path / (SQLITE_FILENAME + ".corrupt")).exists()
        assert store.statistics.corrupt_entries == 1
        assert store.statistics.quarantined == 1
        store.write_entry(_digest(1), "fresh")
        store.flush()
        assert len(store) == 1
        # gc sweeps the quarantined database like any .corrupt debris.
        assert store.gc().removed_debris == 1
        assert not (tmp_path / (SQLITE_FILENAME + ".corrupt")).exists()

    def test_random_garbage_is_quarantined(self, tmp_path):
        (tmp_path / SQLITE_FILENAME).write_bytes(b"\x00\x01 not a database \xff")
        store = QueryStore(tmp_path, backend="sqlite")
        assert store.statistics.quarantined == 1
        assert store.load_payload(_digest(1)) is None  # plain empty store

    def test_foreign_sqlite_file_is_quarantined(self, tmp_path):
        connection = sqlite3.connect(str(tmp_path / SQLITE_FILENAME))
        connection.execute("CREATE TABLE unrelated (x INTEGER)")
        connection.commit()
        connection.close()
        store = QueryStore(tmp_path, backend="sqlite")
        assert store.statistics.quarantined == 1
        assert (tmp_path / (SQLITE_FILENAME + ".corrupt")).exists()

    def test_future_schema_version_refuses_loudly(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.close()
        connection = sqlite3.connect(str(tmp_path / SQLITE_FILENAME))
        connection.execute(
            "UPDATE meta SET value=? WHERE key='schema_version'",
            (str(STORE_SCHEMA_VERSION + 7),),
        )
        connection.commit()
        connection.close()
        # Never quarantine data from the future: refuse to open ...
        with pytest.raises(StoreError, match="newer"):
            QueryStore(tmp_path)
        # ... and refuse to "migrate" a layout this repro cannot know.
        with pytest.raises(StoreError, match="newer"):
            migrate_store(tmp_path)

    def _build_v1_database(self, root):
        """The v1 prototype layout: no mtime column, no metrics in meta."""
        connection = sqlite3.connect(str(root / SQLITE_FILENAME))
        connection.execute(
            "CREATE TABLE entries (digest TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        connection.execute("INSERT INTO meta VALUES ('schema_version', '1')")
        connection.execute(
            "INSERT INTO entries VALUES (?, ?)", (_digest(1), json.dumps({"v": 1}))
        )
        connection.commit()
        connection.close()

    def test_old_schema_version_points_at_migrate(self, tmp_path):
        self._build_v1_database(tmp_path)
        with pytest.raises(StoreError, match="store migrate"):
            QueryStore(tmp_path)

    def test_v1_to_v2_upgrade_in_place(self, tmp_path):
        self._build_v1_database(tmp_path)
        result = migrate_store(tmp_path)
        assert result.action == "upgraded"
        assert result.from_version == 1 and result.to_version == STORE_SCHEMA_VERSION
        assert result.entries == 1
        store = QueryStore(tmp_path)
        assert store.load_payload(_digest(1)) == {"v": 1}
        # Migrated entries got a fresh mtime: nothing is instantly evictable.
        assert store.gc(older_than_seconds=3600).removed_entries == 0
        assert len(store) == 1

    def test_garbage_row_is_quarantined_not_reparsed(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.save_payload(_digest(1), {"fine": True})
        store.close()
        connection = sqlite3.connect(str(tmp_path / SQLITE_FILENAME))
        connection.execute(
            "UPDATE entries SET payload='{not json' WHERE digest=?", (_digest(1),)
        )
        connection.commit()
        connection.close()
        reopened = QueryStore(tmp_path)
        assert reopened.load_payload(_digest(1)) is None
        assert reopened.statistics.corrupt_entries == 1
        assert reopened.statistics.quarantined == 1
        assert len(reopened) == 0  # the row is gone
        # The second load is a plain miss: nothing left to re-parse.
        assert reopened.load_payload(_digest(1)) is None
        assert reopened.statistics.corrupt_entries == 1
        assert reopened.statistics.misses == 2


class TestShards:
    def test_shard_view_reads_main_writes_private(self, tmp_path):
        main = QueryStore(tmp_path, backend="sqlite")
        main.save_payload(_digest(1), {"from": "main"})
        main.flush()

        shard = QueryStore(tmp_path, shard="w1")
        assert shard.backend_name == "sqlite"
        assert shard.load_payload(_digest(1)) == {"from": "main"}  # reads hit main
        shard.save_payload(_digest(2), {"from": "shard"})
        shard.close()

        # The shard write is invisible to main until merge-on-join.
        assert (tmp_path / "shards" / "w1.sqlite").exists()
        assert not main.contains(_digest(2))
        assert main.merge_shards() == 1
        assert main.load_payload(_digest(2)) == {"from": "shard"}
        assert not (tmp_path / "shards" / "w1.sqlite").exists()

    def test_merge_refuses_on_shard_view(self, tmp_path):
        QueryStore(tmp_path, backend="sqlite").close()
        shard = QueryStore(tmp_path, shard="w1")
        with pytest.raises(StoreError, match="main store"):
            shard.merge_shards()

    def test_merge_tolerates_torn_shard(self, tmp_path):
        main = QueryStore(tmp_path, backend="sqlite")
        shard = QueryStore(tmp_path, shard="w1")
        shard.save_payload(_digest(1), {"ok": True})
        shard.close()
        (tmp_path / "shards" / "w2.sqlite").write_bytes(b"torn worker crash")
        assert main.merge_shards() == 1  # the good shard lands, the torn one stays
        assert main.load_payload(_digest(1)) == {"ok": True}
        # gc sweeps the torn shard once it is old enough to be an orphan.
        old = time.time() - 120
        os.utime(tmp_path / "shards" / "w2.sqlite", (old, old))
        assert main.gc().removed_debris == 1

    def test_json_backend_has_no_shards(self, tmp_path):
        store = QueryStore(tmp_path, backend="json", shard="w1")
        store.save_payload(_digest(1), {"ok": True})
        # Atomic in-place writes: immediately visible, nothing to merge.
        assert QueryStore(tmp_path).load_payload(_digest(1)) == {"ok": True}
        assert store.merge_shards() == 0


class TestBatching:
    def test_read_your_write_before_flush(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.save_payload(_digest(1), {"buffered": True})
        assert store.backend._pending  # still buffered ...
        assert store.load_payload(_digest(1)) == {"buffered": True}  # ... yet readable
        assert store.contains(_digest(1))

    def test_autoflush_at_batch_size(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.backend.batch_size = 2
        store.write_entry(_digest(1), "one")
        assert store.backend._pending
        store.write_entry(_digest(2), "two")
        assert not store.backend._pending  # batch boundary flushed for us
        connection = sqlite3.connect(str(tmp_path / SQLITE_FILENAME))
        assert connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0] == 2
        connection.close()

    def test_close_flushes(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.save_payload(_digest(1), {"durable": True})
        store.close()
        assert QueryStore(tmp_path).load_payload(_digest(1)) == {"durable": True}


class TestSelection:
    def test_fresh_root_detects_nothing(self, tmp_path):
        assert detect_backend_name(tmp_path) is None

    def test_layouts_detected(self, tmp_path):
        json_root, sqlite_root = tmp_path / "j", tmp_path / "s"
        QueryStore(json_root, backend="json").save_payload(_digest(1), {})
        QueryStore(sqlite_root, backend="sqlite").close()
        assert detect_backend_name(json_root) == "json"
        assert detect_backend_name(sqlite_root) == "sqlite"

    def test_requesting_conflicting_backend_raises(self, tmp_path):
        QueryStore(tmp_path, backend="json").save_payload(_digest(1), {})
        with pytest.raises(StoreError, match="store migrate"):
            QueryStore(tmp_path, backend="sqlite")

    def test_env_default_for_fresh_roots(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert QueryStore(tmp_path / "fresh").backend_name == "sqlite"
        monkeypatch.setenv("REPRO_STORE_BACKEND", "postgres")
        with pytest.raises(StoreError, match="REPRO_STORE_BACKEND"):
            QueryStore(tmp_path / "other")

    def test_existing_layout_beats_env_default(self, tmp_path, monkeypatch):
        QueryStore(tmp_path, backend="json").save_payload(_digest(1), {"keep": 1})
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        store = QueryStore(tmp_path)  # auto-detect wins over the env default
        assert store.backend_name == "json"
        assert store.load_payload(_digest(1)) == {"keep": 1}


class TestMigration:
    def test_json_to_sqlite_preserves_entries_metrics_and_mtimes(self, tmp_path):
        store = QueryStore(tmp_path, backend="json")
        store.save_payload(_digest(1), {"stale": True})
        store.save_payload(_digest(2), {"fresh": True})
        totals = store.record_metrics({"hits": 5})
        old = time.time() - 10 * 24 * 3600
        os.utime(store._path(_digest(1)), (old, old))

        result = migrate_store(tmp_path)
        assert result.action == "json-to-sqlite" and result.entries == 2
        assert detect_backend_name(tmp_path) == "sqlite"
        assert not list(tmp_path.glob("??/*.json"))  # JSON layout fully retired
        assert not (tmp_path / "metrics.json").exists()

        migrated = QueryStore(tmp_path)
        assert migrated.load_payload(_digest(2)) == {"fresh": True}
        assert migrated.load_metrics() == totals  # sidecar moved into meta
        # Entry mtimes survived: the stale entry (never re-read, so never
        # re-warmed) is still evictable by age.
        swept = migrated.gc(older_than_seconds=24 * 3600)
        assert swept.removed_entries == 1 and swept.kept_entries == 1
        assert migrated.load_payload(_digest(1)) is None

    def test_migrate_is_idempotent(self, tmp_path):
        QueryStore(tmp_path, backend="sqlite").save_payload(_digest(1), {})
        first = migrate_store(tmp_path)
        assert first.action == "up-to-date" and first.entries == 1

    def test_migrate_fresh_root_initializes(self, tmp_path):
        result = migrate_store(tmp_path / "new")
        assert result.action == "initialized"
        assert detect_backend_name(tmp_path / "new") == "sqlite"

    def test_cli_migration_smoke(self, tmp_path, capsys):
        """The CI migration smoke, in-process: JSON certify -> migrate -> delta."""
        summary_root = str(tmp_path / "summaries")
        verdict_root = str(tmp_path / "verdicts")
        catalog = fleet_catalog(3)
        certify_fleet(
            catalog, [CrashFreedom()], input_lengths=(24,),
            store=SummaryStore(summary_root, backend="json"),
            verdict_store=VerdictStore(verdict_root, backend="json"),
        )
        code = cli_main(
            ["store", "migrate", "--store", summary_root, "--verdict-store", verdict_root]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "migrated" in out and "SQLite" in out
        assert detect_backend_name(tmp_path / "summaries") == "sqlite"
        assert detect_backend_name(tmp_path / "verdicts") == "sqlite"
        delta = certify_fleet(
            fleet_catalog(3), [CrashFreedom()], input_lengths=(24,),
            store=SummaryStore(summary_root),
            verdict_store=VerdictStore(verdict_root),
        )
        assert delta.statistics.verdicts_reused == len(catalog)
        assert delta.statistics.summaries_computed == 0


class TestDifferential:
    def test_certify_fleet_identical_across_backends(self, tmp_path):
        runs = {}
        for backend in BACKENDS:
            root = tmp_path / backend
            stores = (
                SummaryStore(root / "summaries", backend=backend),
                VerdictStore(root / "verdicts", backend=backend),
                QueryStore(root / "queries", backend=backend),
            )
            report = certify_fleet(
                fleet_catalog(3), [CrashFreedom()], input_lengths=(24,),
                store=stores[0], verdict_store=stores[1], query_store=stores[2],
            )
            runs[backend] = (
                report.verdicts(),
                [
                    (s.statistics.hits, s.statistics.misses, s.statistics.puts)
                    for s in stores
                ],
            )
        assert runs["json"] == runs["sqlite"]


class TestGcRaces:
    def test_json_gc_tolerates_vanished_entries(self, tmp_path):
        store = QueryStore(tmp_path, backend="json")
        store.save_payload(_digest(1), {"ok": True})
        # A dangling symlink stats like an entry that a concurrent writer
        # unlinked between the directory listing and the stat call.
        bucket = tmp_path / "ab"
        bucket.mkdir()
        ghost = bucket / (_digest(2) + ".json")
        ghost.symlink_to(tmp_path / "never-existed")
        result = store.gc(older_than_seconds=3600)
        assert result.kept_entries == 1  # vanished: neither kept nor removed
        assert store.size_bytes() > 0  # stat races tolerated here too

    def test_sqlite_gc_age_horizon(self, tmp_path):
        store = QueryStore(tmp_path, backend="sqlite")
        store.save_payload(_digest(1), {"old": True})
        store.save_payload(_digest(2), {"new": True})
        store.flush()
        connection = sqlite3.connect(str(tmp_path / SQLITE_FILENAME))
        connection.execute(
            "UPDATE entries SET mtime=? WHERE digest=?",
            (time.time() - 7200, _digest(1)),
        )
        connection.commit()
        connection.close()
        store.close()
        reopened = QueryStore(tmp_path)
        result = reopened.gc(older_than_seconds=3600)
        assert result.removed_entries == 1 and result.kept_entries == 1
        assert result.bytes_freed > 0
        assert reopened.load_payload(_digest(2)) == {"new": True}
