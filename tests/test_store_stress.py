"""Concurrent-writer stress for the store backends.

The container that runs ``certify_fleet`` clamps its pool to the CPU
count, so these tests drive :mod:`multiprocessing` directly: N real
processes hammering one store root.  The JSON backend survives on atomic
renames; the SQLite backend must absorb lock contention through its busy
timeout + jittered-backoff retry (writing the main database directly)
and must lose nothing when writers go through per-worker shards instead.
"""

import json
import multiprocessing
import os

import pytest

from repro.orchestrator import QueryStore
from repro.orchestrator.workers import worker_shard_tag

BACKENDS = ("json", "sqlite")
#: Scaled up by the CI store-stress job; the defaults keep the local
#: tier-1 run fast while still forcing real lock contention.
WRITERS = int(os.environ.get("REPRO_STRESS_WRITERS", "4"))
ENTRIES_PER_WRITER = int(os.environ.get("REPRO_STRESS_ENTRIES", "40"))


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        pytest.skip("fork start method unavailable")


def _digest(writer, index):
    return f"{writer:02d}{index:062d}"


def _hammer_main(root, backend, writer):
    """Write a block of entries straight into the shared (main) store."""
    store = QueryStore(root, backend=backend)
    for index in range(ENTRIES_PER_WRITER):
        store.save_payload(_digest(writer, index), {"writer": writer, "index": index})
        if index % 7 == 0:
            store.flush()  # interleave real commits with buffered writes
    store.close()


def _hammer_shard(root, writer):
    """Write a block of entries through this process's private shard view."""
    store = QueryStore(root, shard=worker_shard_tag())
    for index in range(ENTRIES_PER_WRITER):
        store.save_payload(_digest(writer, index), {"writer": writer, "index": index})
    store.close()


def _record_runs(root, backend):
    store = QueryStore(root, backend=backend)
    for _ in range(5):
        store.record_metrics({"ticks": 1})
    store.close()


def _run_writers(target, arguments):
    context = _context()
    processes = [context.Process(target=target, args=args) for args in arguments]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in processes), (
        f"writer crashed: exit codes {[p.exitcode for p in processes]}"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_writers_one_root(backend, tmp_path):
    """N processes appending to one store root: every entry lands, none torn."""
    root = str(tmp_path)
    QueryStore(root, backend=backend).close()  # pin the layout before the race
    _run_writers(
        _hammer_main, [(root, backend, writer) for writer in range(WRITERS)]
    )
    store = QueryStore(root)
    assert store.backend_name == backend
    assert len(store) == WRITERS * ENTRIES_PER_WRITER
    for writer in range(WRITERS):
        for index in (0, ENTRIES_PER_WRITER - 1):
            payload = store.load_payload(_digest(writer, index))
            assert payload == {"writer": writer, "index": index}
    assert store.statistics.corrupt_entries == 0


def test_concurrent_shard_writers_then_merge(tmp_path):
    """The fleet protocol: workers fill private shards, the parent folds them in."""
    root = str(tmp_path)
    main = QueryStore(root, backend="sqlite")
    _run_writers(_hammer_shard, [(root, writer) for writer in range(WRITERS)])
    # Shard tags are per-pid, so the pool left one shard file per writer.
    assert len(list((tmp_path / "shards").glob("*.sqlite"))) == WRITERS
    assert main.merge_shards() == WRITERS * ENTRIES_PER_WRITER
    assert len(main) == WRITERS * ENTRIES_PER_WRITER
    assert not list((tmp_path / "shards").glob("*.sqlite"))
    for writer in range(WRITERS):
        payload = main.load_payload(_digest(writer, ENTRIES_PER_WRITER // 2))
        assert payload == {"writer": writer, "index": ENTRIES_PER_WRITER // 2}


def test_concurrent_metrics_recording(tmp_path):
    """SQLite folds metrics transactionally: concurrent recorders lose nothing."""
    root = str(tmp_path)
    QueryStore(root, backend="sqlite").close()
    _run_writers(_record_runs, [(root, "sqlite") for _ in range(WRITERS)])
    totals = QueryStore(root).load_metrics()
    assert totals["ticks"] == WRITERS * 5
    assert totals["runs"] == WRITERS * 5

    # The JSON sidecar is last-writer-wins per fold: increments may be
    # lost under contention, but the sidecar itself must stay readable.
    json_root = str(tmp_path / "json")
    QueryStore(json_root, backend="json").save_payload("aa" + "0" * 62, {})
    _run_writers(_record_runs, [(json_root, "json") for _ in range(WRITERS)])
    json_totals = QueryStore(json_root).load_metrics()
    assert 1 <= json_totals["ticks"] <= WRITERS * 5
    assert isinstance(json.dumps(json_totals), str)


def test_forked_child_reopens_connection(tmp_path):
    """A store inherited through fork must not share the parent's connection."""
    store = QueryStore(str(tmp_path), backend="sqlite")
    store.save_payload(_digest(0, 0), {"parent": True})
    store.flush()
    context = _context()

    def _child(root):
        # The global `store` object was inherited via fork; using it must
        # transparently reopen rather than corrupt the parent's handle.
        assert store.load_payload(_digest(0, 0)) == {"parent": True}
        store.save_payload(_digest(0, 1), {"child": True})
        store.close()

    process = context.Process(target=_child, args=(str(tmp_path),))
    process.start()
    process.join(timeout=60)
    assert process.exitcode == 0
    # The parent's handle still works after the child's reopen-and-write.
    assert store.load_payload(_digest(0, 1)) == {"child": True}
    assert os.getpid() == store.backend._pid
