"""Unit tests for the SMT term language, evaluation and simplification."""

import pytest

from repro import smt
from repro.smt import (
    And,
    BitVec,
    BitVecVal,
    Bool,
    BoolVal,
    Concat,
    Eq,
    Extract,
    If,
    Implies,
    Not,
    Or,
    SignExt,
    SLT,
    Term,
    UDiv,
    ULE,
    ULT,
    URem,
    ZeroExt,
    evaluate,
    simplify,
    substitute,
)
from repro.smt.errors import EvaluationError, InvalidTermError, SortMismatchError
from repro.smt.sorts import BOOL, BitVecSort, bitvec


class TestSorts:
    def test_bitvec_sort_equality(self):
        assert BitVecSort(8) == BitVecSort(8)
        assert BitVecSort(8) != BitVecSort(16)
        assert bitvec(32).width == 32

    def test_bitvec_sort_mask_and_modulus(self):
        assert BitVecSort(8).mask == 0xFF
        assert BitVecSort(8).modulus == 256

    def test_invalid_width_rejected(self):
        with pytest.raises(InvalidTermError):
            BitVecSort(0)
        with pytest.raises(InvalidTermError):
            BitVecSort(-4)

    def test_bool_sort_is_singleton_like(self):
        assert BOOL.is_bool()
        assert not BOOL.is_bitvec()


class TestConstruction:
    def test_constants_reduced_modulo_width(self):
        term = BitVecVal(0x1FF, 8)
        assert term.value == 0xFF
        assert term.width == 8

    def test_variable_requires_name(self):
        with pytest.raises(InvalidTermError):
            smt.terms.mk_bv_var("", 8)

    def test_width_mismatch_rejected(self):
        with pytest.raises(SortMismatchError):
            BitVec("a", 8) + BitVec("b", 16)

    def test_extract_bounds_checked(self):
        x = BitVec("x", 8)
        with pytest.raises(InvalidTermError):
            Extract(8, 0, x)
        with pytest.raises(InvalidTermError):
            Extract(3, 5, x)

    def test_concat_width(self):
        x, y = BitVec("x", 8), BitVec("y", 16)
        assert Concat(x, y).width == 24

    def test_boolean_ops_reject_bitvectors(self):
        with pytest.raises(SortMismatchError):
            And(BitVec("x", 8), BoolVal(True))

    def test_free_variables(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        term = ULT(x + y, BitVecVal(5, 8))
        assert set(term.free_variables()) == {"x", "y"}

    def test_operator_overloads_build_terms(self):
        x = BitVec("x", 8)
        assert (x + 1).op == smt.Op.BV_ADD
        assert (x & 0x0F).op == smt.Op.BV_AND
        assert (x < 5).op == smt.Op.ULT
        assert (~x).op == smt.Op.BV_NOT


class TestEvaluation:
    def test_arithmetic_wraps(self):
        x = BitVec("x", 8)
        assert evaluate(x + 10, {"x": 250}) == (250 + 10) % 256
        assert evaluate(x - 10, {"x": 5}) == (5 - 10) % 256
        assert evaluate(x * 3, {"x": 100}) == (100 * 3) % 256

    def test_division_semantics(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        assert evaluate(UDiv(x, y), {"x": 7, "y": 2}) == 3
        assert evaluate(URem(x, y), {"x": 7, "y": 2}) == 1
        # SMT-LIB: division by zero is all-ones, remainder is the dividend.
        assert evaluate(UDiv(x, y), {"x": 7, "y": 0}) == 0xFF
        assert evaluate(URem(x, y), {"x": 7, "y": 0}) == 7

    def test_shifts(self):
        x = BitVec("x", 8)
        assert evaluate(x << BitVecVal(2, 8), {"x": 3}) == 12
        assert evaluate(x >> BitVecVal(2, 8), {"x": 12}) == 3
        assert evaluate(x << BitVecVal(9, 8), {"x": 3}) == 0

    def test_comparisons_signed_and_unsigned(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        assert evaluate(ULT(x, y), {"x": 1, "y": 0xFF}) is True
        assert evaluate(SLT(x, y), {"x": 1, "y": 0xFF}) is False  # 0xFF is -1 signed

    def test_structural_ops(self):
        x = BitVec("x", 16)
        assert evaluate(Extract(15, 8, x), {"x": 0xABCD}) == 0xAB
        assert evaluate(Extract(7, 0, x), {"x": 0xABCD}) == 0xCD
        assert evaluate(Concat(BitVecVal(0xAB, 8), BitVecVal(0xCD, 8)), {}) == 0xABCD
        assert evaluate(ZeroExt(8, BitVecVal(0xFF, 8)), {}) == 0xFF
        assert evaluate(SignExt(8, BitVecVal(0xFF, 8)), {}) == 0xFFFF

    def test_ite(self):
        x = BitVec("x", 8)
        term = If(ULT(x, 10), BitVecVal(1, 8), BitVecVal(2, 8))
        assert evaluate(term, {"x": 5}) == 1
        assert evaluate(term, {"x": 50}) == 2

    def test_boolean_connectives(self):
        a, b = Bool("a"), Bool("b")
        assert evaluate(And(a, b), {"a": True, "b": True}) is True
        assert evaluate(Or(a, b), {"a": False, "b": False}) is False
        assert evaluate(Implies(a, b), {"a": True, "b": False}) is False
        assert evaluate(Not(a), {"a": False}) is True

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(BitVec("missing", 8), {})


class TestSimplify:
    def test_constant_folding(self):
        folded = simplify(BitVecVal(3, 8) + BitVecVal(4, 8))
        assert folded.op == smt.Op.BV_CONST and folded.value == 7

    def test_identity_rules(self):
        x = BitVec("x", 8)
        assert simplify(x + 0).structurally_equal(x)
        assert simplify(x & 0xFF).structurally_equal(x)
        assert simplify(x | 0).structurally_equal(x)
        assert simplify(x ^ x).value == 0
        assert simplify(x * 1).structurally_equal(x)
        zero = simplify(x & 0)
        assert zero.op == smt.Op.BV_CONST and zero.value == 0

    def test_boolean_simplification(self):
        a = Bool("a")
        assert simplify(And(a, BoolVal(True))).structurally_equal(a)
        assert simplify(And(a, BoolVal(False))).is_false()
        assert simplify(Or(a, BoolVal(True))).is_true()
        assert simplify(Not(Not(a))).structurally_equal(a)
        assert simplify(And(a, Not(a))).is_false()
        assert simplify(Or(a, Not(a))).is_true()

    def test_comparison_simplification(self):
        x = BitVec("x", 8)
        assert simplify(ULT(x, BitVecVal(0, 8))).is_false()
        assert simplify(ULE(BitVecVal(0, 8), x)).is_true()
        assert simplify(Eq(x, x)).is_true()

    def test_extract_of_concat(self):
        lo, hi = BitVec("lo", 8), BitVec("hi", 8)
        term = Extract(7, 0, Concat(hi, lo))
        assert simplify(term).structurally_equal(lo)
        term = Extract(15, 8, Concat(hi, lo))
        assert simplify(term).structurally_equal(hi)

    def test_extract_of_zext(self):
        x = BitVec("x", 8)
        assert simplify(Extract(7, 0, ZeroExt(8, x))).structurally_equal(x)
        high = simplify(Extract(15, 8, ZeroExt(8, x)))
        assert high.op == smt.Op.BV_CONST and high.value == 0

    def test_simplify_preserves_semantics_on_samples(self):
        x = BitVec("x", 8)
        terms = [
            (x + 0) * 1,
            (x ^ x) | x,
            If(ULT(x, 10), x, x),
            Extract(3, 0, Concat(BitVecVal(0xA, 4), Extract(3, 0, x))),
        ]
        for term in terms:
            reduced = simplify(term)
            for value in (0, 1, 9, 10, 127, 255):
                assert evaluate(term, {"x": value}) == evaluate(reduced, {"x": value})


class TestSubstitute:
    def test_substitute_variable(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        term = ULT(x + 1, BitVecVal(5, 8))
        replaced = substitute(term, {"x": y})
        assert "x" not in replaced.free_variables()
        assert "y" in replaced.free_variables()

    def test_substitute_checks_sorts(self):
        x = BitVec("x", 8)
        with pytest.raises(SortMismatchError):
            substitute(x + 1, {"x": BitVec("wide", 16)})

    def test_substitution_semantics(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        term = (x + 3) * 2
        replaced = substitute(term, {"x": y + 1})
        for value in (0, 5, 200):
            assert evaluate(replaced, {"y": value}) == evaluate(term, {"x": (value + 1) % 256})


class TestSexpr:
    def test_rendering_is_stable(self):
        x = BitVec("x", 8)
        term = And(ULT(x, BitVecVal(16, 8)), Not(Eq(x, BitVecVal(3, 8))))
        assert term.to_sexpr() == term.to_sexpr()
        assert "bvult" in term.to_sexpr()
