"""Tests for the persistent fleet scheduler: graph, pool, priorities, parity.

The scheduler's contract is differential — it reorders work, it never
changes it — so most tests here drive the same catalog through the
serial, wave-synchronous and scheduled paths and assert the outputs are
identical.  The container may expose a single CPU (``certify_fleet``
clamps ``workers`` to the CPU count), so end-to-end tests monkeypatch
``repro.orchestrator.fleet.os.cpu_count`` and graph/pool tests call
:func:`run_scheduled` directly with an explicit worker count.
"""

import dataclasses
import os
import random
from pathlib import Path

import pytest

from repro.obs.trace import Tracer, active
from repro.orchestrator import (
    JobGraph,
    OrchestratorError,
    RiskHistory,
    RiskStore,
    SummaryStore,
    WorkerPool,
    certify_fleet,
    pipeline_ranks,
    run_scheduled,
    summarize_jobs,
)
from repro.orchestrator.scheduler import FIFO, LARGEST_FIRST, OFF, RISK
from repro.orchestrator.workers import _summarize_worker, job_digest
from repro.symbex.engine import SymbexOptions
from repro.verify import CrashFreedom
from repro.workloads import (
    fleet_catalog,
    store_scale_catalog,
    synthetic_pipeline,
)


@pytest.fixture
def four_cpus(monkeypatch):
    """Lift the fleet layer's worker clamp on single-CPU CI hosts."""
    import repro.orchestrator.fleet as fleet_mod

    monkeypatch.setattr(fleet_mod.os, "cpu_count", lambda: 4)


def _serial_summaries(pipelines, lengths, options):
    """Ground truth: the digest -> summary map a serial discovery computes."""
    from repro.orchestrator import loads_summary

    graph = JobGraph(pipelines, lengths, options)
    while True:
        jobs = graph.take_new_jobs()
        if not jobs:
            break
        for digest, element, length in jobs:
            status, text, _e, _w, _x = _summarize_worker((element, length, options, None))
            assert status == "computed"
            graph.resolve(digest, loads_summary(text))
    return graph


class TestPipelineRanks:
    def test_fifo_is_catalog_order(self):
        catalog = store_scale_catalog(4)
        assert pipeline_ranks(catalog, FIFO) == [0, 1, 2, 3]

    def test_largest_first_fronts_wide_pipelines(self):
        catalog = [
            synthetic_pipeline(2, 1, name="small"),
            synthetic_pipeline(4, 1, name="large"),
            synthetic_pipeline(3, 1, name="mid"),
        ]
        ranks = pipeline_ranks(catalog, LARGEST_FIRST)
        assert ranks == [2, 0, 1]  # large first, then mid, then small

    def test_risk_without_history_is_fifo(self):
        catalog = store_scale_catalog(3)
        assert pipeline_ranks(catalog, RISK) == [0, 1, 2]

    def test_risk_fronts_seeded_history(self, tmp_path):
        catalog = store_scale_catalog(3)
        history = RiskHistory(RiskStore(tmp_path))
        history.seed(catalog[2].name, violations=2)
        ranks = pipeline_ranks(catalog, RISK, history)
        assert ranks[2] == 0  # the violating pipeline preempts the catalog

    def test_unknown_schedule_raises(self):
        with pytest.raises(OrchestratorError):
            pipeline_ranks(store_scale_catalog(1), "steepest-descent")


class TestJobGraph:
    """The graph must be completion-order invariant — that is the whole bet."""

    def _catalog(self):
        return store_scale_catalog(6)

    def test_random_completion_orders_reach_identical_state(self):
        options = SymbexOptions()
        catalog = self._catalog()
        reference = _serial_summaries(catalog, (64,), options)
        oracle = dict(reference.summaries)

        for seed in range(5):
            rng = random.Random(seed)
            graph = JobGraph(catalog, (64,), options)
            pending = list(graph.take_new_jobs())
            verify_ready = list(graph.take_verify_ready())
            while pending:
                index = rng.randrange(len(pending))
                digest, _element, _length = pending.pop(index)
                graph.resolve(digest, oracle[digest])
                pending.extend(graph.take_new_jobs())
                verify_ready.extend(graph.take_verify_ready())
            assert graph.settled
            assert set(graph.summaries) == set(oracle)
            assert sorted(verify_ready) == list(range(len(catalog)))

    def test_exploded_digest_unblocks_waiting_pipelines(self):
        options = SymbexOptions()
        catalog = [synthetic_pipeline(3, 2, name="boom")]
        graph = JobGraph(catalog, (12,), options)
        jobs = graph.take_new_jobs()
        assert jobs and not graph.take_verify_ready()
        # The entry element explodes: no downstream expansion, but the
        # pipeline must still become verify-ready (Step 2 reports unknown).
        graph.explode(jobs[0][0])
        assert graph.take_verify_ready() == [0]
        assert graph.settled

    def test_duplicate_configurations_share_one_job(self):
        options = SymbexOptions()
        catalog = store_scale_catalog(6)
        graph = JobGraph(catalog, (64,), options)
        jobs = graph.take_new_jobs()
        digests = [digest for digest, _e, _l in jobs]
        assert len(digests) == len(set(digests))
        entries = [p.entry_elements()[0] for p in catalog]
        assert len(jobs) == len({job_digest(e, 64, options) for e in entries})

    def test_rejects_multi_entry_pipeline(self):
        from repro.dataplane import Pipeline
        from repro.dataplane.elements import Discard
        from repro.workloads.pipelines import SyntheticBranchyElement

        pipeline = Pipeline(name="two-entries")
        sink = Discard(name="sink")
        pipeline.connect(SyntheticBranchyElement(1, name="a"), sink)
        pipeline.connect(SyntheticBranchyElement(1, offset=2, name="b"), sink)
        with pytest.raises(OrchestratorError):
            JobGraph([pipeline], (24,), SymbexOptions())


class TestScheduledRun:
    def test_matches_serial_verdicts_and_counters(self, four_cpus, tmp_path):
        catalog = store_scale_catalog(8)
        options = SymbexOptions()
        serial = certify_fleet(
            catalog, [CrashFreedom()], input_lengths=(64,), options=options
        )
        scheduled = certify_fleet(
            store_scale_catalog(8), [CrashFreedom()], input_lengths=(64,),
            workers=2, store=SummaryStore(tmp_path / "sched"), options=options,
        )
        wave = certify_fleet(
            store_scale_catalog(8), [CrashFreedom()], input_lengths=(64,),
            workers=2, store=SummaryStore(tmp_path / "wave"), options=options,
            schedule=OFF,
        )
        assert scheduled.verdicts() == serial.verdicts() == wave.verdicts()
        assert scheduled.scheduler is not None and scheduled.scheduler.pools_forked == 1
        assert wave.scheduler is None
        for name in (
            "distinct_summary_jobs", "summaries_computed", "store_hits",
            "solver_checks", "sat_core_calls", "qcache_hits", "counterexamples",
        ):
            assert getattr(scheduled.statistics, name) == getattr(serial.statistics, name)
            assert getattr(scheduled.statistics, name) == getattr(wave.statistics, name)
        # Step-2 store rehydration is a parallel-only counter; the
        # scheduler must match the wave path it replaces.
        assert scheduled.statistics.step2_store_loads == wave.statistics.step2_store_loads

    def test_counterexample_packets_match_serial(self, four_cpus, tmp_path):
        serial = certify_fleet(fleet_catalog(2), [CrashFreedom()], input_lengths=(24,))
        scheduled = certify_fleet(
            fleet_catalog(2), [CrashFreedom()], input_lengths=(24,),
            workers=2, store=SummaryStore(tmp_path),
        )
        packets = lambda report: [  # noqa: E731
            [ce.packet for result in c.results for ce in result.counterexamples]
            for c in report.certifications
        ]
        assert packets(scheduled) == packets(serial)

    def test_budget_explosion_degrades_identically(self, four_cpus, tmp_path):
        # merge=off so merging cannot rescue the starved budget.
        options = SymbexOptions(max_paths=4, merge="off")  # starves Step-1
        serial = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), options=options,
        )
        scheduled = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), workers=2, store=SummaryStore(tmp_path),
            options=options,
        )
        assert scheduled.verdicts() == serial.verdicts()
        assert scheduled.verdicts()[0][2] == "unknown"

    def test_warm_store_serves_whole_run(self, four_cpus, tmp_path):
        store = SummaryStore(tmp_path)
        cold = certify_fleet(
            store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,),
            workers=2, store=store,
        )
        warm = certify_fleet(
            store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,),
            workers=2, store=store,
        )
        assert warm.verdicts() == cold.verdicts()
        assert warm.statistics.summaries_computed == 0
        assert warm.statistics.store_hits == cold.statistics.distinct_summary_jobs
        # Satellite: the bulk frontier probe costs one round trip per
        # admission batch, not one per digest.
        assert store.statistics.round_trips_saved > 0

    def test_schedule_off_forks_one_pool_across_waves(self, four_cpus, tmp_path, monkeypatch):
        import repro.orchestrator.fleet as fleet_mod

        forks = []
        original = fleet_mod.WorkerPool

        class CountingPool(original):
            def __init__(self, workers):
                super().__init__(workers)
                forks.append(self)

        monkeypatch.setattr(fleet_mod, "WorkerPool", CountingPool)
        report = certify_fleet(
            store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,),
            workers=2, store=SummaryStore(tmp_path), schedule=OFF,
        )
        assert len(report.certifications) == 4
        assert len(forks) == 1  # one shared pool for every wave and Step 2
        assert forks[0].forks == 1

    def test_unknown_schedule_rejected_up_front(self, tmp_path):
        with pytest.raises(OrchestratorError):
            certify_fleet(
                store_scale_catalog(1), [CrashFreedom()], input_lengths=(64,),
                schedule="sorted-by-vibes",
            )


class TestSchedulerDirect:
    """Drive run_scheduled with real worker processes (no cpu clamp)."""

    def _run(self, catalog, store, **kwargs):
        kwargs.setdefault("workers", 2)
        return run_scheduled(
            catalog, [CrashFreedom()], (64,), SymbexOptions(), store=store, **kwargs
        )

    def test_risk_schedule_verifies_risky_pipeline_first(self, tmp_path):
        catalog = store_scale_catalog(6)
        history = RiskHistory(RiskStore(tmp_path / "risk"))
        risky = catalog[4].name
        history.seed(risky, violations=3, churn=2)
        # One worker: dispatch strictly follows the priority heap, so the
        # completion order is deterministic.
        run = self._run(
            catalog, SummaryStore(tmp_path / "store"), workers=1,
            schedule=RISK, risk_history=history,
        )
        assert run.verify_order[0] == 4
        assert len(run.verify_order) == len(catalog)

    def test_fifo_single_worker_preserves_catalog_order(self, tmp_path):
        catalog = store_scale_catalog(5)
        run = self._run(catalog, SummaryStore(tmp_path), workers=1)
        assert run.verify_order == list(range(len(catalog)))

    def test_schedule_off_refused(self, tmp_path):
        with pytest.raises(OrchestratorError):
            self._run(store_scale_catalog(1), SummaryStore(tmp_path), schedule=OFF)

    def test_crashed_worker_is_respawned_and_task_retried(self, tmp_path):
        catalog = store_scale_catalog(4)
        store = SummaryStore(tmp_path / "store")
        (tmp_path / "crash-once").touch()
        run = self._run(catalog, store, summary_worker=_crash_once_worker)
        stats = run.statistics
        assert stats.workers_crashed == 1
        assert stats.tasks_retried == 1
        assert stats.workers_spawned == stats.workers + 1  # one replacement
        assert stats.pools_forked == 1
        # The retried run still certifies everything, identically.
        serial = certify_fleet(store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,))
        verdicts = [
            (catalog[index].name, r.property_name, r.verdict)
            for index in sorted(run.step2)
            for r in run.step2[index][0].results
        ]
        assert verdicts == serial.verdicts()

    def test_spans_ship_exactly_once_and_match_serial_work(self, tmp_path):
        options = dataclasses.replace(SymbexOptions(), trace=True)
        catalog = store_scale_catalog(4)

        with active(Tracer()) as t:
            run = run_scheduled(
                catalog, [CrashFreedom()], (64,), options,
                workers=2, store=SummaryStore(tmp_path),
            )
            spans = t.spans()
        assert len(run.step2) == len(catalog)
        assert len({(s.pid, s.sid) for s in spans}) == len(spans)  # exactly once
        scheduler_spans = [s for s in spans if s.category == "scheduler"]
        assert len(scheduler_spans) == run.statistics.tasks_dispatched
        assert all(s.name == "scheduler.task" for s in scheduler_spans)

        # The scheduler reorders the serial run's symbolic executions; it
        # never adds or drops one.  (Cache hit/miss *events* legitimately
        # differ from serial — parallel Step 2 rehydrates from the store,
        # serial reads its in-process cache — that is the wave path's
        # pre-existing behavior, compared exhaustively below.)
        with active(Tracer()) as t:
            serial = certify_fleet(
                store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,),
                options=options,
            )
            serial_spans = t.spans()
        assert serial.statistics.pipelines == len(catalog)
        symbex = sorted(
            (s.name, s.args.get("element")) for s in spans if s.category == "symbex"
        )
        serial_symbex = sorted(
            (s.name, s.args.get("element")) for s in serial_spans if s.category == "symbex"
        )
        assert symbex == serial_symbex

    def test_trace_matches_wave_path_exactly(self, tmp_path, monkeypatch):
        import repro.orchestrator.fleet as fleet_mod

        monkeypatch.setattr(fleet_mod.os, "cpu_count", lambda: 4)
        options = dataclasses.replace(SymbexOptions(), trace=True)

        def names(schedule, root):
            with active(Tracer()) as t:
                certify_fleet(
                    store_scale_catalog(4), [CrashFreedom()], input_lengths=(64,),
                    workers=2, store=SummaryStore(root), options=options,
                    schedule=schedule,
                )
                return sorted(
                    s.name for s in t.spans() if s.category != "scheduler"
                )

        scheduled = names(FIFO, tmp_path / "sched")
        wave = names(OFF, tmp_path / "wave")
        assert scheduled == wave

    def test_queue_and_idle_gauges_published(self, tmp_path):
        from repro.obs.metrics import metrics

        run = self._run(store_scale_catalog(3), SummaryStore(tmp_path))
        registry = metrics()
        assert registry.gauge("scheduler.queue_depth").value == 0
        assert registry.gauge("scheduler.worker_idle_ms").value == pytest.approx(
            run.statistics.worker_idle_seconds * 1000.0
        )


def _crash_once_worker(payload):
    """Summary worker that hard-kills its process on the first marked task.

    The sentinel lives next to the store root; exactly one task consumes
    it, dies without reporting, and every retry (fresh attempt tag)
    computes normally.  ``os._exit`` skips worker cleanup on purpose —
    that is what a segfault looks like to the parent.
    """
    element, length, options, store_root = payload
    sentinel = Path(store_root).parent / "crash-once"
    if sentinel.exists():
        try:
            sentinel.unlink()
        except OSError:  # pragma: no cover - second racer lost; run normally
            pass
        else:
            os._exit(1)
    return _summarize_worker(payload)


class TestWorkerPoolReuse:
    def test_one_fork_across_many_batches(self):
        jobs = [(p.entry_elements()[0], 64) for p in store_scale_catalog(3)]
        with WorkerPool(2) as pool:
            for _ in range(3):
                results = summarize_jobs(jobs, SymbexOptions(), workers=2, pool=pool)
                assert all(status == "computed" for status, _s, _d in results)
            assert pool.forks == 1

    def test_lazy_fork_only_on_parallel_work(self):
        with WorkerPool(2) as pool:
            assert pool.forks == 0
