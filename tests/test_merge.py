"""Differential tests for ite-lifted state merging (:mod:`repro.symbex.merge`).

The merge pass is an *optimization*: under every mode the engine must
reach the same verdicts, find the same violations, and preserve the
partition-of-input-space invariant of segment summaries.  These tests run
the same workloads under ``merge=off`` (the reference), ``conservative``
(the default) and ``aggressive`` and compare outcomes — plus pin that the
pass actually buys something (strictly fewer paths on branchy workloads).
"""

import random

import pytest

from repro import smt
from repro.ir import Interpreter, ProgramBuilder
from repro.dataplane import Element, Pipeline
from repro.orchestrator import certify_fleet
from repro.symbex import SymbexOptions, SymbolicEngine
from repro.symbex.merge import MergeCounters, MergeMode, merge_states
from repro.verify import CrashFreedom, verify_crash_freedom
from repro.workloads import fleet_catalog, synthetic_branchy_element, synthetic_pipeline

MODES = (MergeMode.OFF, MergeMode.CONSERVATIVE, MergeMode.AGGRESSIVE)


def summarize(element, length, **options):
    engine = SymbolicEngine(SymbexOptions(**options))
    summary = engine.summarize_element(
        element.program,
        length,
        tables=element.state.tables(),
        element_name=element.name,
        configuration_key=element.configuration_key(),
    )
    return summary, engine


def outcome_signature(summary):
    """The verdict-relevant content of a summary, invariant under merging.

    Merging collapses same-outcome siblings, so segment *counts* differ
    by design; the set of distinct reachable terminal behaviours may not.
    """
    return {
        (seg.outcome, seg.port, seg.drop_reason, seg.crash_message)
        for seg in summary.segments
    }


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SymbolicEngine(SymbexOptions(merge="bogus"))

    def test_all_modes_accepted(self):
        for mode in MODES:
            SymbolicEngine(SymbexOptions(merge=mode))


class TestBranchyCollapse:
    def test_conservative_collapses_synthetic_branches(self):
        for branches in (2, 3, 4):
            element = synthetic_branchy_element(branches)
            off, _ = summarize(element, 24, merge="off")
            merged, engine = summarize(element, 24)
            assert len(off.segments) == 2**branches
            assert len(merged.segments) == 1
            assert merged.paths_merged == branches
            assert engine.merge_counters.paths_merged == branches
            assert merged.ites_introduced > 0
            # Strictly fewer paths explored: the join after each branch
            # keeps the frontier at one state instead of doubling it.
            assert merged.paths_explored < off.paths_explored

    def test_merged_summary_still_partitions_the_input_space(self):
        element = synthetic_branchy_element(3)
        summary, _ = summarize(element, 24)
        solver = smt.Solver()
        disjunction = smt.Or(*[segment.constraint for segment in summary.segments])
        assert solver.check(smt.Not(disjunction)) == smt.CheckResult.UNSAT
        for i, first in enumerate(summary.segments):
            for second in summary.segments[i + 1 :]:
                assert (
                    solver.check(smt.And(first.constraint, second.constraint))
                    == smt.CheckResult.UNSAT
                )

    def test_merged_bytes_are_ite_lifted_not_havocked(self):
        """A model of the merged segment replays exactly on the interpreter."""
        element = synthetic_branchy_element(3)
        summary, _ = summarize(element, 24)
        solver = smt.Solver()
        interpreter = Interpreter()
        for segment in summary.segments:
            assert solver.check(segment.constraint) == smt.CheckResult.SAT
            model = solver.model()
            packet = bytes(int(model.get(f"in_b{i}", 0)) & 0xFF for i in range(24))
            result = interpreter.run(element.program, packet, state=element.state)
            assert result.outcome == segment.outcome
            assert result.instructions <= segment.instructions

    def test_conservative_threshold_rejects_wide_merges(self):
        element = synthetic_branchy_element(3)
        narrow, _ = summarize(element, 24, merge="conservative", merge_max_ites=0)
        wide, _ = summarize(element, 24, merge="conservative")
        assert narrow.merge_rejected > 0
        assert narrow.paths_merged == 0
        assert len(narrow.segments) > len(wide.segments)

    def test_off_mode_reports_zero_merge_work(self):
        summary, engine = summarize(synthetic_branchy_element(3), 24, merge="off")
        assert summary.paths_merged == 0
        assert summary.ites_introduced == 0
        assert summary.merge_rejected == 0
        assert engine.merge_counters == MergeCounters()


class TestCatalogDifferential:
    def test_catalog_elements_same_outcomes_under_all_modes(self):
        for pipeline in fleet_catalog(6):
            for element in pipeline.elements:
                reference = None
                for mode in MODES:
                    summary, _ = summarize(element, 24, merge=mode)
                    signature = outcome_signature(summary)
                    if reference is None:
                        reference = signature
                    else:
                        assert signature == reference, (
                            f"{pipeline.name}/{element.name} diverges under {mode}"
                        )

    def test_fleet_verdicts_identical_under_all_modes(self):
        reports = {
            mode: certify_fleet(
                fleet_catalog(4),
                [CrashFreedom()],
                input_lengths=(24,),
                options=SymbexOptions(merge=mode),
                instruction_bounds=True,
            )
            for mode in MODES
        }
        reference = reports[MergeMode.OFF]
        for mode in (MergeMode.CONSERVATIVE, MergeMode.AGGRESSIVE):
            report = reports[mode]
            assert report.verdicts() == reference.verdicts()
            assert len(report.certified) == len(reference.certified)
            assert (
                report.statistics.counterexamples
                == reference.statistics.counterexamples
            )
            # instructions merge as max() per segment, so the certified
            # bound stays a sound upper bound — but composing per-element
            # maxima can pair arms that never co-occur, so it may exceed
            # the exact (merge=off) bound.  Never undershoot it.
            for merged_cert, reference_cert in zip(
                report.certifications, reference.certifications
            ):
                assert (
                    merged_cert.instruction_bound.bound
                    >= reference_cert.instruction_bound.bound
                )
        assert (
            reports[MergeMode.CONSERVATIVE].statistics.paths_merged > 0
        ), "the catalog has branchy elements; conservative merging must fire"

    def test_branchy_pipeline_counterexample_parity(self):
        # length 8 starves the branchy elements' byte reads: crash paths
        # exist, and every mode must find the same violation.
        pipeline = synthetic_pipeline(elements=3, branches_per_element=2)
        results = {}
        for mode in MODES:
            results[mode] = verify_crash_freedom(
                Pipeline.chain(
                    [synthetic_branchy_element(2, name="b")], name="crashy"
                ),
                input_lengths=[1],
                options=SymbexOptions(merge=mode),
            )
        reference = results[MergeMode.OFF]

        def violations(result):
            return {
                (ce.violating_element, ce.violation_kind, ce.detail)
                for ce in result.counterexamples
            }

        for mode in MODES:
            assert results[mode].verdict == reference.verdict
            # Merging may *deduplicate* counterexamples (off reaches the
            # same crash along sibling paths), never lose a distinct one.
            assert violations(results[mode]) == violations(reference)
            assert len(results[mode].counterexamples) <= len(
                reference.counterexamples
            )


def random_element(seed):
    """A deterministic random branchy element: nested ifs over packet bytes,
    register arithmetic, stores, occasional asserts and drops."""

    class RandomElement(Element):
        def build_program(self):
            rng = random.Random(seed)
            builder = ProgramBuilder(self.name)
            builder.assign("acc", builder.const(0))

            def block(depth):
                for _ in range(rng.randint(1, 2)):
                    op = rng.random()
                    offset = rng.randint(0, 7)
                    if op < 0.35 and depth < 3:
                        with builder.if_(builder.load(offset, 1) > rng.randint(0, 255)):
                            block(depth + 1)
                        if rng.random() < 0.5:
                            with builder.else_():
                                block(depth + 1)
                    elif op < 0.55:
                        builder.assign(
                            "acc", builder.reg("acc") + builder.load(offset, 1)
                        )
                    elif op < 0.75:
                        builder.store(offset, 1, builder.reg("acc") & 0xFF)
                    elif op < 0.85 and depth > 0:
                        builder.assert_(
                            builder.load(offset, 1) < rng.randint(128, 256),
                            f"random assert {seed}",
                        )
                    elif op < 0.95 and depth > 0:
                        builder.drop(f"random drop {seed}")
                        return
                    else:
                        builder.set_meta("mark", builder.reg("acc"))

            block(0)
            builder.emit(0)
            return builder.build()

    return RandomElement(name=f"rand{seed}")


class TestRandomProgramDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_random_programs_agree_across_modes(self, seed):
        element = random_element(seed)
        reference_summary = None
        reference_result = None
        for mode in MODES:
            summary, _ = summarize(element, 8, merge=mode)
            signature = outcome_signature(summary)
            result = verify_crash_freedom(
                Pipeline.chain([random_element(seed)], name=f"p{seed}"),
                input_lengths=[8],
                options=SymbexOptions(merge=mode),
            )
            if reference_summary is None:
                reference_summary, reference_result = signature, result
            else:
                assert signature == reference_summary
                assert result.verdict == reference_result.verdict
                # Same distinct violations; merging may dedupe siblings.
                assert {
                    (ce.violating_element, ce.violation_kind, ce.detail)
                    for ce in result.counterexamples
                } == {
                    (ce.violating_element, ce.violation_kind, ce.detail)
                    for ce in reference_result.counterexamples
                }

    @pytest.mark.parametrize("seed", range(8))
    def test_merged_paths_never_exceed_reference(self, seed):
        element = random_element(seed)
        off, _ = summarize(element, 8, merge="off")
        for mode in (MergeMode.CONSERVATIVE, MergeMode.AGGRESSIVE):
            merged, _ = summarize(random_element(seed), 8, merge=mode)
            assert len(merged.segments) <= len(off.segments)
            assert merged.paths_explored <= off.paths_explored


class TestMergeStatesUnit:
    def test_non_siblings_are_rejected(self):
        # Two states whose constraints are not structurally complementary:
        # merge_states must refuse (no solver call, no unsound disjoin).
        from repro.symbex.state import PathState, SymbolicPacket

        first = PathState(packet=SymbolicPacket.fresh(2))
        second = PathState(packet=SymbolicPacket.fresh(2))
        x = smt.BitVec("mx", 64)
        first.constraints = [smt.intern_term(x > 1)]
        second.constraints = [smt.intern_term(x > 5)]
        counters = MergeCounters()
        merged = merge_states(
            [first, second], MergeMode.CONSERVATIVE, 64, counters
        )
        assert len(merged) == 2
        assert counters.paths_merged == 0
        assert counters.merge_rejected >= 1

    def test_complementary_siblings_merge(self):
        from repro.symbex.state import PathState, SymbolicPacket

        packet = SymbolicPacket.fresh(2)
        first = PathState(packet=packet.copy())
        second = PathState(packet=packet.copy())
        cond = smt.intern_term(smt.simplify(packet.byte(0) > 7))
        first.constraints = [cond]
        second.constraints = [smt.intern_term(smt.simplify(smt.Not(cond)))]
        first.packet.set_byte(1, smt.BitVecVal(1, 8))
        second.packet.set_byte(1, smt.BitVecVal(2, 8))
        counters = MergeCounters()
        merged = merge_states(
            [first, second], MergeMode.CONSERVATIVE, 64, counters
        )
        assert len(merged) == 1
        assert counters.paths_merged == 1
        assert counters.ites_introduced == 1
        # The complementary pair disjoins to TRUE: no residual constraint.
        assert merged[0].constraints == []
