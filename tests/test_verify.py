"""Tests for the verifier: Step-1 suspects, Step-2 composition, properties, baseline."""


from repro import smt
from repro.dataplane import Element, Pipeline, PipelineDriver
from repro.dataplane.elements import (
    CheckIPHeader,
    DecIPTTL,
    IPLookup,
    IPOptions,
    NetFlow,
)
from repro.ir import ElementProgram, ProgramBuilder
from repro.symbex import SymbexOptions
from repro.verify import (
    CompositionEngine,
    CrashFreedom,
    MonolithicVerifier,
    PipelineVerifier,
    SummaryCache,
    Verdict,
    destination_reachability,
    verify_crash_freedom,
)
from repro.workloads import ip_router_pipeline, synthetic_pipeline

INPUT_LENGTH = 24


class ToyClamp(Element):
    """E1 of Figure 2: clamp "negative" (sign-bit-set) bytes to zero."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        with builder.if_(value >= 0x80):
            builder.store(0, 1, 0)
        builder.emit(0)
        return builder.build()


class ToyAssert(Element):
    """E2 of Figure 2: crash on "negative" input, clamp small values to 10."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        builder.assert_(value < 0x80, "negative input")
        with builder.if_(value < 10):
            builder.store(0, 1, 10)
        builder.emit(0)
        return builder.build()


class TestFigure2:
    def test_suspect_element_alone_is_violated(self):
        result = verify_crash_freedom(
            Pipeline.chain([ToyAssert(name="E2")], name="e2-alone"), input_lengths=[1]
        )
        assert result.violated
        counterexample = result.counterexamples[0]
        assert counterexample.packet[0] >= 0x80
        assert counterexample.confirmed_by_replay is True

    def test_composed_pipeline_is_proved(self):
        pipeline = Pipeline.chain([ToyClamp(name="E1"), ToyAssert(name="E2")], name="toy")
        result = verify_crash_freedom(pipeline, input_lengths=[1])
        assert result.proved
        # Step 1 found the suspect; Step 2 discharged it.
        assert result.statistics.suspect_segments >= 1
        assert result.statistics.composed_paths_feasible == 0

    def test_step1_shortcut_when_no_suspects(self):
        pipeline = Pipeline.chain([ToyClamp(name="E1"), ToyClamp(name="E1b")], name="clamps")
        result = verify_crash_freedom(pipeline, input_lengths=[1])
        assert result.proved
        assert result.statistics.suspect_segments == 0
        assert result.statistics.composed_paths_checked == 0


class TestIPRouterVerification:
    def test_router_prefixes_are_crash_free(self):
        for length in (1, 2, 3):
            pipeline = ip_router_pipeline(length=length, verify_checksum=False)
            result = verify_crash_freedom(pipeline, input_lengths=[INPUT_LENGTH])
            assert result.proved, result.summary()

    def test_checkipheader_protects_ipoptions(self):
        pipeline = Pipeline.chain(
            [CheckIPHeader(name="chk", verify_checksum=False), IPOptions(name="opts", max_options=8)],
            name="protects",
        )
        result = verify_crash_freedom(pipeline, input_lengths=[INPUT_LENGTH])
        assert result.proved
        assert result.statistics.suspect_segments > 0  # suspects existed but were infeasible

    def test_unprotected_ipoptions_is_violated_with_confirmed_packet(self):
        pipeline = Pipeline.chain([IPOptions(name="opts", max_options=8)], name="unprotected")
        result = verify_crash_freedom(pipeline, input_lengths=[INPUT_LENGTH])
        assert result.violated
        counterexample = result.counterexamples[0]
        assert counterexample.confirmed_by_replay is True
        # Replaying the packet really does crash the concrete element.
        driver = PipelineDriver(pipeline)
        assert driver.inject(counterexample.packet).crashed

    def test_instruction_bound_is_respected_by_concrete_traffic(self):
        pipeline = ip_router_pipeline(length=3, verify_checksum=False)
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=20_000))
        bound = verifier.instruction_bound(input_lengths=[INPUT_LENGTH], find_witness=False)
        assert bound.bound > 0

        from repro.workloads import PacketWorkload

        driver = PipelineDriver(ip_router_pipeline(length=3, verify_checksum=False))
        for packet in PacketWorkload(valid=15, malformed=10, random_blobs=10, seed=11):
            trace = driver.inject(packet[:INPUT_LENGTH].ljust(INPUT_LENGTH, b"\x00"))
            assert trace.total_instructions <= bound.bound

    def test_bound_grows_with_pipeline_length(self):
        bounds = []
        for length in (1, 2, 3):
            verifier = PipelineVerifier(
                ip_router_pipeline(length=length, verify_checksum=False),
                options=SymbexOptions(max_paths=20_000),
            )
            bounds.append(verifier.instruction_bound(input_lengths=[INPUT_LENGTH], find_witness=False).bound)
        assert bounds[0] < bounds[1] < bounds[2]

    def test_stateful_pipeline_crash_freedom(self):
        pipeline = Pipeline.chain(
            [CheckIPHeader(name="chk", verify_checksum=False), NetFlow(name="nf")],
            name="stateful",
        )
        result = verify_crash_freedom(pipeline, input_lengths=[INPUT_LENGTH])
        assert result.proved


class TestReachability:
    def build_pipeline(self):
        return Pipeline.chain(
            [
                CheckIPHeader(name="chk", verify_checksum=False),
                IPLookup([("10.0.0.0/8", 0), ("0.0.0.0/0", 0)], name="rt"),
                DecIPTTL(name="ttl"),
            ],
            name="reach",
        )

    def test_naive_property_finds_ttl_drop(self):
        pipeline = self.build_pipeline()
        prop = destination_reachability(0x0A010203, exempt_elements={"chk"})
        result = PipelineVerifier(pipeline).verify(prop, input_lengths=[INPUT_LENGTH])
        assert result.violated
        assert any(c.violating_element == "ttl" for c in result.counterexamples)

    def test_refined_property_is_proved(self):
        pipeline = self.build_pipeline()
        base = destination_reachability(0x0A010203, exempt_elements={"chk"})

        def predicate(packet_bytes):
            ttl = smt.ZeroExt(56, packet_bytes[8])
            return smt.And(base.input_predicate(packet_bytes), smt.UGT(ttl, smt.BitVecVal(1, 64)))

        from repro.verify import Reachability

        prop = Reachability(
            input_predicate=predicate,
            exempt_elements={"chk"},
            description="packets with TTL > 1 to 10.1.2.3 are delivered",
        )
        result = PipelineVerifier(pipeline).verify(prop, input_lengths=[INPUT_LENGTH])
        assert result.proved, result.summary()

    def test_missing_route_is_detected(self):
        pipeline = Pipeline.chain(
            [
                CheckIPHeader(name="chk", verify_checksum=False),
                IPLookup([("192.168.0.0/16", 0)], name="rt"),
            ],
            name="noroute",
        )
        prop = destination_reachability(0x0A010203, exempt_elements={"chk"})
        result = PipelineVerifier(pipeline).verify(prop, input_lengths=[INPUT_LENGTH])
        assert result.violated
        assert any(c.violating_element == "rt" for c in result.counterexamples)


class TestCompositionEngine:
    def test_summary_cache_deduplicates_by_configuration(self):
        cache = SummaryCache(SymbexOptions())
        first = DecIPTTL(name="ttl_a")
        second = DecIPTTL(name="ttl_b")
        cache.summarize(first, 20)
        cache.summarize(second, 20)
        assert cache.statistics.misses == 1
        assert cache.statistics.hits == 1

    def test_extend_threads_packet_state(self):
        cache = SummaryCache(SymbexOptions())
        composer = CompositionEngine(cache)
        element = DecIPTTL(name="ttl")
        summary = cache.summarize(element, 20)
        emit = summary.emit_segments[0]
        prefix = composer.initial_prefix(20)
        extended = composer.extend(prefix, element.name, emit)
        assert len(extended.current_bytes) == 20
        assert extended.instructions == emit.instructions
        feasible, model = composer.is_feasible(extended)
        assert feasible and model is not None

    def test_routes_to_enumeration(self):
        pipeline = ip_router_pipeline(length=3, verify_checksum=False)
        verifier = PipelineVerifier(pipeline)
        target = pipeline.element("dec_ttl")
        routes = verifier.composer.routes_to(pipeline, verifier.entry, target)
        assert len(routes) == 1
        assert [element.name for element, _port in routes[0]] == ["check_ip", "lookup"]


class TestMonolithicBaseline:
    def test_agrees_with_decomposed_on_small_pipeline(self):
        pipeline = Pipeline.chain(
            [CheckIPHeader(name="chk", verify_checksum=False), DecIPTTL(name="ttl")],
            name="small",
        )
        decomposed = verify_crash_freedom(pipeline, input_lengths=[INPUT_LENGTH])
        monolithic = MonolithicVerifier(
            pipeline, options=SymbexOptions(max_paths=10_000, max_seconds=60)
        ).verify(CrashFreedom(), input_length=INPUT_LENGTH)
        assert decomposed.proved and monolithic.proved

    def test_budget_exhaustion_reported(self):
        pipeline = synthetic_pipeline(elements=6, branches_per_element=4)
        # merge=off: state merging finishes this workload inside the starved
        # budget (and correctly reports the violation), defeating the test.
        baseline = MonolithicVerifier(
            pipeline, options=SymbexOptions(max_paths=50, max_seconds=30, merge="off")
        )
        result = baseline.verify(CrashFreedom(), input_length=8)
        assert result.verdict == Verdict.UNKNOWN
        assert result.statistics.budget_exceeded

    def test_finds_the_same_bug_as_decomposition(self):
        pipeline = Pipeline.chain([ToyAssert(name="E2")], name="bug")
        monolithic = MonolithicVerifier(pipeline).verify(CrashFreedom(), input_length=1)
        assert monolithic.violated
        assert monolithic.counterexamples[0].packet[0] >= 0x80


class TestPathScaling:
    def test_decomposed_work_is_linear_monolithic_exponential(self):
        """k elements with n branches: k*2^n segments decomposed vs ~2^(k*n) monolithic paths.

        merge=off throughout: this pins the *unmerged* path counts the
        paper's scaling argument is framed in.  State merging collapses
        these synthetic branches entirely (see test_merge_flattens_the_scaling).
        """
        branches = 2
        off = SymbexOptions(merge="off")
        segment_counts = []
        monolithic_paths = []
        for k in (1, 2, 3):
            pipeline = synthetic_pipeline(elements=k, branches_per_element=branches)
            verifier = PipelineVerifier(pipeline, options=off)
            summaries = verifier.element_summaries(8)
            segment_counts.append(sum(len(s.segments) for _e, s in summaries.values()))
            baseline = MonolithicVerifier(
                pipeline, options=SymbexOptions(max_paths=100_000, max_seconds=60, merge="off")
            )
            result = baseline.verify(CrashFreedom(), input_length=8)
            monolithic_paths.append(
                getattr(result.statistics, "pipeline_paths_explored", 0)
            )
        per_element = 2**branches
        assert segment_counts == [per_element * k for k in (1, 2, 3)]
        assert monolithic_paths == [per_element**k for k in (1, 2, 3)]

    def test_merge_flattens_the_scaling(self):
        """Conservative merging collapses the synthetic branch fan-out to one
        segment per element — the decomposed work becomes constant in n."""
        branches = 2
        for k in (1, 2, 3):
            pipeline = synthetic_pipeline(elements=k, branches_per_element=branches)
            verifier = PipelineVerifier(pipeline)
            summaries = verifier.element_summaries(8)
            assert sum(len(s.segments) for _e, s in summaries.values()) == k
