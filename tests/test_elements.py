"""Behavioural tests for the standard element library (concrete execution)."""

import pytest

from repro.dataplane import Pipeline, PipelineDriver
from repro.dataplane.elements import (
    NAT,
    CheckIPHeader,
    CheckLength,
    Classifier,
    DecIPTTL,
    EthDecap,
    EthEncap,
    EthMirror,
    FilterRule,
    IPFilter,
    IPLookup,
    IPOptions,
    NetFlow,
    Paint,
)
from repro.ir import Interpreter
from repro.net import IPv4Prefix, build_ethernet_frame, build_ipv4_packet, build_udp_datagram
from repro.workloads import well_formed_ip_packet


def run(element, data, metadata=None):
    """Run one element's program on raw bytes (element-level harness)."""
    return Interpreter().run(element.program, data, metadata, element.state)


class TestClassifier:
    def test_matches_route_to_ports(self):
        classifier = Classifier(["12/0800", "12/0806", "-"])
        ipv4 = bytearray(20)
        ipv4[12:14] = b"\x08\x00"
        arp = bytearray(20)
        arp[12:14] = b"\x08\x06"
        other = bytearray(20)
        assert run(classifier, ipv4).port == 0
        assert run(classifier, arp).port == 1
        assert run(classifier, other).port == 2

    def test_short_packet_falls_through(self):
        classifier = Classifier(["12/0800", "-"])
        assert run(classifier, bytes(4)).port == 1

    def test_no_match_without_catchall_drops(self):
        classifier = Classifier(["12/0800"])
        assert run(classifier, bytes(20)).dropped


class TestCheckIPHeader:
    def setup_method(self):
        self.element = CheckIPHeader(verify_checksum=True)

    def test_valid_packet_passes(self):
        result = run(self.element, well_formed_ip_packet())
        assert result.emitted and result.metadata["ip_header_valid"] == 1

    @pytest.mark.parametrize(
        "mutate, reason",
        [
            (lambda p: p[:10], "short"),
            (lambda p: bytes([0x65]) + p[1:], "version"),
            (lambda p: bytes([0x43]) + p[1:], "ihl"),
            (lambda p: p[:2] + (5).to_bytes(2, "big") + p[4:], "total length"),
            (lambda p: p[:10] + b"\xde\xad" + p[12:], "checksum"),
        ],
    )
    def test_malformed_packets_dropped(self, mutate, reason):
        packet = mutate(bytearray(well_formed_ip_packet()))
        result = run(self.element, packet)
        assert result.dropped, reason

    def test_checksum_check_can_be_disabled(self):
        packet = bytearray(well_formed_ip_packet())
        packet[10:12] = b"\xde\xad"
        assert run(CheckIPHeader(verify_checksum=False), packet).emitted


class TestDecIPTTL:
    def test_decrements_and_patches_checksum(self):
        from repro.net import verify_checksum

        element = DecIPTTL()
        packet = well_formed_ip_packet(ttl=100)
        result = run(element, packet)
        assert result.emitted and result.data[8] == 99
        assert verify_checksum(result.data[:20])

    @pytest.mark.parametrize("ttl", [0, 1])
    def test_expired_ttl_dropped(self, ttl):
        packet = bytearray(well_formed_ip_packet())
        packet[8] = ttl
        assert run(DecIPTTL(), packet).dropped

    def test_expired_port_variant(self):
        element = DecIPTTL(use_expired_port=True)
        packet = bytearray(well_formed_ip_packet())
        packet[8] = 1
        assert run(element, packet).port == 1

    def test_checksum_carry_case(self):
        from repro.net import verify_checksum

        # Choose a checksum close to 0xFFFF so the incremental update wraps.
        packet = bytearray(well_formed_ip_packet(src="255.255.0.0", dst="0.0.255.254", ttl=2))
        result = run(DecIPTTL(), packet)
        assert result.emitted
        assert verify_checksum(result.data[:20])


class TestIPLookup:
    def test_routes_to_configured_ports(self):
        element = IPLookup([("10.0.0.0/8", 0), ("192.168.0.0/16", 1), ("0.0.0.0/0", 2)])
        assert run(element, well_formed_ip_packet(dst="10.1.1.1")).port == 0
        assert run(element, well_formed_ip_packet(dst="192.168.3.4")).port == 1
        assert run(element, well_formed_ip_packet(dst="8.8.8.8")).port == 2

    def test_no_route_drops(self):
        element = IPLookup([("10.0.0.0/8", 0)])
        assert run(element, well_formed_ip_packet(dst="8.8.8.8")).dropped

    def test_sets_output_port_metadata(self):
        element = IPLookup([("0.0.0.0/0", 0)])
        assert run(element, well_formed_ip_packet()).metadata["output_port"] == 0


class TestIPOptions:
    def test_no_options_fast_path(self):
        assert run(IPOptions(), well_formed_ip_packet()).emitted

    def test_nop_and_eol_options(self):
        packet = well_formed_ip_packet(options=bytes([1, 1, 0, 0]))
        assert run(IPOptions(), packet).emitted

    def test_sized_option(self):
        packet = well_formed_ip_packet(options=bytes([7, 8, 0, 0, 0, 0, 0, 0]))
        assert run(IPOptions(max_options=8), packet).emitted

    def test_option_running_past_header_dropped(self):
        packet = well_formed_ip_packet(options=bytes([7, 12, 0, 0]))
        assert run(IPOptions(), packet).dropped

    def test_option_length_below_two_dropped(self):
        packet = well_formed_ip_packet(options=bytes([7, 1, 0, 0]))
        assert run(IPOptions(), packet).dropped

    def test_trusts_upstream_header_length(self):
        # A packet whose IHL claims options beyond the buffer crashes the
        # element in isolation — the behaviour CheckIPHeader protects against.
        packet = bytearray(well_formed_ip_packet())
        packet[0] = 0x4F  # IHL = 15 (60-byte header) but the packet is shorter
        result = run(IPOptions(max_options=40), packet[:30])
        assert result.crashed


class TestIPFilter:
    def test_allow_and_deny_rules(self):
        element = IPFilter(
            rules=[
                FilterRule(action="deny", src=IPv4Prefix("10.9.0.0/16")),
                FilterRule(action="allow", dst=IPv4Prefix("10.0.0.0/8")),
            ],
            default_allow=False,
        )
        assert run(element, well_formed_ip_packet(src="10.9.1.1", dst="10.0.0.1")).dropped
        assert run(element, well_formed_ip_packet(src="10.8.1.1", dst="10.0.0.1")).emitted
        assert run(element, well_formed_ip_packet(src="10.8.1.1", dst="8.8.8.8")).dropped

    def test_port_rule_only_matches_transport(self):
        element = IPFilter(
            rules=[FilterRule(action="deny", protocol=17, dst_port=53)], default_allow=True
        )
        dns = build_ipv4_packet("1.1.1.1", "2.2.2.2", build_udp_datagram(999, 53, b"q"))
        web = build_ipv4_packet("1.1.1.1", "2.2.2.2", build_udp_datagram(999, 80, b"q"))
        icmp = build_ipv4_packet("1.1.1.1", "2.2.2.2", b"\x08\x00\x00\x00", protocol=1)
        assert run(element, dns).dropped
        assert run(element, web).emitted
        assert run(element, icmp).emitted


class TestStatefulElements:
    def test_netflow_counts_per_flow(self):
        element = NetFlow()
        packet_a = build_ipv4_packet("10.0.0.1", "10.0.0.2", build_udp_datagram(1, 2, b""))
        packet_b = build_ipv4_packet("10.0.0.3", "10.0.0.4", build_udp_datagram(3, 4, b""))
        for expected in (1, 2, 3):
            assert run(element, packet_a).metadata["flow_packets"] == expected
        assert run(element, packet_b).metadata["flow_packets"] == 1
        assert element.flow_count() == 2

    def test_nat_rewrites_source_and_allocates_ports(self):
        element = NAT(external_ip="192.0.2.1", port_base=10_000, port_count=100)
        first = build_ipv4_packet("10.0.0.1", "8.8.8.8", build_udp_datagram(5000, 53, b""))
        second = build_ipv4_packet("10.0.0.2", "8.8.8.8", build_udp_datagram(5000, 53, b""))
        result_one = run(element, first)
        result_two = run(element, second)
        result_repeat = run(element, first)
        assert result_one.emitted
        assert bytes(result_one.data[12:16]) == bytes([192, 0, 2, 1])
        port_one = int.from_bytes(result_one.data[20:22], "big")
        port_two = int.from_bytes(result_two.data[20:22], "big")
        assert port_one != port_two
        assert int.from_bytes(result_repeat.data[20:22], "big") == port_one

    def test_nat_pool_exhaustion(self):
        element = NAT(port_count=2)
        packets = [
            build_ipv4_packet(f"10.0.0.{i}", "8.8.8.8", build_udp_datagram(1000 + i, 53, b""))
            for i in range(1, 5)
        ]
        outcomes = [run(element, packet).outcome for packet in packets]
        assert outcomes[:2] == ["emit", "emit"]
        assert "drop" in outcomes[2:]

    def test_nat_passes_non_transport_traffic(self):
        element = NAT()
        icmp = build_ipv4_packet("10.0.0.1", "8.8.8.8", b"\x08\x00\x00\x00", protocol=1)
        result = run(element, icmp)
        assert result.emitted
        assert bytes(result.data[12:16]) == bytes(bytearray([192, 0, 2, 1]))


class TestUtilityElements:
    def test_paint_sets_metadata(self):
        assert run(Paint(color=9), b"x").metadata["paint"] == 9

    def test_checklength(self):
        assert run(CheckLength(max_length=10), bytes(5)).emitted
        assert run(CheckLength(max_length=10), bytes(50)).dropped

    def test_eth_mirror_swaps_addresses(self):
        frame = build_ethernet_frame("00:00:00:00:00:01", "00:00:00:00:00:02", b"x" * 20)
        result = run(EthMirror(), frame)
        assert bytes(result.data[0:6]) == bytes.fromhex("000000000002")
        assert bytes(result.data[6:12]) == bytes.fromhex("000000000001")

    def test_eth_encap_decap_roundtrip(self):
        inner = well_formed_ip_packet()
        pipeline = Pipeline.chain([EthEncap(name="e"), EthDecap(name="d")])
        driver = PipelineDriver(pipeline)
        trace = driver.inject(inner)
        assert trace.delivered and trace.output_data == inner

    def test_click_args_constructors(self):
        classifier = Classifier.from_click_args(["12/0800", "-"])
        assert classifier.num_output_ports == 2
        lookup = IPLookup.from_click_args(["10.0.0.0/8 0", "0.0.0.0/0 1"])
        assert lookup.num_output_ports == 2
        options = IPOptions.from_click_args(["6"])
        assert options.max_options == 6
