"""Unit and property-based tests for the SAT backend and the Solver facade."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt import (
    And,
    BitVec,
    BitVecVal,
    Bool,
    CheckResult,
    Eq,
    Implies,
    Not,
    Or,
    Solver,
    UGT,
    ULE,
    ULT,
    check_formula,
    evaluate,
)
from repro.smt import SLE, SLT
from repro.smt.cnf import CNFBuilder
from repro.smt.errors import SolverError
from repro.smt.interval import QuickCheckResult, quick_check
from repro.smt.sat import SATSolver, SatResult, luby, solve_clauses


class TestSATSolver:
    def test_trivial_sat(self):
        result, model = solve_clauses([[1], [2, 3]], num_vars=3)
        assert result == SatResult.SAT
        assert model[1] is True

    def test_trivial_unsat(self):
        result, _model = solve_clauses([[1], [-1]], num_vars=1)
        assert result == SatResult.UNSAT

    def test_pigeonhole_unsat(self):
        # 3 pigeons in 2 holes: variable p(i,h) = 2*i + h + 1.
        clauses = []
        for pigeon in range(3):
            clauses.append([2 * pigeon + 1, 2 * pigeon + 2])
        for hole in range(2):
            for a in range(3):
                for b in range(a + 1, 3):
                    clauses.append([-(2 * a + hole + 1), -(2 * b + hole + 1)])
        result, _model = solve_clauses(clauses, num_vars=6)
        assert result == SatResult.UNSAT

    def test_model_satisfies_clauses(self):
        rng = random.Random(42)
        for _ in range(25):
            num_vars = rng.randrange(3, 10)
            clauses = []
            for _ in range(rng.randrange(3, 25)):
                clause = [
                    rng.choice([1, -1]) * rng.randrange(1, num_vars + 1)
                    for _ in range(rng.randrange(1, 4))
                ]
                clauses.append(clause)
            result, model = solve_clauses(clauses, num_vars=num_vars)
            brute = self._brute_force(clauses, num_vars)
            assert (result == SatResult.SAT) == brute
            if result == SatResult.SAT:
                assert model is not None
                for clause in clauses:
                    assert any(
                        (model[abs(lit)] if lit > 0 else not model[abs(lit)]) for lit in clause
                    )

    @staticmethod
    def _brute_force(clauses, num_vars):
        for assignment in range(1 << num_vars):
            values = [(assignment >> i) & 1 == 1 for i in range(num_vars)]
            ok = all(
                any(
                    (values[abs(lit) - 1] if lit > 0 else not values[abs(lit) - 1])
                    for lit in clause
                )
                for clause in clauses
            )
            if ok:
                return True
        return False

    def test_assumptions(self):
        solver = SATSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SatResult.SAT
        assert solver.value(2) is True
        assert solver.solve(assumptions=[-1, -2]) == SatResult.UNSAT

    def test_luby_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
        with pytest.raises(ValueError):
            luby(0)

    def test_work_counters_track_search(self):
        """A pigeonhole search hard enough to exceed the Luby restart base
        must record decisions, conflicts, and at least one actual restart."""
        pigeons, holes = 6, 5  # ~170 conflicts: past RESTART_BASE=64
        clauses = []
        for pigeon in range(pigeons):
            clauses.append([holes * pigeon + hole + 1 for hole in range(holes)])
        for hole in range(holes):
            for a in range(pigeons):
                for b in range(a + 1, pigeons):
                    clauses.append([-(holes * a + hole + 1), -(holes * b + hole + 1)])
        solver = SATSolver(pigeons * holes)
        solver.add_clauses(clauses)
        assert solver.solve() == SatResult.UNSAT
        assert solver.conflicts > 64
        assert solver.decisions > 0
        assert solver.restarts >= 1

    def test_restarts_do_not_change_verdicts(self):
        rng = random.Random(99)
        for _ in range(10):
            num_vars = rng.randrange(4, 9)
            clauses = [
                [rng.choice([1, -1]) * rng.randrange(1, num_vars + 1)
                 for _ in range(rng.randrange(1, 4))]
                for _ in range(rng.randrange(5, 30))
            ]
            result, _model = solve_clauses(clauses, num_vars=num_vars)
            assert (result == SatResult.SAT) == TestSATSolver._brute_force(clauses, num_vars)


class TestCNFBuilder:
    def test_constant_literals(self):
        cnf = CNFBuilder()
        assert cnf.lit_and(cnf.TRUE, cnf.TRUE) == cnf.TRUE
        assert cnf.lit_and(cnf.TRUE, cnf.FALSE) == cnf.FALSE
        assert cnf.lit_or(cnf.FALSE, cnf.FALSE) == cnf.FALSE
        assert cnf.lit_xor(cnf.TRUE, cnf.TRUE) == cnf.FALSE

    def test_gate_encodings_agree_with_python(self):
        for gate, reference in (("and", lambda a, b: a and b),
                                ("or", lambda a, b: a or b),
                                ("xor", lambda a, b: a != b)):
            for a_value in (False, True):
                for b_value in (False, True):
                    cnf = CNFBuilder()
                    a, b = cnf.new_var(), cnf.new_var()
                    out = getattr(cnf, f"lit_{gate}")(a, b)
                    cnf.assert_lit(a if a_value else -a)
                    cnf.assert_lit(b if b_value else -b)
                    cnf.assert_lit(out)
                    result, _ = solve_clauses(cnf.clauses, num_vars=cnf.num_vars)
                    expected = reference(a_value, b_value)
                    assert (result == SatResult.SAT) == expected


class TestSolverFacade:
    def test_sat_with_model(self):
        x = BitVec("x", 8)
        solver = Solver()
        solver.add(ULT(x, 10), UGT(x, 7))
        assert solver.check() == CheckResult.SAT
        assert solver.model()["x"] in (8, 9)

    def test_unsat(self):
        x = BitVec("x", 8)
        solver = Solver()
        solver.add(ULT(x, 3), UGT(x, 5))
        assert solver.check() == CheckResult.UNSAT

    def test_model_before_check_raises(self):
        with pytest.raises(SolverError):
            Solver().model()

    def test_push_pop(self):
        x = BitVec("x", 8)
        solver = Solver()
        solver.add(ULT(x, 10))
        solver.push()
        solver.add(UGT(x, 20))
        assert solver.check() == CheckResult.UNSAT
        solver.pop()
        assert solver.check() == CheckResult.SAT
        with pytest.raises(SolverError):
            solver.pop()

    def test_non_boolean_assertion_rejected(self):
        with pytest.raises(SolverError):
            Solver().add(BitVec("x", 8))

    def test_cache_hit_statistics(self):
        x = BitVec("x", 8)
        solver = Solver()
        solver.add(Eq(x, BitVecVal(4, 8)))
        solver.check()
        solver.check()
        assert solver.statistics.cache_hits >= 1

    def test_cache_survives_goal_collection(self):
        """The uid-keyed cache must pin its goal terms: the intern table is
        weak, so an unpinned conjunction would be collected between checks
        and structurally identical repeats would re-intern to new uids."""
        import gc

        x = BitVec("x", 8)
        solver = Solver()
        for _repeat in range(3):
            solver.push()
            solver.add(ULT(x, 10), UGT(x, 3))  # multi-term goal: conjunction is transient
            solver.check()
            solver.pop()
            gc.collect()
        assert solver.statistics.cache_hits >= 2

    def test_multi_variable_arithmetic(self):
        x, y, z = BitVec("x", 16), BitVec("y", 16), BitVec("z", 16)
        status, model = check_formula(
            And(Eq(x + y, BitVecVal(1000, 16)), Eq(y, z * 3), UGT(z, 50), ULT(x, 900))
        )
        assert status == CheckResult.SAT
        assert model is not None
        x_value, y_value, z_value = model["x"], model["y"], model["z"]
        assert (x_value + y_value) % 65536 == 1000
        assert y_value == (z_value * 3) % 65536
        assert z_value > 50 and x_value < 900

    def test_boolean_structure(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        status, model = check_formula(And(Or(a, b), Implies(a, c), Not(c)))
        assert status == CheckResult.SAT
        assert model is not None and model.satisfies(And(Or(a, b), Implies(a, c), Not(c)))


class TestQuickCheck:
    def test_unsat_interval(self):
        x = BitVec("x", 8)
        outcome = quick_check(And(ULT(x, 3), UGT(x, 10)))
        assert outcome.status == QuickCheckResult.UNSAT

    def test_sat_with_model(self):
        x = BitVec("x", 8)
        outcome = quick_check(And(UGT(x, 3), ULT(x, 10)))
        assert outcome.status == QuickCheckResult.SAT
        assert 3 < outcome.model["x"] < 10

    def test_unknown_for_complex_terms(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        outcome = quick_check(Eq(x + y, BitVecVal(5, 8)))
        assert outcome.status == QuickCheckResult.UNKNOWN

    def test_disequality_exhaustion(self):
        x = BitVec("x", 8)
        constraints = [ULE(x, BitVecVal(1, 8))] + [
            Not(Eq(x, BitVecVal(v, 8))) for v in (0, 1)
        ]
        outcome = quick_check(And(*constraints))
        assert outcome.status == QuickCheckResult.UNSAT

    def test_wraparound_range_is_unsat(self):
        # x > 250 and x < 5 has no unsigned 8-bit witness: the interval
        # [251, 4] is empty (intervals do not wrap).
        x = BitVec("x", 8)
        outcome = quick_check(And(UGT(x, 250), ULT(x, 5)))
        assert outcome.status == QuickCheckResult.UNSAT

    def test_wraparound_subject_stays_unknown_for_sat(self):
        # The subject x+10 is a pseudo-variable: intervals may refute it,
        # but must never *claim* SAT (no model can be exhibited for it).
        x = BitVec("x", 8)
        outcome = quick_check(ULT(x + 10, 5))
        assert outcome.status == QuickCheckResult.UNKNOWN
        conflict = quick_check(And(ULT(x + 1, 3), UGT(x + 1, 7)))
        assert conflict.status == QuickCheckResult.UNSAT

    def test_signed_comparisons_are_not_misjudged(self):
        # SLT/SLE are outside the unsigned-interval domain: the check must
        # answer UNKNOWN, never a wrong verdict (0xFF is -1 signed).
        x = BitVec("x", 8)
        assert quick_check(SLT(x, BitVecVal(0, 8))).status == QuickCheckResult.UNKNOWN
        assert (
            quick_check(And(SLE(x, BitVecVal(5, 8)), UGT(x, 3))).status
            == QuickCheckResult.UNKNOWN
        )
        # And the full solver agrees signed constraints are satisfiable.
        status, model = check_formula(SLT(x, BitVecVal(0, 8)))
        assert status == CheckResult.SAT
        assert model is not None and int(model["x"]) >= 0x80

    def test_width_one_vectors(self):
        b = BitVec("b", 1)
        sat = quick_check(Eq(b, BitVecVal(1, 1)))
        assert sat.status == QuickCheckResult.SAT
        assert sat.model["b"] == 1
        empty = quick_check(And(Eq(b, BitVecVal(1, 1)), Eq(b, BitVecVal(0, 1))))
        assert empty.status == QuickCheckResult.UNSAT
        excluded = quick_check(And(Not(Eq(b, BitVecVal(0, 1))), Not(Eq(b, BitVecVal(1, 1)))))
        assert excluded.status == QuickCheckResult.UNSAT


@st.composite
def bitvector_formula(draw):
    """Random 8-bit formulas over two variables, paired with a reference evaluator."""
    x = BitVec("x", 8)
    y = BitVec("y", 8)

    def term(depth):
        if depth == 0 or draw(st.booleans()):
            choice = draw(st.integers(min_value=0, max_value=2))
            if choice == 0:
                return x
            if choice == 1:
                return y
            return BitVecVal(draw(st.integers(min_value=0, max_value=255)), 8)
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "mul"]))
        a, b = term(depth - 1), term(depth - 1)
        return {
            "add": a + b,
            "sub": a - b,
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
            "mul": a * b,
        }[op]

    left, right = term(2), term(2)
    comparison = draw(st.sampled_from(["eq", "ult", "ule"]))
    formula = {"eq": Eq, "ult": ULT, "ule": ULE}[comparison](left, right)
    if draw(st.booleans()):
        formula = Not(formula)
    return formula


class TestSolverAgainstEvaluation:
    @settings(max_examples=30, deadline=None)
    @given(bitvector_formula())
    def test_sat_models_satisfy_formula(self, formula):
        status, model = check_formula(formula)
        if status == CheckResult.SAT:
            assert model is not None
            assert bool(model.evaluate(formula)) is True

    @settings(max_examples=20, deadline=None)
    @given(bitvector_formula(), st.integers(0, 255), st.integers(0, 255))
    def test_unsat_means_no_witness(self, formula, x_value, y_value):
        status, _model = check_formula(formula)
        if status == CheckResult.UNSAT:
            assert evaluate(formula, {"x": x_value, "y": y_value}) is False

    @settings(max_examples=30, deadline=None)
    @given(bitvector_formula(), st.integers(0, 255), st.integers(0, 255))
    def test_simplify_preserves_truth(self, formula, x_value, y_value):
        env = {"x": x_value, "y": y_value}
        assert evaluate(formula, env) == evaluate(smt.simplify(formula), env)
