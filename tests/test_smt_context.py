"""Tests for the incremental solver core: interning, scoping, differentials."""

import random

import pytest

from repro import smt
from repro.smt import (
    And,
    AssumptionChecker,
    BitVec,
    BitVecVal,
    Bool,
    CheckResult,
    Eq,
    Not,
    Solver,
    SolverContext,
    UGT,
    ULE,
    ULT,
    intern_term,
)
from repro.smt.errors import SolverError
from repro.smt.terms import Op, Term, mk_term


class TestInterning:
    def test_intern_identity_iff_structurally_equal(self):
        for first, second, same in [
            (BitVec("x", 8) + 1, BitVec("x", 8) + 1, True),
            (BitVec("x", 8) + 1, BitVec("x", 8) + 2, False),
            (BitVec("x", 8), BitVec("x", 16), False),
            (BitVec("x", 8), BitVec("y", 8), False),
            (ULT(BitVec("x", 8), 5), ULT(BitVec("x", 8), 5), True),
            (smt.Extract(3, 0, BitVec("x", 8)), smt.Extract(3, 0, BitVec("x", 8)), True),
            (smt.Extract(3, 0, BitVec("x", 8)), smt.Extract(4, 1, BitVec("x", 8)), False),
        ]:
            assert (intern_term(first) is intern_term(second)) == same
            assert first.structurally_equal(second) == same

    def test_raw_terms_intern_to_the_constructed_instance(self):
        built = BitVec("z", 8) + BitVecVal(3, 8)
        raw = Term(Op.BV_ADD, (BitVec("z", 8), BitVecVal(3, 8)), built.sort)
        assert raw is not built
        assert intern_term(raw) is built

    def test_constructors_return_shared_instances(self):
        assert BitVec("w", 8) is BitVec("w", 8)
        assert (BitVec("w", 8) + 1) is (BitVec("w", 8) + 1)
        assert smt.BoolVal(True) is smt.TRUE
        assert mk_term(Op.BOOL_CONST, value=True) is smt.TRUE
        assert mk_term(Op.BOOL_CONST, value=False) is smt.FALSE

    def test_interned_terms_share_uids(self):
        a, b = ULE(BitVec("u", 8), 9), ULE(BitVec("u", 8), 9)
        assert a.uid == b.uid
        assert a.uid != ULE(BitVec("u", 8), 10).uid

    def test_bv_const_normalises_before_interning(self):
        assert BitVecVal(256 + 7, 8) is BitVecVal(7, 8)


class TestSolverContextScoping:
    def test_push_pop_mirrors_scratch_solver(self):
        x = BitVec("x", 8)
        context = SolverContext()
        context.assert_term(ULT(x, 10))
        context.push()
        context.assert_term(UGT(x, 20))
        assert context.check_assumptions() == CheckResult.UNSAT
        context.pop()
        assert context.check_assumptions() == CheckResult.SAT
        assert context.model()["x"] < 10
        with pytest.raises(SolverError):
            context.pop()

    def test_nested_scopes(self):
        x = BitVec("x", 8)
        context = SolverContext()
        context.assert_term(ULT(x, 100))
        context.push()
        context.assert_term(UGT(x, 50))
        context.push()
        context.assert_term(Eq(x, BitVecVal(51, 8)))
        assert context.depth == 2
        assert context.check_assumptions() == CheckResult.SAT
        assert context.model()["x"] == 51
        context.pop()
        context.push()
        context.assert_term(Eq(x, BitVecVal(10, 8)))
        assert context.check_assumptions() == CheckResult.UNSAT
        context.pop()
        context.pop()
        assert context.check_assumptions() == CheckResult.SAT

    def test_assumptions_do_not_persist(self):
        x = BitVec("x", 8)
        context = SolverContext()
        context.assert_term(ULT(x, 10))
        assert context.check_assumptions(UGT(x, 20)) == CheckResult.UNSAT
        assert context.check_assumptions() == CheckResult.SAT
        assert context.check_assumptions(UGT(x, 5)) == CheckResult.SAT
        assert context.model()["x"] in (6, 7, 8, 9)

    def test_non_boolean_assertion_rejected(self):
        with pytest.raises(SolverError):
            SolverContext().assert_term(BitVec("x", 8))

    def test_model_before_check_raises(self):
        with pytest.raises(SolverError):
            SolverContext().model()

    def test_encodings_are_reused_across_checks(self):
        x = BitVec("x", 8)
        context = SolverContext()
        context.assert_term(ULT(x, 10))
        context.check_assumptions()
        encoded_once = context.statistics.terms_encoded
        context.check_assumptions()
        context.check_assumptions(ULT(x, 10))
        assert context.statistics.terms_encoded == encoded_once
        assert context.statistics.literals_reused >= 2


def _random_formula(rng: random.Random) -> "smt.Term":
    """A random 8-bit comparison over two variables (same shape as the SAT tests)."""
    x, y = BitVec("x", 8), BitVec("y", 8)

    def operand(depth):
        if depth == 0 or rng.random() < 0.4:
            return rng.choice([x, y, BitVecVal(rng.randrange(256), 8)])
        a, b = operand(depth - 1), operand(depth - 1)
        return rng.choice([a + b, a - b, a & b, a | b, a ^ b, a * b])

    comparison = rng.choice([Eq, ULT, ULE])(operand(2), operand(2))
    return Not(comparison) if rng.random() < 0.5 else comparison


class TestDifferentialAgainstScratch:
    def test_assumption_checks_agree_with_scratch_solver(self):
        """Random push/assert/pop/check scripts: both cores give identical verdicts."""
        rng = random.Random(7)
        for _round in range(15):
            context = SolverContext()
            scratch = Solver(enable_cache=False)
            depth = 0
            for _step in range(rng.randrange(4, 12)):
                action = rng.random()
                if action < 0.5:
                    formula = _random_formula(rng)
                    context.assert_term(formula)
                    scratch.add(formula)
                elif action < 0.7:
                    context.push()
                    scratch.push()
                    depth += 1
                elif action < 0.8 and depth > 0:
                    context.pop()
                    scratch.pop()
                    depth -= 1
                else:
                    extra = _random_formula(rng)
                    assert context.check_assumptions(extra) == scratch.check(extra)
            assert context.check_assumptions() == scratch.check()

    def test_checker_memo_and_agreement_on_growing_prefixes(self):
        """Append-only constraint lists (the fork-tree shape) agree with scratch."""
        rng = random.Random(11)
        checker = AssumptionChecker()
        scratch = Solver(enable_cache=False)
        constraints = []
        for _step in range(25):
            constraints.append(_random_formula(rng))
            status, model = checker.check(constraints, need_model=True)
            expected = scratch.check(And(*constraints))
            assert status == expected
            if status == CheckResult.SAT:
                assert model is not None
                assert model.satisfies(And(*constraints))
        hits_before = checker.memo_hits
        checker.check(constraints)
        assert checker.memo_hits == hits_before + 1

    def test_sat_models_satisfy_the_active_constraints(self):
        rng = random.Random(3)
        context = SolverContext()
        asserted = []
        for _step in range(20):
            formula = _random_formula(rng)
            context.assert_term(formula)
            asserted.append(formula)
            if context.check_assumptions() == CheckResult.SAT:
                model = context.model()
                for term in asserted:
                    assert model.satisfies(term)
            else:
                break


class TestEngineModesAgree:
    def test_summaries_identical_across_solver_modes(self):
        from repro.dataplane.elements import CheckIPHeader, DecIPTTL, IPOptions
        from repro.symbex import SymbexOptions
        from repro.symbex.engine import SymbolicEngine

        for element in (
            DecIPTTL(name="ttl"),
            CheckIPHeader(name="chk", verify_checksum=False),
            IPOptions(name="opts", max_options=4),
        ):
            fingerprints = []
            for incremental in (True, False):
                engine = SymbolicEngine(SymbexOptions(incremental=incremental))
                summary = engine.summarize_element(
                    element.program,
                    24,
                    tables=element.state.tables(),
                    element_name=element.name,
                )
                assert summary.incremental == incremental
                fingerprints.append(
                    sorted(
                        (segment.outcome, segment.port, segment.instructions)
                        for segment in summary.segments
                    )
                )
            assert fingerprints[0] == fingerprints[1]

    def test_verification_verdicts_identical_across_solver_modes(self):
        from repro.dataplane import Pipeline
        from repro.dataplane.elements import CheckIPHeader, IPOptions
        from repro.symbex import SymbexOptions
        from repro.verify import verify_crash_freedom

        protected = Pipeline.chain(
            [CheckIPHeader(name="chk", verify_checksum=False), IPOptions(name="opts", max_options=6)],
            name="protected",
        )
        unprotected = Pipeline.chain([IPOptions(name="opts", max_options=6)], name="unprotected")
        for pipeline, expected in ((protected, "proved"), (unprotected, "violated")):
            for incremental in (True, False):
                result = verify_crash_freedom(
                    pipeline,
                    input_lengths=[24],
                    options=SymbexOptions(incremental=incremental),
                )
                assert result.verdict == expected
