"""Tests for the workload generators and the pipeline catalogue."""

import pytest

from repro.dataplane import PipelineDriver
from repro.net import IPv4Header, verify_checksum
from repro.workloads import (
    PacketWorkload,
    adversarial_packets,
    ip_router_elements,
    ip_router_pipeline,
    malformed_ip_packets,
    nat_gateway_pipeline,
    random_ip_packets,
    random_routing_table,
    synthetic_pipeline,
    well_formed_ip_packet,
)


class TestPacketGenerators:
    def test_well_formed_packet_is_parseable_and_checksummed(self):
        packet = well_formed_ip_packet(dst="10.1.2.3", ttl=9)
        header = IPv4Header.unpack(packet)
        assert str(header.dst) == "10.1.2.3" and header.ttl == 9
        assert verify_checksum(packet[:20])

    def test_generators_are_deterministic(self):
        assert random_ip_packets(5, seed=3) == random_ip_packets(5, seed=3)
        assert malformed_ip_packets(5, seed=3) == malformed_ip_packets(5, seed=3)
        assert adversarial_packets(5, seed=3) == adversarial_packets(5, seed=3)
        assert random_ip_packets(5, seed=3) != random_ip_packets(5, seed=4)

    def test_malformed_packets_fail_validation(self):
        from repro.dataplane.elements import CheckIPHeader
        from repro.ir import Interpreter

        checker = CheckIPHeader()
        dropped = 0
        for packet in malformed_ip_packets(20):
            result = Interpreter().run(checker.program, packet, state=checker.state)
            dropped += result.dropped
        assert dropped >= 15  # almost every mutation breaks a checked invariant

    def test_workload_mix_and_length(self):
        workload = PacketWorkload(valid=10, malformed=5, random_blobs=5, seed=1)
        packets = workload.packets()
        assert len(packets) == len(workload) == 20
        assert packets == workload.packets()  # stable across calls

    def test_ethernet_framing_option(self):
        packet = well_formed_ip_packet(with_ethernet=True)
        assert int.from_bytes(packet[12:14], "big") == 0x0800


class TestTables:
    def test_routing_table_generator(self):
        routes = random_routing_table(50, ports=4, seed=9)
        assert routes[0] == ("0.0.0.0/0", 0)
        assert len(routes) == 51
        assert all(0 <= port < 4 for _prefix, port in routes)
        assert routes == random_routing_table(50, ports=4, seed=9)


class TestPipelineCatalogue:
    def test_ip_router_lengths(self):
        assert [element.name for element in ip_router_elements(3)] == [
            "check_ip",
            "lookup",
            "dec_ttl",
        ]
        with pytest.raises(ValueError):
            ip_router_elements(0)
        with pytest.raises(ValueError):
            ip_router_elements(9)

    def test_ip_router_pipeline_runs_traffic(self):
        pipeline = ip_router_pipeline(length=4, verify_checksum=True)
        driver = PipelineDriver(pipeline)
        delivered = 0
        for packet in random_ip_packets(20, seed=5):
            delivered += driver.inject(packet).delivered
        assert delivered == 20
        assert driver.statistics.packets_crashed == 0

    def test_ethernet_wrapped_router(self):
        pipeline = ip_router_pipeline(length=2, with_ethernet=True)
        driver = PipelineDriver(pipeline)
        trace = driver.inject(
            well_formed_ip_packet(dst="10.3.3.3", with_ethernet=True),
            entry=pipeline.element("classify"),
        )
        assert trace.delivered and trace.egress_element == "eth_encap"

    def test_nat_gateway_pipeline(self):
        pipeline = nat_gateway_pipeline()
        driver = PipelineDriver(pipeline)
        for packet in random_ip_packets(10, seed=6):
            driver.inject(packet)
        assert driver.statistics.packets_crashed == 0

    def test_synthetic_pipeline_path_count(self):
        pipeline = synthetic_pipeline(elements=2, branches_per_element=3)
        assert len(pipeline.elements) == 2
        driver = PipelineDriver(pipeline)
        trace = driver.inject(bytes(8))
        assert trace.delivered
        assert trace.output_metadata["branch_mask"] == 0
