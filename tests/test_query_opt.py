"""Tests for the query-optimization layer: slicing, the tiered query cache,
its persistent L3 store, and the fleet-level wiring."""

import random

import pytest

from repro import smt
from repro.smt import (
    And,
    BitVec,
    BitVecVal,
    Bool,
    CheckResult,
    Eq,
    Not,
    QueryCache,
    Solver,
    SolverContext,
    UGT,
    ULT,
    free_variable_names,
    partition,
    slice_fingerprint,
    term_digest,
)
from repro.smt.context import AssumptionChecker
from repro.smt.qcache import SAT, UNSAT


def _solved(cache):
    return cache.statistics.solved


class TestSlicing:
    def test_free_variables_memoized(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        term = And(ULT(x, 10), Eq(y, BitVecVal(3, 8)))
        assert free_variable_names(term) == frozenset({"x", "y"})
        assert free_variable_names(term) == frozenset({"x", "y"})  # memo path
        assert free_variable_names(ULT(x, 10)) == frozenset({"x"})

    def test_independent_variables_split(self):
        x, y, z = BitVec("x", 8), BitVec("y", 8), BitVec("z", 8)
        slices = partition([ULT(x, 10), ULT(y, 10), ULT(z, 10)])
        assert len(slices) == 3
        assert [s.variables for s in slices] == [
            frozenset({"x"}),
            frozenset({"y"}),
            frozenset({"z"}),
        ]

    def test_shared_variable_merges(self):
        x, y, z = BitVec("x", 8), BitVec("y", 8), BitVec("z", 8)
        slices = partition([ULT(x, 10), Eq(x, y), ULT(z, 5)])
        assert len(slices) == 2
        assert slices[0].variables == frozenset({"x", "y"})
        assert slices[1].variables == frozenset({"z"})

    def test_transitive_sharing_merges_across_terms(self):
        a, b, c = BitVec("a", 8), BitVec("b", 8), BitVec("c", 8)
        # a~b and b~c: all three in one component even though a,c never co-occur.
        slices = partition([Eq(a, b), Eq(b, c)])
        assert len(slices) == 1
        assert slices[0].variables == frozenset({"a", "b", "c"})

    def test_key_is_order_independent(self):
        x = BitVec("x", 8)
        a, b = ULT(x, 10), UGT(x, 3)
        assert partition([a, b])[0].key == partition([b, a])[0].key

    def test_ground_terms_get_singleton_slices(self):
        x = BitVec("x", 8)
        ground = Eq(BitVecVal(1, 8), BitVecVal(1, 8))
        slices = partition([smt.intern_term(ground), ULT(x, 10)])
        assert len(slices) == 2


class TestStructuralDigests:
    def test_digest_is_structural(self):
        x = BitVec("x", 8)
        assert term_digest(ULT(x, 10)) == term_digest(ULT(BitVec("x", 8), BitVecVal(10, 8)))
        assert term_digest(ULT(x, 10)) != term_digest(ULT(x, 11))
        assert term_digest(ULT(x, 10)) != term_digest(ULT(BitVec("y", 8), 10))

    def test_fingerprint_order_independent(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        a, b = ULT(x, 10), UGT(y, 3)
        assert slice_fingerprint([a, b]) == slice_fingerprint([b, a])
        assert slice_fingerprint([a]) != slice_fingerprint([a, b])


class TestQueryCacheTiers:
    def test_exact_hit_skips_solving(self):
        x = BitVec("x", 8)
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        constraints = [ULT(x, 10), UGT(x, 3)]
        status, model = checker.check(constraints, need_model=True)
        assert status == CheckResult.SAT and model is not None
        solved = _solved(cache)
        # Same slice again, reassembled in a different order.
        status, model = checker.check(list(reversed(constraints)), need_model=True)
        assert status == CheckResult.SAT and model is not None
        assert _solved(cache) == solved
        assert cache.statistics.exact_hits >= 1

    def test_unsat_core_subset_shortcut(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        assert checker.check([ULT(x, 3), UGT(x, 10)])[0] == CheckResult.UNSAT
        solved = _solved(cache)
        # A superset query containing the known-unsat pair (y makes x and y
        # one slice through Eq) is refuted by the recorded core alone.
        status, _ = checker.check([ULT(x, 3), UGT(x, 10), Eq(x, y)])
        assert status == CheckResult.UNSAT
        assert _solved(cache) == solved
        assert cache.statistics.unsat_core_hits >= 1

    def test_superset_sat_shortcut(self):
        x = BitVec("x", 8)
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        assert checker.check([UGT(x, 3), ULT(x, 10), Not(Eq(x, BitVecVal(5, 8)))])[0] == CheckResult.SAT
        solved = _solved(cache)
        # A subset of a satisfied term set is satisfied by the same model.
        status, model = checker.check([UGT(x, 3), ULT(x, 10)], need_model=True)
        assert status == CheckResult.SAT
        assert model is not None and 3 < int(model["x"]) < 10 and int(model["x"]) != 5
        assert _solved(cache) == solved
        assert cache.statistics.superset_sat_hits >= 1

    def test_shortcut_verdicts_match_scratch(self):
        """Random growing/shrinking uid-overlapping queries: every cache
        answer equals a from-scratch solve of the same conjunction."""
        rng = random.Random(13)
        x, y, z = BitVec("x", 8), BitVec("y", 8), BitVec("z", 8)
        atoms = [
            ULT(x, 200), UGT(x, 100), Not(Eq(x, BitVecVal(150, 8))),
            ULT(y, 5), UGT(y, 9),  # contradictory pair
            Eq(z, BitVecVal(0, 8)), ULT(z, 4),
            Eq(x, y),
        ]
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        for _round in range(60):
            query = rng.sample(atoms, rng.randrange(1, len(atoms) + 1))
            status, model = checker.check(query, need_model=True)
            scratch = Solver(enable_cache=False)
            scratch.add(*query)
            assert status == scratch.check()
            if status == CheckResult.SAT:
                assert model is not None and model.satisfies(And(*query))
        assert cache.statistics.hits > 0

    def test_boolean_variables_supported(self):
        a, b = Bool("a"), Bool("b")
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        status, model = checker.check([smt.Or(a, b), Not(a)], need_model=True)
        assert status == CheckResult.SAT
        assert model is not None and model.satisfies(b) and not model.satisfies(a)
        assert checker.check([a, Not(a)])[0] == CheckResult.UNSAT

    def test_composed_model_covers_all_slices(self):
        x, y, z = BitVec("x", 16), BitVec("y", 16), BitVec("z", 8)
        cache = QueryCache()
        checker = AssumptionChecker(query_cache=cache)
        constraints = [Eq(x + y, BitVecVal(500, 16)), UGT(x, 100), Eq(z, BitVecVal(7, 8))]
        status, model = checker.check(constraints, need_model=True)
        assert status == CheckResult.SAT
        assert model is not None
        for term in constraints:
            assert model.satisfies(term)


class TestQueryStoreL3:
    def _queries(self, checker):
        x, y = BitVec("x", 8), BitVec("y", 8)
        sat_query = [ULT(x, 10), UGT(x, 3), Eq(y, BitVecVal(1, 8))]
        unsat_query = [ULT(x, 3), UGT(x, 10)]
        return (
            checker.check(sat_query, need_model=True),
            checker.check(unsat_query),
        )

    def test_warm_cache_answers_from_disk_without_solving(self, tmp_path):
        from repro.orchestrator.store import QueryStore

        cold_cache = QueryCache(store=QueryStore(tmp_path))
        (status, model), (unsat_status, _) = self._queries(
            AssumptionChecker(query_cache=cold_cache)
        )
        assert status == CheckResult.SAT and unsat_status == CheckResult.UNSAT
        assert cold_cache.statistics.l3_stores > 0

        warm_store = QueryStore(tmp_path)
        warm_cache = QueryCache(store=warm_store)
        (warm_sat, warm_model), (warm_unsat, _) = self._queries(
            AssumptionChecker(query_cache=warm_cache)
        )
        assert (warm_sat, warm_unsat) == (status, unsat_status)
        assert warm_model is not None
        assert _solved(warm_cache) == 0  # everything from disk
        assert warm_cache.statistics.l3_hits > 0
        # ... and write-free: re-derived answers are not re-persisted.
        assert warm_cache.statistics.l3_stores == 0
        assert warm_store.statistics.puts == 0

    def test_readonly_cache_ships_entries_for_merge(self, tmp_path):
        from repro.orchestrator.store import QueryStore

        store = QueryStore(tmp_path)
        worker_cache = QueryCache(store=store, readonly=True)
        self._queries(AssumptionChecker(query_cache=worker_cache))
        assert len(store) == 0  # nothing written by the read-only side
        assert worker_cache.new_entries
        from repro.orchestrator.workers import merge_query_entries

        merge_query_entries(str(tmp_path), worker_cache.new_entries)
        assert len(store) > 0
        # A fresh cache over the merged store answers without solving.
        merged = QueryCache(store=QueryStore(tmp_path))
        self._queries(AssumptionChecker(query_cache=merged))
        assert _solved(merged) == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        from repro.orchestrator.store import QueryStore

        store = QueryStore(tmp_path)
        cache = QueryCache(store=store)
        checker = AssumptionChecker(query_cache=cache)
        x = BitVec("x", 8)
        checker.check([Eq(smt.UDiv(x, BitVecVal(3, 8)), BitVecVal(5, 8))])
        for path in tmp_path.glob("??/*.json"):
            path.write_text("{ not json")
        warm = QueryCache(store=QueryStore(tmp_path))
        status, _ = AssumptionChecker(query_cache=warm).check(
            [Eq(smt.UDiv(x, BitVecVal(3, 8)), BitVecVal(5, 8))]
        )
        assert status == CheckResult.SAT  # re-solved, not crashed
        assert warm.statistics.l3_hits == 0


class TestSolverContextRouting:
    def test_context_with_cache_agrees_with_plain_context(self):
        rng = random.Random(23)
        x, y = BitVec("x", 8), BitVec("y", 8)

        def formula():
            ops = [
                ULT(x, rng.randrange(1, 255)),
                UGT(y, rng.randrange(0, 254)),
                Eq(x + y, BitVecVal(rng.randrange(256), 8)),
                Not(Eq(x, BitVecVal(rng.randrange(256), 8))),
            ]
            return rng.choice(ops)

        for _round in range(10):
            plain = SolverContext()
            routed = SolverContext(query_cache=QueryCache())
            for _step in range(6):
                term = formula()
                plain.assert_term(term)
                routed.assert_term(term)
                assert plain.check_assumptions() == routed.check_assumptions()

    def test_solver_facade_with_query_cache(self):
        x, y = BitVec("x", 8), BitVec("y", 8)
        solver = Solver(query_cache=QueryCache())
        solver.add(ULT(x, 10), UGT(y, 250))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert int(model["x"]) < 10 and int(model["y"]) > 250
        solver.add(UGT(x, 20))
        assert solver.check() == CheckResult.UNSAT

    def test_unknown_is_not_cached(self):
        # A conflict budget of 0 forces UNKNOWN; the cache must not pin it.
        x, y = BitVec("x", 16), BitVec("y", 16)
        hard = Eq(x * y, BitVecVal(12_345, 16))
        cache = QueryCache()
        starved = SolverContext(max_conflicts=0, query_cache=cache)
        starved.assert_term(hard, UGT(x, 2), UGT(y, 2))
        if starved.check_assumptions() == CheckResult.UNKNOWN:
            roomy = SolverContext(max_conflicts=200_000, query_cache=cache)
            roomy.assert_term(hard, UGT(x, 2), UGT(y, 2))
            assert roomy.check_assumptions() in (CheckResult.SAT, CheckResult.UNSAT)


class TestEngineAndFleetWiring:
    def test_engine_differential_query_opt_on_off(self):
        from repro.symbex.engine import SymbexOptions
        from repro.workloads import synthetic_pipeline
        from repro.verify import CrashFreedom
        from repro.verify.pipeline_verifier import PipelineVerifier

        pipeline = synthetic_pipeline(3, 2, name="diff")
        on = PipelineVerifier(pipeline, options=SymbexOptions(query_opt=True)).verify(
            CrashFreedom(), input_lengths=(12,)
        )
        off = PipelineVerifier(pipeline, options=SymbexOptions(query_opt=False)).verify(
            CrashFreedom(), input_lengths=(12,)
        )
        assert on.verdict == off.verdict
        assert on.statistics.sat_core_calls <= off.statistics.sat_core_calls

    def test_warm_fleet_run_makes_zero_sat_core_calls(self, tmp_path):
        from repro.orchestrator import QueryStore, SummaryStore, certify_fleet
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        stores = dict(
            store=SummaryStore(tmp_path / "summaries"),
            query_store=QueryStore(tmp_path / "queries"),
        )
        cold = certify_fleet(fleet_catalog(2), [CrashFreedom()], input_lengths=(24,), **stores)
        warm = certify_fleet(
            fleet_catalog(2),
            [CrashFreedom()],
            input_lengths=(24,),
            store=SummaryStore(tmp_path / "summaries"),
            query_store=QueryStore(tmp_path / "queries"),
        )
        assert cold.statistics.sat_core_calls > 0
        assert warm.statistics.summaries_computed == 0
        assert warm.statistics.sat_core_calls == 0
        assert warm.verdicts() == cold.verdicts()

    def test_certify_worker_ships_query_entries(self, tmp_path):
        """The per-pipeline worker task opens the L3 tier read-only and
        ships its new entries back (the parent merges them on join)."""
        import dataclasses

        from repro.orchestrator.fleet import _certify_worker
        from repro.orchestrator.store import QueryStore
        from repro.orchestrator.workers import merge_query_entries
        from repro.symbex.engine import SymbexOptions
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        options = dataclasses.replace(
            SymbexOptions(), query_cache_dir=str(tmp_path / "queries")
        )
        payload = (
            fleet_catalog(1)[0], [CrashFreedom()], (24,), options,
            str(tmp_path / "summaries"), 3, True, False,
        )
        certification, _misses, _l2_hits, entries, _extras = _certify_worker(payload)
        assert certification.certified
        assert entries  # solved slices that could not be written in-fork
        assert len(QueryStore(tmp_path / "queries")) == 0
        merge_query_entries(str(tmp_path / "queries"), entries)
        assert len(QueryStore(tmp_path / "queries")) > 0
        # A second worker over the merged store solves nothing new.
        _cert, _m, _l, warm_entries, _warm_extras = _certify_worker(payload)
        assert warm_entries == []

    def test_parallel_summarize_jobs_preserve_work_counters(self):
        """Worker-computed summaries arrive with their solver-work counters
        restored (serialization drops them), matching a serial engine."""
        from repro.orchestrator.workers import COMPUTED, summarize_jobs
        from repro.symbex.engine import SymbexOptions, SymbolicEngine
        from repro.workloads import fleet_catalog

        element = fleet_catalog(1)[0].elements[0]
        options = SymbexOptions()
        serial = SymbolicEngine(options).summarize_element(
            element.program, 24,
            tables=element.state.tables(),
            element_name=element.name,
            configuration_key=element.configuration_key(),
        )
        [(status, shipped, _detail)] = summarize_jobs([(element, 24)], options, workers=2)
        assert status == COMPUTED and shipped is not None
        assert shipped.sat_core_calls == serial.sat_core_calls
        assert shipped.qcache_hits == serial.qcache_hits

    def test_workers_clamped_to_cpu_count(self):
        import os

        from repro.orchestrator import certify_fleet
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        report = certify_fleet(
            fleet_catalog(2), [CrashFreedom()], input_lengths=(24,), workers=64
        )
        assert report.statistics.workers == min(64, os.cpu_count() or 1)
        assert all(c.certified for c in report.certifications)

    def test_query_store_cli_maintenance(self, tmp_path, capsys):
        from repro.cli.main import main

        assert main(["store", "stats", "--query-store", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "query store" in out
        assert main(["store", "gc", "--query-store", str(tmp_path / "q")]) == 0


@pytest.mark.parametrize("width", [1, 8])
def test_width_one_and_wider_vectors_through_cache(width):
    b = BitVec(f"w{width}", width)
    cache = QueryCache()
    checker = AssumptionChecker(query_cache=cache)
    assert checker.check([Eq(b, BitVecVal(1, width))])[0] == CheckResult.SAT
    assert checker.check([Eq(b, BitVecVal(1, width)), Eq(b, BitVecVal(0, width))])[0] == (
        CheckResult.UNSAT
    )


def test_status_constants_match_facade():
    assert (SAT, UNSAT) == (CheckResult.SAT, CheckResult.UNSAT)
