"""Tests for the element IR: builder, validation, concrete interpretation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    Assign,
    BuilderError,
    DictState,
    Drop,
    ElementProgram,
    Emit,
    If,
    Interpreter,
    InterpreterError,
    Outcome,
    ProgramBuilder,
    ProgramValidationError,
    Reg,
    StoreField,
    validate_program,
)


def build_decttl_like():
    builder = ProgramBuilder("decttl")
    ttl = builder.let("ttl", builder.load(8, 1))
    with builder.if_(ttl <= 1):
        builder.drop("expired")
    builder.store(8, 1, ttl - 1)
    builder.emit(0)
    return builder.build()


class TestBuilder:
    def test_builds_valid_program(self):
        program = build_decttl_like()
        assert validate_program(program).ok
        assert program.statement_count() >= 4
        assert program.branch_count() == 1

    def test_else_requires_preceding_if(self):
        builder = ProgramBuilder("bad")
        with pytest.raises(BuilderError):
            with builder.else_():
                builder.drop()

    def test_else_branch_attached(self):
        builder = ProgramBuilder("ifelse", num_output_ports=2)
        value = builder.let("v", builder.load(0, 1))
        with builder.if_(value == 1):
            builder.emit(0)
        with builder.else_():
            builder.emit(1)
        program = builder.build()
        top_if = program.body[-1]
        assert isinstance(top_if, If)
        assert len(top_if.then) == 1 and len(top_if.orelse) == 1

    def test_emit_port_checked_against_declaration(self):
        builder = ProgramBuilder("oneport")
        with pytest.raises(BuilderError):
            builder.emit(3)

    def test_table_must_be_declared(self):
        builder = ProgramBuilder("tables")
        with pytest.raises(BuilderError):
            builder.table_read("missing", 0, "v", "f")

    def test_static_table_write_rejected(self):
        builder = ProgramBuilder("static")
        builder.declare_table("routes", kind="static")
        with pytest.raises(BuilderError):
            builder.table_write("routes", 0, 1)

    def test_duplicate_table_rejected(self):
        builder = ProgramBuilder("dup")
        builder.declare_table("t")
        with pytest.raises(BuilderError):
            builder.declare_table("t")

    def test_unbalanced_blocks_detected(self):
        builder = ProgramBuilder("unbalanced")
        context = builder.if_(builder.load(0, 1) == 1)
        context.__enter__()
        with pytest.raises(BuilderError):
            builder.build()


class TestValidation:
    def test_unassigned_register_detected(self):
        program = ElementProgram("bad", (Assign("x", Reg("never_set")), Emit(0)))
        report = validate_program(program)
        assert not report.ok
        with pytest.raises(ProgramValidationError):
            report.raise_if_invalid()

    def test_register_assigned_on_both_branches_is_ok(self):
        builder = ProgramBuilder("both")
        value = builder.let("v", builder.load(0, 1))
        with builder.if_(value == 0):
            builder.assign("out", 1)
        with builder.else_():
            builder.assign("out", 2)
        builder.store(0, 1, builder.reg("out"))
        builder.emit(0)
        assert validate_program(builder.build()).ok

    def test_register_assigned_on_one_branch_flagged(self):
        program = ElementProgram(
            "partial",
            (
                If(Reg("c"), (Assign("out", 1),), ()),
                StoreField(0, 1, Reg("out")),
                Emit(0),
            ),
        )
        report = validate_program(program)
        assert not report.ok  # both the unassigned 'c' and possibly-unassigned 'out'

    def test_undeclared_table_detected(self):
        from repro.ir import TableRead

        program = ElementProgram("tables", (TableRead("nope", 0, "v", "f"), Emit(0)))
        assert not validate_program(program).ok

    def test_unreachable_statement_warned(self):
        program = ElementProgram("unreach", (Drop("done"), Emit(0)))
        report = validate_program(program)
        assert report.ok and report.warnings

    def test_out_of_range_port_detected(self):
        program = ElementProgram("ports", (Emit(3),), num_output_ports=2)
        assert not validate_program(program).ok


class TestInterpreter:
    def setup_method(self):
        self.interpreter = Interpreter()

    def test_emit_and_field_update(self):
        program = build_decttl_like()
        result = self.interpreter.run(program, bytes([0] * 8 + [10] + [0] * 11))
        assert result.outcome == Outcome.EMIT and result.port == 0
        assert result.data[8] == 9

    def test_drop_path(self):
        program = build_decttl_like()
        result = self.interpreter.run(program, bytes([0] * 8 + [1] + [0] * 11))
        assert result.dropped and result.drop_reason == "expired"

    def test_out_of_bounds_read_crashes(self):
        program = build_decttl_like()
        result = self.interpreter.run(program, bytes(4))
        assert result.crashed and "out-of-bounds" in result.crash_message

    def test_assert_failure_crashes(self):
        builder = ProgramBuilder("asserts")
        builder.assert_(builder.load(0, 1) < 10, "value too big")
        builder.emit(0)
        program = builder.build()
        assert self.interpreter.run(program, bytes([5])).emitted
        result = self.interpreter.run(program, bytes([50]))
        assert result.crashed and result.crash_message == "value too big"

    def test_division_by_zero_crashes(self):
        builder = ProgramBuilder("div")
        builder.assign("q", builder.load(0, 1) // builder.load(1, 1))
        builder.emit(0)
        program = builder.build()
        assert self.interpreter.run(program, bytes([8, 2])).emitted
        assert self.interpreter.run(program, bytes([8, 0])).crashed

    def test_loop_sums_bytes(self):
        builder = ProgramBuilder("sum")
        builder.assign("i", 0)
        builder.assign("total", 0)
        with builder.while_(builder.reg("i") < builder.packet_length(), max_iterations=64):
            builder.assign("total", builder.reg("total") + builder.load(builder.reg("i"), 1))
            builder.assign("i", builder.reg("i") + 1)
        builder.set_meta("sum", builder.reg("total"))
        builder.emit(0)
        program = builder.build()
        result = self.interpreter.run(program, bytes([1, 2, 3, 4]))
        assert result.metadata["sum"] == 10

    def test_loop_bound_overrun_crashes(self):
        builder = ProgramBuilder("runaway")
        builder.assign("i", 0)
        with builder.while_(builder.reg("i") < 100, max_iterations=5):
            builder.assign("i", builder.reg("i") + 1)
        builder.emit(0)
        result = self.interpreter.run(builder.build(), bytes(4))
        assert result.crashed and "exceeded its bound" in result.crash_message

    def test_push_and_pull_head(self):
        builder = ProgramBuilder("encapdecap")
        builder.push_head(2)
        builder.store(0, 2, 0xBEEF)
        builder.emit(0)
        result = self.interpreter.run(builder.build(), bytes([1, 2]))
        assert bytes(result.data) == b"\xbe\xef\x01\x02"

        builder = ProgramBuilder("strip")
        builder.pull_head(3)
        builder.emit(0)
        result = self.interpreter.run(builder.build(), bytes([9, 9, 9, 7]))
        assert bytes(result.data) == b"\x07"
        result = self.interpreter.run(builder.build(), bytes(2))
        assert result.crashed

    def test_metadata_round_trip(self):
        builder = ProgramBuilder("meta")
        builder.set_meta("color", 7)
        builder.assign("c", builder.meta("color"))
        builder.store(0, 1, builder.reg("c"))
        builder.emit(0)
        result = self.interpreter.run(builder.build(), bytes(1), metadata={"ignored": 3})
        assert result.data[0] == 7 and result.metadata["color"] == 7

    def test_tables_through_dict_state(self):
        builder = ProgramBuilder("counter")
        builder.declare_table("t")
        value, found = builder.table_read("t", 5, "v", "f")
        with builder.if_(found):
            builder.table_write("t", 5, value + 1)
        with builder.else_():
            builder.table_write("t", 5, 1)
        builder.emit(0)
        program = builder.build()
        state = DictState()
        for expected in (1, 2, 3):
            self.interpreter.run(program, bytes(1), state=state)
            assert state.table_read("t", 5) == (expected, True)

    def test_unknown_register_is_interpreter_error(self):
        program = ElementProgram("raw", (StoreField(0, 1, Reg("nope")), Emit(0)))
        with pytest.raises(InterpreterError):
            self.interpreter.run(program, bytes(4))

    def test_instruction_counting_is_deterministic(self):
        program = build_decttl_like()
        first = self.interpreter.run(program, bytes(20))
        second = self.interpreter.run(program, bytes(20))
        assert first.instructions == second.instructions > 0

    def test_instruction_budget(self):
        tight = Interpreter(max_instructions=10)
        builder = ProgramBuilder("busy")
        builder.assign("i", 0)
        with builder.while_(builder.reg("i") < 50, max_iterations=100):
            builder.assign("i", builder.reg("i") + 1)
        builder.emit(0)
        result = tight.run(builder.build(), bytes(1))
        assert result.crashed and "budget" in result.crash_message

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=20, max_size=40), st.integers(2, 255))
    def test_decttl_semantics_property(self, payload, ttl):
        data = bytearray(payload)
        data[8] = ttl
        result = Interpreter().run(build_decttl_like(), data)
        assert result.emitted
        assert result.data[8] == ttl - 1
        # Other bytes are untouched.
        assert bytes(result.data[:8]) == bytes(data[:8])
        assert bytes(result.data[9:]) == bytes(data[9:])
