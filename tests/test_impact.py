"""Tests for change-impact re-certification and the ``python -m repro`` CLI."""

import json

import pytest

from repro.dataplane.fingerprint import (
    element_fingerprint_parts,
    pipeline_fingerprint,
    wiring_fingerprint,
)
from repro.orchestrator import (
    DELTA_REUSED,
    FRESH,
    SummaryStore,
    VerdictStore,
    catalog_manifest,
    certify_fleet,
    diff_catalogs,
    property_set_fingerprint,
    recertify,
    verdict_key,
)
from repro.cli import main as cli_main
from repro.symbex import SymbexOptions
from repro.verify import BoundedInstructions, CrashFreedom, destination_reachability
from repro.workloads import (
    ALTERNATE_ROUTES,
    churned_fleet_catalog,
    fleet_catalog,
    ip_router_pipeline,
)

CATALOG_SIZE = 4
LENGTHS = (24,)


# -- fingerprints ---------------------------------------------------------------------


class TestPipelineFingerprints:
    def test_rename_preserves_fingerprint(self):
        base = fleet_catalog(CATALOG_SIZE)
        renamed = churned_fleet_catalog(CATALOG_SIZE, "rename")
        for old, new in zip(base, renamed):
            assert pipeline_fingerprint(old, True) == pipeline_fingerprint(new, True)

    def test_table_change_moves_fingerprint_only_in_concrete_mode(self):
        plain = ip_router_pipeline(length=2, name="p")
        rerouted = ip_router_pipeline(length=2, routes=ALTERNATE_ROUTES, name="p")
        assert pipeline_fingerprint(plain, True) != pipeline_fingerprint(rerouted, True)
        # Same wiring either way; table contents live in the elements.
        assert wiring_fingerprint(plain) == wiring_fingerprint(rerouted)

    def test_rewire_moves_fingerprint_with_same_elements(self):
        base = fleet_catalog(CATALOG_SIZE)[1]
        rewired = churned_fleet_catalog(CATALOG_SIZE, "rewire")[1]
        assert pipeline_fingerprint(base, True) != pipeline_fingerprint(rewired, True)

    def test_parts_combined_matches_configuration_fingerprint(self):
        from repro.dataplane.fingerprint import configuration_fingerprint

        for pipeline in fleet_catalog(2):
            for element in pipeline.elements:
                for include in (True, False):
                    parts = element_fingerprint_parts(element, include)
                    assert parts.combined == configuration_fingerprint(element, include)

    def test_verdict_key_covers_property_set_and_request(self):
        fingerprint = pipeline_fingerprint(ip_router_pipeline(length=1, name="p"), True)
        options = SymbexOptions()
        base = verdict_key(fingerprint, [CrashFreedom()], (24,), options, 3, True, False)
        assert base != verdict_key(
            fingerprint, [BoundedInstructions(bound=50)], (24,), options, 3, True, False
        )
        assert base != verdict_key(fingerprint, [CrashFreedom()], (32,), options, 3, True, False)
        assert base != verdict_key(fingerprint, [CrashFreedom()], (24,), options, 1, True, False)
        # Budgets don't partition the tier (unknowns are never stored).
        assert base == verdict_key(
            fingerprint, [CrashFreedom()], (24,), SymbexOptions(max_paths=7), 3, True, False
        )

    def test_property_set_fingerprint_is_stable_across_instances(self):
        one = [CrashFreedom(), destination_reachability(0x0A000001, exempt_elements={"a"})]
        two = [CrashFreedom(), destination_reachability(0x0A000001, exempt_elements={"a"})]
        assert property_set_fingerprint(one) == property_set_fingerprint(two)
        other = [CrashFreedom(), destination_reachability(0x0A000002, exempt_elements={"a"})]
        assert property_set_fingerprint(one) != property_set_fingerprint(other)

    def test_closure_predicates_with_different_captures_do_not_collide(self):
        # A factory-made predicate captures state in closure cells; two
        # predicates from the same factory must not share a verdict key.
        from repro.orchestrator import property_fingerprint
        from repro.verify import Reachability

        def make(destination):
            def predicate(packet_bytes):
                return destination  # captured: part of the identity

            return predicate

        first = Reachability(input_predicate=make(1))
        second = Reachability(input_predicate=make(2))
        same_as_first = Reachability(input_predicate=make(1))
        assert property_fingerprint(first) != property_fingerprint(second)
        assert property_fingerprint(first) == property_fingerprint(same_as_first)


# -- the structural differ ------------------------------------------------------------


class TestDiff:
    def test_table_only_change_impacts_only_users_of_that_table(self):
        base = fleet_catalog(CATALOG_SIZE)
        impact = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "routes"))
        assert [pi.name for pi in impact.impacted] == [base[0].name]
        causes = " ".join(impact.impacted[0].causes)
        assert "static table 'routes'" in causes
        assert not impact.removed

    def test_wiring_change_invalidates_exactly_its_pipeline(self):
        base = fleet_catalog(CATALOG_SIZE)
        impact = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "rewire"))
        assert [pi.name for pi in impact.impacted] == [base[1].name]
        assert any("wiring" in cause for cause in impact.impacted[0].causes)

    def test_noop_rename_impacts_nothing(self):
        base = fleet_catalog(CATALOG_SIZE)
        impact = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "rename"))
        assert impact.impacted == []
        assert len(impact.unimpacted) == CATALOG_SIZE

    def test_program_change_names_the_element(self):
        base = fleet_catalog(CATALOG_SIZE)
        impact = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "options"))
        assert [pi.name for pi in impact.impacted] == [base[2].name]
        assert any("IR program changed" in cause for cause in impact.impacted[0].causes)

    def test_add_and_remove_pipelines(self):
        base = fleet_catalog(CATALOG_SIZE)
        added = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "add"))
        assert [pi.name for pi in added.impacted] == [
            f"fleet-{CATALOG_SIZE}-nat-gateway-added"
        ]
        removed = diff_catalogs(base, churned_fleet_catalog(CATALOG_SIZE, "remove"))
        assert removed.impacted == []
        assert removed.removed == [base[0].name]


# -- delta re-certification -----------------------------------------------------------


class TestDeltaRecertification:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("delta")
        return SummaryStore(root / "summaries"), VerdictStore(root / "verdicts")

    @pytest.fixture(scope="class")
    def cold(self, stores):
        summary_store, verdict_store = stores
        return recertify(
            fleet_catalog(CATALOG_SIZE),
            [CrashFreedom()],
            input_lengths=LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )

    def test_cold_pass_is_all_fresh(self, cold):
        assert all(c.provenance == FRESH for c in cold.report.certifications)
        assert cold.report.statistics.verdicts_fresh == CATALOG_SIZE
        assert cold.report.statistics.verdicts_reused == 0

    def test_table_change_reverifies_only_impacted_pipeline(self, stores, cold):
        summary_store, verdict_store = stores
        mutated = churned_fleet_catalog(CATALOG_SIZE, "routes")
        delta = recertify(
            mutated,
            [CrashFreedom()],
            baseline=cold.manifest,
            input_lengths=LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )
        provenance = [c.provenance for c in delta.report.certifications]
        assert provenance == [FRESH] + [DELTA_REUSED] * (CATALOG_SIZE - 1)
        # Zero symbex and zero solver checks for the unimpacted pipelines:
        # the only computed summary is the changed lookup element, and the
        # only solver checks are the impacted pipeline's own.
        assert delta.report.statistics.summaries_computed == 1
        solo = certify_fleet(
            [churned_fleet_catalog(CATALOG_SIZE, "routes")[0]],
            [CrashFreedom()],
            input_lengths=LENGTHS,
            store=summary_store,
        )
        assert delta.report.statistics.solver_checks == solo.statistics.solver_checks
        # Delta verdicts are identical to a cold full pass over the new catalog.
        full = certify_fleet(
            churned_fleet_catalog(CATALOG_SIZE, "routes"), [CrashFreedom()],
            input_lengths=LENGTHS,
        )
        assert delta.report.verdicts() == full.verdicts()
        # Impact provenance is attached to the fresh verdict.
        assert any(
            "static table 'routes'" in cause
            for cause in delta.report.certifications[0].impact_causes
        )

    def test_noop_rename_reuses_everything(self, stores, cold):
        summary_store, verdict_store = stores
        delta = recertify(
            churned_fleet_catalog(CATALOG_SIZE, "rename"),
            [CrashFreedom()],
            baseline=cold.manifest,
            input_lengths=LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )
        assert all(c.provenance == DELTA_REUSED for c in delta.report.certifications)
        assert delta.report.statistics.summaries_computed == 0
        assert delta.report.statistics.solver_checks == 0
        assert delta.report.verdicts() == cold.report.verdicts()
        # Reused records adopt the current catalog's (renamed) element
        # pipeline names, not the names they were stored under.
        assert [c.pipeline_name for c in delta.report.certifications] == [
            p.name for p in churned_fleet_catalog(CATALOG_SIZE, "rename")
        ]

    def test_property_set_change_misses_the_verdict_store(self, stores, cold):
        summary_store, verdict_store = stores
        delta = recertify(
            fleet_catalog(CATALOG_SIZE),
            [CrashFreedom(), BoundedInstructions(bound=100_000)],
            baseline=cold.manifest,
            input_lengths=LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )
        # Unimpacted configurations, but no record for this property set:
        # everything re-verifies (with warm summaries) and says why.
        assert all(c.provenance == FRESH for c in delta.report.certifications)
        assert delta.report.statistics.summaries_computed == 0  # summaries still warm
        assert all(
            "no stored verdict" in " ".join(c.impact_causes)
            for c in delta.report.certifications
        )

    def test_unknown_verdicts_are_never_stored(self, tmp_path):
        from repro.workloads import synthetic_pipeline

        verdict_store = VerdictStore(tmp_path / "verdicts")
        # merge=off so the starved budget actually explodes: path merging
        # would collapse the branchy element back under 4 live paths.
        starved = SymbexOptions(max_paths=4, merge="off")
        first = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), options=starved, verdict_store=verdict_store,
        )
        assert first.verdicts()[0][2] == "unknown"
        assert len(verdict_store) == 0
        second = certify_fleet(
            [synthetic_pipeline(4, 3, name="boom")], [CrashFreedom()],
            input_lengths=(12,), options=starved, verdict_store=verdict_store,
        )
        assert second.statistics.verdicts_reused == 0  # retried, not pinned

    def test_violated_verdicts_round_trip_with_counterexamples(self, tmp_path):
        from repro.dataplane.elements import IPOptions
        from repro.dataplane.pipeline import Pipeline

        def crashy():
            return [
                Pipeline.chain([IPOptions(name="opts", max_options=8)], name="unprotected")
            ]

        verdict_store = VerdictStore(tmp_path / "verdicts")
        first = certify_fleet(
            crashy(), [CrashFreedom()], input_lengths=LENGTHS, verdict_store=verdict_store
        )
        second = certify_fleet(
            crashy(), [CrashFreedom()], input_lengths=LENGTHS, verdict_store=verdict_store
        )
        assert second.statistics.verdicts_reused == 1
        assert second.certifications[0].provenance == DELTA_REUSED
        firsts = [ce.packet for ce in first.certifications[0].results[0].counterexamples]
        seconds = [ce.packet for ce in second.certifications[0].results[0].counterexamples]
        assert firsts and firsts == seconds
        assert second.verdicts() == first.verdicts()


# -- manifest hygiene -----------------------------------------------------------------


class TestManifests:
    def test_manifest_round_trips_through_json(self):
        manifest = catalog_manifest(fleet_catalog(2))
        again = json.loads(json.dumps(manifest))
        assert again == manifest

    def test_duplicate_pipeline_names_are_rejected(self):
        from repro.orchestrator import OrchestratorError

        twins = [ip_router_pipeline(length=1, name="twin") for _ in range(2)]
        with pytest.raises(OrchestratorError):
            catalog_manifest(twins)

    def test_version_mismatch_is_loud(self):
        from repro.orchestrator import OrchestratorError, diff_manifests

        good = catalog_manifest(fleet_catalog(1))
        stale = dict(good, version=999)
        with pytest.raises(OrchestratorError):
            diff_manifests(stale, good)

    def test_mode_change_impacts_everything(self):
        from repro.orchestrator import diff_manifests

        concrete = catalog_manifest(fleet_catalog(2), SymbexOptions())
        havoc = catalog_manifest(fleet_catalog(2), SymbexOptions(static_table_mode="havoc"))
        impact = diff_manifests(concrete, havoc)
        assert len(impact.impacted) == 2
        assert all("static-table mode" in pi.causes[0] for pi in impact.impacted)


# -- the CLI --------------------------------------------------------------------------


class TestCli:
    def test_certify_exit_zero_when_certified(self, tmp_path, capsys):
        code = cli_main(
            ["certify", "--catalog", "ip-router:2", "--lengths", "24",
             "--report", str(tmp_path / "report.json")]
        )
        assert code == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["exit_code"] == 0
        assert report["certifications"][0]["provenance"] == "fresh"

    def test_certify_exit_one_on_violation(self, capsys):
        assert cli_main(["certify", "--catalog", "unprotected-ipoptions",
                         "--lengths", "24"]) == 1

    def test_certify_exit_two_on_unknown(self, capsys):
        assert cli_main(["certify", "--catalog", "synthetic:4x3", "--lengths", "12",
                         "--max-paths", "4", "--merge", "off"]) == 2

    def test_certify_exit_sixtyfour_on_usage_error(self, capsys):
        assert cli_main(["certify", "--catalog", "no-such-spec"]) == 64
        assert cli_main(["certify"]) == 64
        assert cli_main(["no-such-command"]) == 64

    def test_certify_delta_flow_and_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        common = ["--lengths", "24", "--store", str(tmp_path / "s"),
                  "--verdict-store", str(tmp_path / "v")]
        assert cli_main(["certify", "--catalog", "fleet:2", *common,
                         "--emit-manifest", str(manifest_path)]) == 0
        capsys.readouterr()  # drain the first run's human output
        code = cli_main(["certify", "--catalog", "fleet:2", *common,
                         "--baseline", str(manifest_path), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["statistics"]["verdicts_reused"] == 2
        assert all(c["provenance"] == "delta-reused" for c in document["certifications"])

    def test_diff_exit_codes(self, capsys):
        assert cli_main(["diff", "fleet:2", "fleet:2"]) == 0
        assert cli_main(["diff", "fleet:2", "churn:routes:2"]) == 1

    def test_churn_spec_accepts_target_zero(self, capsys):
        # Catalog indices are 0-based; the first slot must be reachable.
        assert cli_main(["diff", "fleet:2", "churn:routes:2:0"]) == 1

    def test_diff_reads_manifest_files(self, tmp_path, capsys):
        manifest_path = tmp_path / "old.json"
        manifest_path.write_text(json.dumps(catalog_manifest(fleet_catalog(2))))
        assert cli_main(["diff", str(manifest_path), "fleet:2"]) == 0

    def test_store_gc_and_stats(self, tmp_path, capsys):
        store_dir = tmp_path / "s"
        assert cli_main(["certify", "--catalog", "ip-router:1", "--lengths", "24",
                         "--store", str(store_dir)]) == 0
        assert cli_main(["store", "stats", "--store", str(store_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert cli_main(["store", "gc", "--store", str(store_dir),
                         "--older-than-days", "0"]) == 0
        assert len(SummaryStore(store_dir)) == 0
        assert cli_main(["store", "gc"]) == 64  # no store given


class TestBenchCompareCli:
    @staticmethod
    def _write_current(directory, value=1.0):
        (directory / "BENCH_demo.json").write_text(
            json.dumps({"bench": "demo", "results": {"seconds": value, "count": 0}})
        )

    @staticmethod
    def _write_baseline(directory, seconds=1.0):
        baselines = directory / "baselines"
        baselines.mkdir(exist_ok=True)
        (baselines / "demo.json").write_text(
            json.dumps({
                "bench": "demo",
                "metrics": {
                    "seconds": {"value": seconds, "direction": "lower"},
                    "count": {"value": 0, "direction": "lower", "tolerance": 0},
                },
            })
        )
        return baselines

    def test_within_tolerance_passes(self, tmp_path, capsys):
        self._write_current(tmp_path)
        baselines = self._write_baseline(tmp_path, seconds=0.9)
        assert cli_main(["bench-compare", "--baseline", str(baselines),
                         "--current", str(tmp_path), "--tolerance", "0.35"]) == 0

    def test_inflated_baseline_fails_the_gate(self, tmp_path, capsys):
        # The acceptance check: synthetically inflate expectations (a much
        # faster claimed baseline) and the gate must exit non-zero.
        self._write_current(tmp_path, value=1.0)
        baselines = self._write_baseline(tmp_path, seconds=0.1)
        assert cli_main(["bench-compare", "--baseline", str(baselines),
                         "--current", str(tmp_path), "--tolerance", "0.35"]) != 0

    def test_missing_bench_file_fails_the_gate(self, tmp_path, capsys):
        baselines = self._write_baseline(tmp_path)
        assert cli_main(["bench-compare", "--baseline", str(baselines),
                         "--current", str(tmp_path / "empty")]) == 1

    def test_missing_metric_fails_the_gate(self, tmp_path, capsys):
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps({"bench": "demo", "results": {"other": 1}})
        )
        baselines = self._write_baseline(tmp_path)
        assert cli_main(["bench-compare", "--baseline", str(baselines),
                         "--current", str(tmp_path)]) == 1

    def test_json_output(self, tmp_path, capsys):
        self._write_current(tmp_path)
        baselines = self._write_baseline(tmp_path)
        assert cli_main(["bench-compare", "--baseline", str(baselines),
                         "--current", str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert len(document["checks"]) == 2
