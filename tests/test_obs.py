"""The observability layer: span tracing, metrics, unified statistics.

Covers the :mod:`repro.obs` package itself (tracer semantics, export
round-trips, the statistics mixin, the slow-solve log, the metrics
registry) and its integration with the certification stack: SAT-core
solve spans, fork-worker span shipping, traced fleet certification, the
persisted query-store metrics, and the CLI surfaces (``certify --trace``,
``trace summary``, ``store stats``).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import (
    sat_observer,
    set_slow_threshold_ms,
    slice_context,
    slow_solve_log,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    active,
    enable,
    install,
    load_trace,
    summarize_spans,
    tracer,
)


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test leaves the process-wide tracer/slow-log state disabled."""
    yield
    install(NULL_TRACER)
    set_slow_threshold_ms(None)
    slow_solve_log().drain()


class TestTracer:
    def test_nested_spans_record_parent_links(self):
        t = Tracer()
        with t.span("outer", "fleet", pipeline="p0") as outer:
            with t.span("inner", "verify"):
                pass
            outer.set(extra=1)
        spans = t.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # closed in exit order
        inner, outer_span = spans
        assert inner.parent == outer_span.sid
        assert outer_span.parent is None
        assert outer_span.args == {"pipeline": "p0", "extra": 1}
        assert inner.start >= outer_span.start and inner.end <= outer_span.end

    def test_events_are_zero_duration(self):
        t = Tracer()
        t.event("qcache.hit", "qcache", tier="exact")
        (span,) = t.spans()
        assert span.is_event and span.duration == 0.0
        assert span.args == {"tier": "exact"}

    def test_ring_buffer_bounds_retention(self):
        t = Tracer(capacity=4)
        for index in range(10):
            t.event(f"e{index}")
        assert [s.name for s in t.spans()] == ["e6", "e7", "e8", "e9"]

    def test_drain_empties_and_ingest_restores(self):
        t = Tracer()
        t.event("a")
        t.event("b")
        payloads = t.drain()
        assert len(t) == 0 and len(payloads) == 2
        assert t.ingest(payloads) == 2
        assert [s.name for s in t.spans()] == ["a", "b"]

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x", "y", a=1) as handle:
            handle.set(b=2)  # no-op, no error
        NULL_TRACER.event("x")
        assert NULL_TRACER.spans() == [] and NULL_TRACER.drain() == []

    def test_enable_is_idempotent_and_active_scopes(self):
        assert tracer() is NULL_TRACER
        with active(Tracer()) as scoped:
            assert tracer() is scoped
            assert enable() is scoped  # already tracing: keeps the installed one
        assert tracer() is NULL_TRACER

    def test_spans_survive_threads(self):
        import threading

        t = Tracer()

        def record(index: int) -> None:
            with t.span(f"thread-{index}", "test"):
                pass

        threads = [threading.Thread(target=record, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = t.spans()
        assert len(spans) == 8
        assert len({s.sid for s in spans}) == 8
        assert all(s.parent is None for s in spans)  # stacks are per-thread


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("verify.property", "verify", pipeline="p"):
            t.event("qcache.hit", "qcache", tier="exact")
        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(path) == 2
        loaded = load_trace(path)
        assert [(s.name, s.category) for s in loaded] == [
            ("qcache.hit", "qcache"),
            ("verify.property", "verify"),
        ]
        original = {s.sid: s for s in t.spans()}
        for span in loaded:
            assert span.start == original[span.sid].start
            assert span.args == original[span.sid].args

    def test_chrome_round_trip_is_perfetto_loadable(self, tmp_path):
        t = Tracer()
        with t.span("fleet.certify", "fleet", pipelines=2):
            t.event("cache.miss", "cache", element="e")
        path = tmp_path / "trace.json"
        assert t.export_chrome(path) == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert {event["ph"] for event in events} == {"X", "i"}
        assert all(event["ts"] >= 0 for event in events)  # origin-relative
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["dur"] >= 0 and complete["args"] == {"pipelines": 2}
        # And the autodetecting loader reads it back with durations intact.
        loaded = load_trace(path)
        assert len(loaded) == 2
        reloaded = next(s for s in loaded if s.name == "fleet.certify")
        original = next(s for s in t.spans() if s.name == "fleet.certify")
        assert reloaded.duration == pytest.approx(original.duration, abs=1e-5)

    def test_summarize_spans_breaks_down_phases(self):
        spans = [
            Span("verify.property", "verify", 0.0, 2.0, 1, 1, 1, args={"pipeline": "p0"}),
            Span("verify.property", "verify", 2.0, 3.0, 1, 1, 2, args={"pipeline": "p1"}),
            Span("symbex.element", "symbex", 0.5, 1.0, 1, 1, 3, args={"element": "e0"}),
            Span("qcache.hit", "qcache", 1.0, 1.0, 1, 1, 4, args={"tier": "exact"}),
        ]
        summary = summarize_spans(spans)
        assert summary["spans"] == 3 and summary["events"] == 1
        assert summary["wall_seconds"] == pytest.approx(3.0)
        assert summary["phases"]["verify"] == {"count": 2, "seconds": pytest.approx(3.0)}
        assert summary["phases"]["qcache"]["seconds"] == 0.0
        assert summary["pipelines"] == {"p0": pytest.approx(2.0), "p1": pytest.approx(1.0)}
        assert summary["elements"] == {"e0": pytest.approx(0.5)}


class TestMetricsRegistry:
    def test_instruments_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("solves").inc()
        registry.counter("solves").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("latency").observe(0.005)
        assert registry.counter("solves").value == 3
        document = registry.to_dict()
        assert list(document) == ["depth", "latency", "solves"]  # name-sorted
        assert document["solves"] == {"type": "counter", "value": 3}
        assert document["latency"]["count"] == 1
        assert document["latency"]["buckets"]["0.01"] == 1

    def test_counters_never_decrease_and_kinds_never_mix(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        with pytest.raises(TypeError):
            registry.gauge("c")

    def test_process_registry_is_a_singleton(self):
        assert obs_metrics() is obs_metrics()


def _all_statistics_classes():
    from repro.dataplane.driver import DriverStatistics
    from repro.orchestrator.fleet import FleetStatistics
    from repro.orchestrator.store import StoreStatistics
    from repro.smt.context import ContextStatistics
    from repro.smt.qcache import QueryCacheStatistics
    from repro.smt.solver import SolverStatistics
    from repro.verify.cache import CacheStatistics
    from repro.verify.monolithic import MonolithicStatistics
    from repro.verify.report import VerificationStatistics

    return [
        SolverStatistics,
        ContextStatistics,
        QueryCacheStatistics,
        CacheStatistics,
        StoreStatistics,
        VerificationStatistics,
        MonolithicStatistics,
        FleetStatistics,
        DriverStatistics,
    ]


def _populated(cls, salt: int = 1):
    """An instance with every field set to a distinctive non-default value."""
    values = {}
    for index, spec in enumerate(dataclasses.fields(cls)):
        default = getattr(cls(), spec.name)
        if isinstance(default, bool):
            values[spec.name] = True
        elif isinstance(default, int):
            values[spec.name] = salt * 100 + index
        elif isinstance(default, float):
            values[spec.name] = salt + index / 8.0
        elif isinstance(default, dict):
            values[spec.name] = {"a": salt, "b": salt * 2}
        else:  # pragma: no cover - no such field exists today
            raise AssertionError(f"unhandled field type on {cls.__name__}.{spec.name}")
    return cls(**values)


class TestStatisticsMixin:
    @pytest.mark.parametrize(
        "cls", _all_statistics_classes(), ids=lambda cls: cls.__name__
    )
    def test_every_statistics_class_round_trips(self, cls):
        """All nine *Statistics classes: to_dict -> from_dict is identity."""
        original = _populated(cls)
        payload = original.to_dict()
        assert json.loads(json.dumps(payload)) == payload  # plain JSON
        assert set(payload) == {spec.name for spec in dataclasses.fields(cls)}
        assert cls.from_dict(payload) == original
        assert original.as_dict() == payload  # pre-unification alias

    @pytest.mark.parametrize(
        "cls", _all_statistics_classes(), ids=lambda cls: cls.__name__
    )
    def test_from_dict_tolerates_missing_and_unknown_keys(self, cls):
        assert cls.from_dict({}) == cls()
        assert cls.from_dict({"not_a_field": 9}) == cls()

    def test_merge_sums_ors_and_key_sums(self):
        from repro.verify.report import VerificationStatistics

        left = VerificationStatistics(
            solver_checks=3,
            elapsed_seconds=1.5,
            per_element_segments={"a": 2},
            budget_exceeded=False,
        )
        right = VerificationStatistics(
            solver_checks=4,
            elapsed_seconds=0.5,
            per_element_segments={"a": 1, "b": 5},
            budget_exceeded=True,
        )
        merged = left.merge(right)
        assert merged is left
        assert left.solver_checks == 7
        assert left.elapsed_seconds == pytest.approx(2.0)
        assert left.per_element_segments == {"a": 3, "b": 5}
        assert left.budget_exceeded is True

    def test_merge_max_keeps_high_water_marks(self):
        from repro.dataplane.driver import DriverStatistics
        from repro.orchestrator.fleet import FleetStatistics

        driver = DriverStatistics(total_instructions=10, max_instructions=40)
        driver.merge(DriverStatistics(total_instructions=5, max_instructions=25))
        assert driver.total_instructions == 15  # sums
        assert driver.max_instructions == 40  # maxes

        fleet = FleetStatistics(pipelines=2, workers=4)
        fleet.merge(FleetStatistics(pipelines=3, workers=2))
        assert fleet.pipelines == 5 and fleet.workers == 4

    def test_publish_pushes_scalar_gauges(self):
        from repro.smt.qcache import QueryCacheStatistics

        registry = MetricsRegistry()
        QueryCacheStatistics(checks=9, exact_hits=4).publish("qcache", registry)
        assert registry.gauge("qcache.checks").value == 9
        assert registry.gauge("qcache.exact_hits").value == 4


class TestSlowSolveLog:
    def test_threshold_zero_records_every_solve(self):
        set_slow_threshold_ms(0.0)
        observer = sat_observer("reference")
        assert observer is not None
        observer.finish("sat", conflicts=3, decisions=5, restarts=1, assumptions=2)
        (record,) = slow_solve_log().drain()
        assert record["backend"] == "reference" and record["result"] == "sat"
        assert record["conflicts"] == 3 and record["decisions"] == 5
        assert record["restarts"] == 1 and record["assumptions"] == 2
        assert record["elapsed_ms"] >= 0.0
        assert record["slice_fingerprint"] is None  # no provider in scope

    def test_fingerprint_provider_runs_lazily(self):
        set_slow_threshold_ms(0.0)
        calls = []

        def provider():
            calls.append(1)
            return "deadbeef"

        with slice_context(provider):
            assert not calls  # never eager
            observer = sat_observer("array")
            observer.finish("unsat", 0, 0, 0)
        (record,) = slow_solve_log().drain()
        assert record["slice_fingerprint"] == "deadbeef" and len(calls) == 1

    def test_observer_absent_when_nothing_watches(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_SOLVE_MS", raising=False)
        assert sat_observer("reference") is None  # tracing off, no threshold

    def test_env_threshold_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_SOLVE_MS", "0")
        observer = sat_observer("reference")
        assert observer is not None
        observer.finish("sat", 0, 0, 0)
        assert len(slow_solve_log()) == 1
        monkeypatch.setenv("REPRO_SLOW_SOLVE_MS", "not-a-number")
        slow_solve_log().drain()
        assert sat_observer("reference") is None


class TestSatInstrumentation:
    def test_both_sat_cores_emit_solve_spans(self):
        from repro.smt.sat import SATSolver
        from repro.smt.satcore import ArraySolver

        with active(Tracer()) as t:
            reference = SATSolver(2)
            reference.add_clause([1, 2])
            reference.add_clause([-1])
            assert reference.solve() == "sat"
            array = ArraySolver(2)
            array.add_clause([1])
            assert array.solve() == "sat"
        solves = [s for s in t.spans() if s.name == "sat.solve"]
        assert {s.args["backend"] for s in solves} == {"reference", "array"}
        assert all(s.category == "sat" and s.args["result"] == "sat" for s in solves)

    def test_disabled_tracer_keeps_solver_results_identical(self):
        from repro.smt.sat import SATSolver

        solver = SATSolver(2)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == "unsat"  # early-return path, no observer


class TestWorkerShipping:
    def _jobs(self):
        from repro.workloads import fleet_catalog

        pipeline = fleet_catalog(1)[0]
        return [(pipeline.elements[0], 24), (pipeline.elements[1], 24)]

    def test_forked_workers_ship_spans_exactly_once(self):
        from repro.orchestrator.workers import summarize_jobs
        from repro.symbex.engine import SymbexOptions

        options = dataclasses.replace(SymbexOptions(), trace=True)
        with active(Tracer()) as t:
            results = summarize_jobs(self._jobs(), options, workers=2)
            assert all(status == "computed" for status, _s, _d in results)
            spans = t.spans()
        elements = [s for s in spans if s.name == "symbex.element"]
        assert len(elements) == 2  # one per job, no duplicates
        assert len({(s.pid, s.sid) for s in spans}) == len(spans)
        # run_tasks forked: the recording pids are the children's, not ours.
        assert all(s.pid != os.getpid() for s in elements)

    def test_parallel_and_serial_runs_trace_the_same_work(self):
        from repro.orchestrator.workers import summarize_jobs
        from repro.symbex.engine import SymbexOptions

        options = dataclasses.replace(SymbexOptions(), trace=True)

        def span_names(workers: int):
            with active(Tracer()) as t:
                summarize_jobs(self._jobs(), options, workers=workers)
                names = sorted(s.name for s in t.spans())
            return names

        assert span_names(workers=1) == span_names(workers=2)

    def test_disabled_tracer_ships_no_observability(self):
        from repro.orchestrator.workers import _summarize_worker

        from repro.symbex.engine import SymbexOptions

        element, length = self._jobs()[0]
        status, _text, _entries, _work, extras = _summarize_worker(
            (element, length, SymbexOptions(), None)
        )
        assert status == "computed"
        # Tracing off: no span or slow-log keys ride along.  The query-tier
        # counters still do — they feed the persisted store metrics, which
        # accumulate whether or not anyone is tracing.
        assert "spans" not in extras and "slow" not in extras

    def test_forked_workers_ship_slow_records(self):
        from repro.orchestrator.workers import summarize_jobs
        from repro.symbex.engine import SymbexOptions

        set_slow_threshold_ms(0.0)
        results = summarize_jobs(self._jobs(), SymbexOptions(), workers=2)
        assert all(status == "computed" for status, _s, _d in results)
        records = slow_solve_log().drain()
        assert records  # the children's threshold crossings arrived here
        assert all("backend" in record for record in records)


class TestTracedCertification:
    def test_traced_fleet_run_matches_reported_statistics(self):
        from repro.orchestrator import certify_fleet
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        t = Tracer()
        report = certify_fleet(
            fleet_catalog(2), [CrashFreedom()], input_lengths=(24,), trace=t
        )
        assert all(c.certified for c in report.certifications)
        summary = t.summary()
        assert summary["phases"]["fleet"]["count"] >= 3  # certify + per-pipeline
        assert set(summary["pipelines"]) == {
            c.pipeline_name for c in report.certifications
        }
        # The acceptance bar: per-phase span totals reconcile with the
        # statistics the verifier reports through its own counters.
        reported = sum(
            result.statistics.elapsed_seconds
            for certification in report.certifications
            for result in certification.results
        )
        assert summary["phases"]["verify"]["seconds"] == pytest.approx(
            reported, rel=0.10
        )
        certify_span = next(s for s in t.spans() if s.name == "fleet.certify")
        assert certify_span.duration == pytest.approx(
            report.statistics.elapsed_seconds, rel=0.10
        )

    def test_trace_true_installs_a_scoped_tracer(self):
        from repro.orchestrator import certify_fleet
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        report = certify_fleet(
            fleet_catalog(1), [CrashFreedom()], input_lengths=(24,), trace=True
        )
        assert report.certifications[0].certified
        assert tracer() is NULL_TRACER  # scope restored after the run

    def test_untraced_run_records_nothing(self):
        from repro.orchestrator import certify_fleet
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        certify_fleet(fleet_catalog(1), [CrashFreedom()], input_lengths=(24,))
        assert tracer() is NULL_TRACER and NULL_TRACER.spans() == []

    def test_trace_option_does_not_poison_store_keys(self):
        from repro.orchestrator.store import summary_key
        from repro.symbex.engine import SymbexOptions
        from repro.workloads import fleet_catalog

        element = fleet_catalog(1)[0].elements[0]
        plain = summary_key(element, 24, SymbexOptions())
        traced = summary_key(element, 24, dataclasses.replace(SymbexOptions(), trace=True))
        assert plain == traced


class TestQueryStoreMetrics:
    def test_record_metrics_accumulates_across_runs(self, tmp_path):
        from repro.orchestrator.store import QueryStore

        store = QueryStore(tmp_path)
        assert store.load_metrics() == {}
        store.record_metrics({"checks": 10, "slices": 20, "exact_hits": 5})
        totals = store.record_metrics({"checks": 2, "slices": 4, "exact_hits": 1})
        assert totals["checks"] == 12 and totals["slices"] == 24
        assert totals["exact_hits"] == 6 and totals["runs"] == 2
        assert store.load_metrics() == totals

    def test_certify_fleet_persists_tier_counters(self, tmp_path):
        from repro.orchestrator import certify_fleet
        from repro.orchestrator.store import QueryStore
        from repro.verify import CrashFreedom
        from repro.workloads import fleet_catalog

        certify_fleet(
            fleet_catalog(2),
            [CrashFreedom()],
            input_lengths=(24,),
            query_store=str(tmp_path),
        )
        metrics = QueryStore(tmp_path).load_metrics()
        assert metrics["runs"] == 1
        assert metrics["slices"] > 0 and metrics["checks"] > 0

    def test_store_io_uses_monotonic_clock(self, tmp_path):
        from repro.orchestrator.store import QueryStore

        store = QueryStore(tmp_path)
        store.save_payload("ab" * 32, {"status": "sat"})
        assert store.statistics.puts == 1
        assert store.statistics.io_seconds > 0.0


class TestCli:
    def test_certify_trace_exports_and_summarizes(self, tmp_path, capsys):
        from repro.cli.main import EXIT_OK, main

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "certify",
                "--catalog", "fleet:2",
                "--lengths", "24",
                "--trace", str(trace_path),
                "--json",
            ]
        )
        assert code == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["format"] == "chrome"
        assert document["trace"]["summary"]["spans"] > 0
        assert load_trace(trace_path)  # Perfetto-format file round-trips

        code = main(["trace", "summary", str(trace_path), "--json"])
        assert code == EXIT_OK
        summary = json.loads(capsys.readouterr().out)
        assert {"fleet", "verify"} <= set(summary["phases"])

    def test_certify_trace_jsonl_format(self, tmp_path, capsys):
        from repro.cli.main import EXIT_OK, main

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "certify",
                "--catalog", "fleet:1",
                "--lengths", "24",
                "--trace", str(trace_path),
                "--trace-format", "jsonl",
            ]
        )
        assert code == EXIT_OK
        assert "trace      :" in capsys.readouterr().out
        spans = load_trace(trace_path)
        assert any(s.name == "fleet.certify" for s in spans)

    def test_trace_summary_rejects_empty_and_missing_traces(self, tmp_path, capsys):
        from repro.cli.main import EXIT_UNKNOWN, EXIT_USAGE, main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summary", str(empty)]) == EXIT_UNKNOWN
        capsys.readouterr()
        assert main(["trace", "summary", str(tmp_path / "nope.json")]) == EXIT_USAGE

    def test_store_stats_prints_tier_hit_rates(self, tmp_path, capsys):
        from repro.cli.main import EXIT_OK, main
        from repro.orchestrator.store import QueryStore

        QueryStore(tmp_path).record_metrics(
            {
                "checks": 10,
                "slices": 100,
                "exact_hits": 50,
                "unsat_core_hits": 10,
                "superset_sat_hits": 5,
                "model_reuse_hits": 10,
                "l3_hits": 0,
            }
        )
        code = main(["store", "stats", "--query-store", str(tmp_path), "--json"])
        assert code == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        rates = document["stores"]["query"]["tier_rates"]
        assert rates["exact"] == pytest.approx(0.5)
        assert rates["core-subset"] == pytest.approx(0.1)
        assert rates["model-reuse"] == pytest.approx(0.1)
        assert rates["overall"] == pytest.approx(0.75)

        code = main(["store", "stats", "--query-store", str(tmp_path)])
        assert code == EXIT_OK
        text = capsys.readouterr().out
        assert "tier hit rates" in text and "exact 50.0%" in text
