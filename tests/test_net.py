"""Unit and property-based tests for the networking substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    DirectIndexLPM,
    EthernetAddress,
    EthernetHeader,
    IPv4Address,
    IPv4Header,
    IPv4Prefix,
    TCPHeader,
    TrieLPM,
    UDPHeader,
    build_ethernet_frame,
    build_ipv4_packet,
    build_udp_datagram,
    internet_checksum,
    parse_classifier_pattern,
    verify_checksum,
)
from repro.net.addresses import AddressError
from repro.net.checksum import incremental_update, ones_complement_sum
from repro.net.lpm import build_table
from repro.net.rules import RuleError, parse_classifier_config, parse_classifier_rule


class TestAddresses:
    def test_ipv4_roundtrip(self):
        address = IPv4Address("192.168.1.10")
        assert int(address) == 0xC0A8010A
        assert str(address) == "192.168.1.10"
        assert bytes(address) == b"\xc0\xa8\x01\x0a"
        assert IPv4Address(bytes(address)) == address
        assert IPv4Address(int(address)) == address

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", -1, 2**32])
    def test_ipv4_invalid(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_ipv4_classification(self):
        assert IPv4Address("224.0.0.1").is_multicast()
        assert IPv4Address("127.0.0.1").is_loopback()
        assert IPv4Address("255.255.255.255").is_broadcast()
        assert not IPv4Address("10.0.0.1").is_multicast()

    def test_prefix_contains(self):
        prefix = IPv4Prefix("10.1.0.0/16")
        assert prefix.contains("10.1.200.3")
        assert not prefix.contains("10.2.0.1")
        assert prefix.mask() == 0xFFFF0000
        assert IPv4Prefix("0.0.0.0/0").contains("8.8.8.8")

    def test_prefix_normalises_host_bits(self):
        prefix = IPv4Prefix("10.1.2.3/16")
        assert str(prefix) == "10.1.0.0/16"

    def test_ethernet_roundtrip(self):
        mac = EthernetAddress("aa:bb:cc:dd:ee:ff")
        assert int(mac) == 0xAABBCCDDEEFF
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert EthernetAddress(bytes(mac)) == mac
        assert EthernetAddress("ff:ff:ff:ff:ff:ff").is_broadcast()
        assert EthernetAddress("01:00:5e:00:00:01").is_multicast()


class TestChecksum:
    def test_known_value(self):
        # Example header from RFC 1071 discussions.
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert verify_checksum(data)

    def test_checksum_roundtrip(self):
        header = bytearray(build_ipv4_packet("1.2.3.4", "5.6.7.8")[:20])
        assert verify_checksum(bytes(header))
        header[8] = 0  # corrupt a byte
        assert not verify_checksum(bytes(header))

    def test_odd_length(self):
        assert internet_checksum(b"\x01\x02\x03") == internet_checksum(b"\x01\x02\x03\x00")

    def test_incremental_update_matches_full_recompute(self):
        packet = bytearray(build_ipv4_packet("10.0.0.1", "10.0.0.2", ttl=64)[:20])
        old_checksum = int.from_bytes(packet[10:12], "big")
        old_word = int.from_bytes(packet[8:10], "big")
        packet[8] -= 1  # decrement TTL
        new_word = int.from_bytes(packet[8:10], "big")
        patched = incremental_update(old_checksum, old_word, new_word)
        packet[10:12] = b"\x00\x00"
        assert patched == internet_checksum(bytes(packet))

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=128))
    def test_checksum_verification_property(self, payload):
        if len(payload) % 2:
            payload += b"\x00"  # keep the checksum field 16-bit aligned
        header = bytearray(payload + b"\x00\x00")
        checksum = internet_checksum(bytes(header))
        header[-2:] = checksum.to_bytes(2, "big")
        assert verify_checksum(bytes(header))

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=2, max_size=64))
    def test_ones_complement_sum_commutes_with_split(self, data):
        if len(data) % 2:
            data += b"\x00"
        half = (len(data) // 4) * 2
        combined = ones_complement_sum(data[half:], ones_complement_sum(data[:half]))
        assert combined == ones_complement_sum(data)


class TestHeaders:
    def test_ethernet_roundtrip(self):
        header = EthernetHeader(
            dst=EthernetAddress("ff:ff:ff:ff:ff:ff"), src=EthernetAddress(1), ethertype=0x0800
        )
        assert EthernetHeader.unpack(header.pack()) == header

    def test_ipv4_roundtrip(self):
        packet = build_ipv4_packet("10.0.0.1", "10.0.0.2", b"hello", ttl=7,
                                   options=bytes([1, 1, 1, 1]))
        parsed = IPv4Header.unpack(packet)
        assert parsed.src == IPv4Address("10.0.0.1")
        assert parsed.dst == IPv4Address("10.0.0.2")
        assert parsed.ttl == 7
        assert parsed.ihl == 6
        assert parsed.total_length == 24 + 5  # 24-byte header (with options) + payload

    def test_ipv4_header_checksum_valid(self):
        packet = build_ipv4_packet("1.1.1.1", "2.2.2.2", b"x" * 10)
        assert verify_checksum(packet[:20])

    def test_ipv4_unpack_rejects_garbage(self):
        with pytest.raises(Exception):
            IPv4Header.unpack(b"\x00" * 10)
        with pytest.raises(Exception):
            IPv4Header.unpack(b"\x60" + b"\x00" * 19)  # version 6

    def test_udp_roundtrip(self):
        datagram = build_udp_datagram(1234, 53, b"query")
        parsed = UDPHeader.unpack(datagram)
        assert parsed.src_port == 1234
        assert parsed.dst_port == 53
        assert parsed.length == 8 + 5

    def test_tcp_roundtrip(self):
        segment = TCPHeader(src_port=80, dst_port=4000, sequence=99, flags=0x12).pack(b"data")
        parsed = TCPHeader.unpack(segment)
        assert parsed.src_port == 80 and parsed.dst_port == 4000
        assert parsed.sequence == 99 and parsed.flags == 0x12

    def test_ethernet_frame_builder(self):
        frame = build_ethernet_frame("00:00:00:00:00:01", "00:00:00:00:00:02", b"payload")
        assert len(frame) == 14 + 7
        assert int.from_bytes(frame[12:14], "big") == 0x0800


class TestLPM:
    @pytest.mark.parametrize("implementation", ["trie", "dir-24-8"])
    def test_longest_prefix_wins(self, implementation):
        table = build_table(
            [("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.2.0/24", 3), ("0.0.0.0/0", 0)],
            implementation,
        )
        assert table.lookup("10.1.2.3").port == 3
        assert table.lookup("10.1.9.9").port == 2
        assert table.lookup("10.200.0.1").port == 1
        assert table.lookup("8.8.8.8").port == 0

    @pytest.mark.parametrize("implementation", ["trie", "dir-24-8"])
    def test_miss_without_default(self, implementation):
        table = build_table([("192.168.0.0/16", 1)], implementation)
        assert table.lookup("10.0.0.1") is None

    def test_host_routes(self):
        table = TrieLPM()
        table.add_route("10.0.0.1/32", 7)
        table.add_route("10.0.0.0/24", 1)
        assert table.lookup("10.0.0.1").port == 7
        assert table.lookup("10.0.0.2").port == 1

    def test_direct_index_long_prefixes(self):
        table = DirectIndexLPM()
        table.add_route("10.0.0.0/24", 1)
        table.add_route("10.0.0.128/25", 2)
        table.add_route("10.0.0.129/32", 3)
        assert table.lookup("10.0.0.1").port == 1
        assert table.lookup("10.0.0.200").port == 2
        assert table.lookup("10.0.0.129").port == 3

    def test_short_prefix_added_after_long(self):
        table = DirectIndexLPM()
        table.add_route("10.0.0.128/25", 2)
        table.add_route("10.0.0.0/8", 1)
        assert table.lookup("10.0.0.200").port == 2
        assert table.lookup("10.0.0.1").port == 1

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 32), st.integers(0, 7)),
            min_size=1,
            max_size=20,
        ),
        st.integers(0, 2**32 - 1),
    )
    def test_trie_and_direct_index_agree(self, routes, probe):
        trie, direct = TrieLPM(), DirectIndexLPM()
        for address, length, port in routes:
            prefix = f"{IPv4Address(address)}/{length}"
            trie.add_route(prefix, port)
            direct.add_route(prefix, port)
        trie_hit = trie.lookup(probe)
        direct_hit = direct.lookup(probe)
        assert (trie_hit is None) == (direct_hit is None)
        if trie_hit is not None:
            assert trie_hit.prefix.length == direct_hit.prefix.length


class TestClassifierRules:
    def test_simple_pattern(self):
        pattern = parse_classifier_pattern("12/0800")
        assert pattern.offset == 12 and pattern.value == b"\x08\x00"
        assert pattern.matches(b"\x00" * 12 + b"\x08\x00")
        assert not pattern.matches(b"\x00" * 12 + b"\x08\x06")
        assert not pattern.matches(b"\x00" * 12)  # too short

    def test_masked_pattern(self):
        pattern = parse_classifier_pattern("0/45%f0")
        assert pattern.matches(b"\x47")
        assert not pattern.matches(b"\x57")

    def test_wildcard_nibbles(self):
        pattern = parse_classifier_pattern("0/4?")
        assert pattern.matches(b"\x45")
        assert pattern.matches(b"\x4f")
        assert not pattern.matches(b"\x54")

    def test_catch_all_rule(self):
        rule = parse_classifier_rule("-", port=3)
        assert rule.is_catch_all()
        assert rule.matches(b"")

    def test_multi_pattern_rule(self):
        rule = parse_classifier_rule("12/0800 23/11", port=0)
        packet = bytearray(32)
        packet[12:14] = b"\x08\x00"
        packet[23] = 0x11
        assert rule.matches(bytes(packet))
        packet[23] = 0x06
        assert not rule.matches(bytes(packet))

    def test_config_parsing(self):
        rules = parse_classifier_config(["12/0800", "12/0806", "-"])
        assert [rule.port for rule in rules] == [0, 1, 2]

    @pytest.mark.parametrize("bad", ["nooffset", "x/08", "0/zz"])
    def test_bad_patterns_rejected(self, bad):
        with pytest.raises(RuleError):
            parse_classifier_pattern(bad)
