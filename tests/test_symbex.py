"""Tests for the symbolic execution engine: segments, crash forks, loops, havoc state."""

import pytest
from hypothesis import strategies as st

from repro import smt
from repro.dataplane.elements import CheckIPHeader, DecIPTTL, IPLookup, IPOptions, NetFlow
from repro.ir import Interpreter, ProgramBuilder
from repro.symbex import (
    PathExplosionError,
    SegmentOutcome,
    SymbexOptions,
    SymbolicEngine,
    SymbolicPacket,
    summarize_loop,
)
from repro.symbex.engine import StaticTableMode


def summarize(element, length, **options):
    engine = SymbolicEngine(SymbexOptions(**options))
    return engine.summarize_element(
        element.program,
        length,
        tables=element.state.tables(),
        element_name=element.name,
        configuration_key=element.configuration_key(),
    )


class TestSymbolicPacket:
    def test_fresh_packet_bytes_are_symbolic(self):
        packet = SymbolicPacket.fresh(4)
        assert len(packet) == 4
        assert all(byte.is_var() for byte in packet.bytes)

    def test_load_store_roundtrip_concrete(self):
        packet = SymbolicPacket.concrete(bytes([1, 2, 3, 4]))
        assert smt.evaluate(packet.load(1, 2), {}) == 0x0203
        packet.store(0, 2, smt.BitVecVal(0xBEEF, 64))
        assert smt.evaluate(packet.load(0, 2), {}) == 0xBEEF


class TestSegmentEnumeration:
    def test_decttl_segments(self):
        summary = summarize(DecIPTTL(name="ttl"), 20, merge="off")
        assert len(summary.crash_segments) == 0
        assert len(summary.drop_segments) == 1
        # Two emit paths: with and without the checksum end-around carry.
        assert len(summary.emit_segments) == 2
        drop = summary.drop_segments[0]
        assert drop.drop_reason == "TTL expired"

    def test_decttl_segments_merge_collapses_carry_fork(self):
        # Under the default (conservative) merge the two emit paths — with
        # and without the checksum end-around carry — join into one
        # ite-lifted segment; the drop path stays distinct.
        summary = summarize(DecIPTTL(name="ttl"), 20)
        assert len(summary.crash_segments) == 0
        assert len(summary.drop_segments) == 1
        assert len(summary.emit_segments) == 1
        assert summary.paths_merged >= 1

    def test_segments_partition_the_input_space(self):
        """Segment constraints are mutually exclusive and exhaustive (a sound+complete split)."""
        summary = summarize(DecIPTTL(name="ttl"), 20)
        solver = smt.Solver()
        # Exhaustive: the disjunction of constraints is valid (its negation is UNSAT).
        disjunction = smt.Or(*[segment.constraint for segment in summary.segments])
        assert solver.check(smt.Not(disjunction)) == smt.CheckResult.UNSAT
        # Mutually exclusive: any two constraints cannot hold together.
        for i, first in enumerate(summary.segments):
            for second in summary.segments[i + 1 :]:
                assert solver.check(smt.And(first.constraint, second.constraint)) == smt.CheckResult.UNSAT

    def test_segment_models_replay_on_the_interpreter(self):
        """A model of each segment's constraint drives the interpreter down that segment."""
        element = DecIPTTL(name="ttl")
        # merge=off: merged segments report instructions as an upper bound
        # (max over merged arms), so exact replay needs unmerged paths.
        summary = summarize(element, 20, merge="off")
        solver = smt.Solver()
        interpreter = Interpreter()
        for segment in summary.segments:
            assert solver.check(segment.constraint) == smt.CheckResult.SAT
            model = solver.model()
            packet = bytes(int(model.get(f"in_b{i}", 0)) & 0xFF for i in range(20))
            result = interpreter.run(element.program, packet, state=element.state)
            assert result.outcome == segment.outcome
            assert result.instructions == segment.instructions

    def test_merged_segment_models_replay_within_bound(self):
        """Merged segments still replay the right outcome; instructions upper-bound."""
        element = DecIPTTL(name="ttl")
        summary = summarize(element, 20)
        solver = smt.Solver()
        interpreter = Interpreter()
        for segment in summary.segments:
            assert solver.check(segment.constraint) == smt.CheckResult.SAT
            model = solver.model()
            packet = bytes(int(model.get(f"in_b{i}", 0)) & 0xFF for i in range(20))
            result = interpreter.run(element.program, packet, state=element.state)
            assert result.outcome == segment.outcome
            assert result.instructions <= segment.instructions

    def test_out_of_bounds_read_produces_crash_segment(self):
        builder = ProgramBuilder("oob")
        offset = builder.let("offset", builder.load(0, 1))
        builder.assign("value", builder.load(offset, 1))
        builder.emit(0)
        engine = SymbolicEngine(SymbexOptions())
        states = engine.execute_program(builder.build(), SymbolicPacket.fresh(8))
        outcomes = {state.outcome for state in states}
        assert SegmentOutcome.CRASH in outcomes and SegmentOutcome.EMIT in outcomes

    def test_division_by_zero_fork(self):
        builder = ProgramBuilder("div")
        builder.assign("q", builder.load(0, 1) // builder.load(1, 1))
        builder.emit(0)
        engine = SymbolicEngine(SymbexOptions())
        states = engine.execute_program(builder.build(), SymbolicPacket.fresh(2))
        crash = [state for state in states if state.outcome == SegmentOutcome.CRASH]
        assert len(crash) == 1 and "zero" in crash[0].crash_message

    def test_infeasible_branches_pruned(self):
        builder = ProgramBuilder("contradiction")
        value = builder.let("value", builder.load(0, 1))
        with builder.if_(value < 10):
            with builder.if_(value > 20):
                builder.drop("impossible")
        builder.emit(0)
        engine = SymbolicEngine(SymbexOptions())
        states = engine.execute_program(builder.build(), SymbolicPacket.fresh(1))
        assert all(state.outcome != SegmentOutcome.DROP for state in states)

    def test_path_budget_enforced(self):
        builder = ProgramBuilder("wide")
        for index in range(8):
            with builder.if_(builder.load(index, 1) > 127):
                builder.set_meta(f"bit{index}", 1)
        builder.emit(0)
        engine = SymbolicEngine(SymbexOptions(max_paths=10))
        with pytest.raises(PathExplosionError):
            engine.execute_program(builder.build(), SymbolicPacket.fresh(8))

    def test_instruction_counts_match_interpreter_on_samples(self):
        element = CheckIPHeader(name="chk", verify_checksum=False)
        summary = summarize(element, 24)
        solver = smt.Solver()
        for segment in summary.segments:
            assert solver.check(segment.constraint) == smt.CheckResult.SAT
            model = solver.model()
            packet = bytes(int(model.get(f"in_b{i}", 0)) & 0xFF for i in range(24))
            result = Interpreter().run(element.program, packet, state=element.state)
            assert result.instructions == segment.instructions


class TestStaticTables:
    def test_concrete_mode_uses_table_contents(self):
        element = IPLookup([("10.0.0.0/8", 0), ("0.0.0.0/0", 1)], name="rt")
        summary = summarize(element, 20)
        # With a default route the "no route" drop is infeasible.
        assert not summary.drop_segments
        assert {segment.port for segment in summary.emit_segments} == {0, 1}

    def test_havoc_mode_allows_any_table(self):
        element = IPLookup([("10.0.0.0/8", 0), ("0.0.0.0/0", 1)], name="rt")
        summary = summarize(element, 20, static_table_mode=StaticTableMode.HAVOC)
        # Any-configuration proof: the not-found drop is reachable now.
        assert summary.drop_segments
        assert any(segment.havoc_reads for segment in summary.segments)


class TestStatefulElements:
    def test_netflow_reads_are_havocked(self):
        summary = summarize(NetFlow(name="nf"), 20)
        assert all(not segment.crashes for segment in summary.segments)
        assert any(segment.havoc_reads for segment in summary.segments)
        assert any(segment.table_writes for segment in summary.segments)

    def test_ipoptions_has_crash_suspects_in_isolation(self):
        summary = summarize(IPOptions(name="opts", max_options=4), 24)
        assert summary.crash_segments  # the Figure-2 style suspect segments


class TestLoopDecomposition:
    def test_loop_summary_scales_linearly(self):
        element = IPOptions(name="opts", max_options=6)
        loop = element.program.loops()[0]
        summary = summarize_loop(element.program, loop, input_length=24)
        assert summary.segments_per_iteration >= 2
        assert summary.decomposed_segment_count == summary.segments_per_iteration * 6
        assert summary.naive_segment_count() > summary.decomposed_segment_count
        assert summary.loop_instruction_bound == (
            summary.max_instructions_per_iteration * loop.max_iterations
        )

    def test_checksum_loop_iteration_is_crash_free(self):
        element = CheckIPHeader(name="chk", verify_checksum=True)
        loop = element.program.loops()[0]
        summary = summarize_loop(element.program, loop, input_length=20)
        assert summary.crash_segments_per_iteration == 0

    @staticmethod
    def _counter_loop_program(conditional_init: bool):
        """A stride-4 scan whose initialiser is (optionally) branch-dependent."""
        builder = ProgramBuilder("counter")
        selector = builder.let("selector", builder.load(1, 1))
        if conditional_init:
            with builder.if_(selector):
                builder.assign("r", builder.load(0, 1))
            with builder.else_():
                builder.assign("r", 4)
        else:
            builder.assign("r", 4)
        with builder.while_(builder.reg("r") < 20, max_iterations=8, loop_id="scan"):
            builder.let("x", builder.load(builder.reg("r"), 1))
            builder.assign("r", builder.reg("r") + 4)
        builder.emit(0)
        return builder.build()

    def test_stride_invariant_requires_dominating_initialiser(self):
        """A branch-dependent initial value must not narrow the havoc'd counter.

        With `r := 4` dominating, only r in {4, 8, 12, 16} reaches the scan's
        reads, all inside an 18-byte packet.  When one branch loads r from
        the packet instead, r = 18 is a reachable loop-head state and the
        iteration must report the out-of-bounds read.
        """
        sound = self._counter_loop_program(conditional_init=False)
        summary = summarize_loop(sound, sound.loops()[0], input_length=18)
        assert summary.crash_segments_per_iteration == 0

        unsound_if_narrowed = self._counter_loop_program(conditional_init=True)
        summary = summarize_loop(
            unsound_if_narrowed, unsound_if_narrowed.loops()[0], input_length=18
        )
        assert summary.crash_segments_per_iteration >= 1

    def test_prefix_crashes_not_attributed_to_the_iteration(self):
        """IPOptions' trusted-IHL read crashes before the loop, not per-iteration."""
        element = IPOptions(name="opts", max_options=4)
        loop = element.program.loops()[0]
        summary = summarize_loop(element.program, loop, input_length=24)
        # Surviving the trusted-IHL read bounds hlen by the packet length, so
        # in context the walk itself cannot read out of bounds...
        assert summary.crash_segments_per_iteration == 0
        # ...while the prefix's own crash segments (the Figure-2 suspects)
        # exist in the raw summary and are excluded from the per-iteration count.
        prefix_crashes = [
            segment
            for segment in summary.iteration_summary.crash_segments
            if "__loop_iteration" not in segment.output_metadata
        ]
        assert prefix_crashes
        assert summary.crash_segments_per_iteration + len(prefix_crashes) == len(
            summary.iteration_summary.crash_segments
        )
