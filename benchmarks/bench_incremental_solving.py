"""E9 — incremental assumption-based solving vs from-scratch solving.

The refactored SMT core keeps one bit-blasted CNF, variable maps and
learned clauses alive across queries (``repro.smt.context``); scratch mode
(``SymbexOptions(incremental=False)``) rebuilds every query from nothing
and is kept for differential testing.  This benchmark runs the two modes
over the workloads where solver throughput dominates:

* per-element summarisation of the synthetic branchy elements behind the
  path-scaling experiment (every fork pays two feasibility checks), and
* end-to-end decomposed verification (Step 1 + Step 2 composition) of the
  IP-router pipeline.

It asserts that the two modes agree exactly — same segments, same
outcomes, same verdicts — and that incremental mode is faster in total.

Set ``REPRO_BENCH_QUICK=1`` for a CI-smoke-sized run.
"""

import os
import time

from repro.symbex import SymbexOptions
from repro.symbex.engine import SymbolicEngine
from repro.verify import verify_crash_freedom
from repro.workloads import ip_router_pipeline
from repro.workloads.pipelines import SyntheticBranchyElement

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

SYNTHETIC_BRANCHES = (2, 3, 4) if QUICK else (2, 3, 4, 5, 6)
SYNTHETIC_INPUT_LENGTH = 12
ROUTER_LENGTHS = (2,) if QUICK else (2, 4)
ROUTER_INPUT_LENGTHS = (24,)


def _summarize_suite(incremental: bool):
    """Summarise every synthetic element; returns (seconds, outcome fingerprint)."""
    started = time.perf_counter()
    fingerprint = []
    for branches in SYNTHETIC_BRANCHES:
        element = SyntheticBranchyElement(branches=branches, offset=0, name=f"branchy{branches}")
        engine = SymbolicEngine(
            SymbexOptions(incremental=incremental, max_paths=100_000, merge="off")
        )
        summary = engine.summarize_element(
            element.program,
            SYNTHETIC_INPUT_LENGTH,
            tables=element.state.tables(),
            element_name=element.name,
        )
        fingerprint.append(
            (branches, sorted((segment.outcome, segment.port) for segment in summary.segments))
        )
    return time.perf_counter() - started, fingerprint


def _verify_suite(incremental: bool):
    """Decomposed verification of router prefixes; returns (seconds, verdicts)."""
    started = time.perf_counter()
    verdicts = []
    for length in ROUTER_LENGTHS:
        pipeline = ip_router_pipeline(length=length, verify_checksum=False)
        result = verify_crash_freedom(
            pipeline,
            input_lengths=list(ROUTER_INPUT_LENGTHS),
            options=SymbexOptions(incremental=incremental, merge="off"),
        )
        verdicts.append((length, result.verdict))
    return time.perf_counter() - started, verdicts


def run_comparison():
    rows = {}
    for name, suite in (("summarize", _summarize_suite), ("verify", _verify_suite)):
        incremental_seconds, incremental_answer = suite(incremental=True)
        scratch_seconds, scratch_answer = suite(incremental=False)
        rows[name] = {
            "incremental_seconds": incremental_seconds,
            "scratch_seconds": scratch_seconds,
            "speedup": scratch_seconds / max(incremental_seconds, 1e-9),
            "agrees": incremental_answer == scratch_answer,
        }
    return rows


def test_incremental_vs_scratch(benchmark, bench_json):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    bench_json("incremental_solving", rows)

    print("\n--- E9: incremental vs scratch solving ---")
    print(f"{'workload':>10} | {'scratch (s)':>12} {'incremental (s)':>16} {'speedup':>8} {'agree':>6}")
    for name, row in rows.items():
        print(
            f"{name:>10} | {row['scratch_seconds']:>12.3f} {row['incremental_seconds']:>16.3f} "
            f"{row['speedup']:>7.2f}x {str(row['agrees']):>6}"
        )

    # Differential: both solving cores must return identical answers.
    assert all(row["agrees"] for row in rows.values())
    # The point of the refactor: retained encodings and learned clauses beat
    # rebuilding from scratch on every query.
    total_incremental = sum(row["incremental_seconds"] for row in rows.values())
    total_scratch = sum(row["scratch_seconds"] for row in rows.values())
    assert total_incremental < total_scratch
