"""Benchmark configuration: src/ importability and shared fixtures/helpers."""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def run_once(benchmark, function, *args, **kwargs):
    """Run a (potentially slow) verification exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once


def write_bench_json(name, results):
    """Write ``BENCH_<name>.json`` so the perf trajectory is machine-readable.

    Every benchmark funnels its result rows through here; CI uploads the
    files as artifacts, so numbers can be compared across PRs without
    scraping stdout.  ``results`` must be JSON-able (non-JSON values fall
    back to their ``str()``).  The target directory defaults to the repo
    root and can be redirected with ``REPRO_BENCH_JSON_DIR``.
    """
    directory = Path(os.environ.get("REPRO_BENCH_JSON_DIR", REPO_ROOT))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    document = {"bench": name, "quick": QUICK, "results": results}
    path.write_text(json.dumps(document, indent=2, sort_keys=True, default=str) + "\n")
    return path


@pytest.fixture
def bench_json():
    return write_bench_json
