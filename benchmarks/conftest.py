"""Benchmark configuration: src/ importability and shared fixtures/helpers."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run a (potentially slow) verification exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
