"""E3 — §3 Preliminary Results: crash freedom of the Click IP-router pipelines.

Paper: "We proved that any pipeline that consists of these elements will
not crash for any input."  This bench proves crash freedom for every
prefix of the IP-router chain with the decomposed verifier.
"""

from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, PipelineVerifier
from repro.workloads import ip_router_pipeline

INPUT_LENGTH = 24
LENGTHS = (1, 2, 3, 4)


def verify_all_prefixes():
    results = []
    for length in LENGTHS:
        pipeline = ip_router_pipeline(length=length, verify_checksum=False, max_options=8)
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=50_000))
        result = verifier.verify(CrashFreedom(), input_lengths=[INPUT_LENGTH])
        results.append((length, result))
    return results


def test_prelim_crash_freedom(benchmark, bench_json):
    results = benchmark.pedantic(verify_all_prefixes, rounds=1, iterations=1)
    bench_json(
        "prelim_crash_freedom",
        [
            {
                "pipeline_length": length,
                "verdict": result.verdict,
                "segments": result.statistics.segments_total,
                "suspects": result.statistics.suspect_segments,
                "composed_paths": result.statistics.composed_paths_checked,
                "elapsed_seconds": result.statistics.elapsed_seconds,
            }
            for length, result in results
        ],
    )

    print("\n--- E3: crash freedom of IP-router pipelines (paper: all proved) ---")
    print(f"{'pipeline length':>15} | {'verdict':>8} | {'segments':>8} | {'suspects':>8} | "
          f"{'composed':>8} | {'time (s)':>8}")
    for length, result in results:
        stats = result.statistics
        print(f"{length:>15} | {result.verdict:>8} | {stats.segments_total:>8} | "
              f"{stats.suspect_segments:>8} | {stats.composed_paths_checked:>8} | "
              f"{stats.elapsed_seconds:>8.2f}")
        assert result.proved, result.summary()
