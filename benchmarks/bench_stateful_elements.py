"""E8 — §3 Element Verification / Preliminary Results: stateful elements (NetFlow, NAT).

Paper: mutable data structures are modelled as key/value stores whose
reads may return anything; the paper reports ongoing work on pipelines
with NetFlow-style statistics and NAT.  This bench verifies the stateful
gateway pipeline (CheckIPHeader -> NetFlow -> NAT): crash freedom holds
for any table contents, and the analysis reports how many havoc'd reads
and table writes were reasoned about.
"""

from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, PipelineVerifier
from repro.workloads import nat_gateway_pipeline

INPUT_LENGTH = 28


def verify_stateful_pipeline():
    pipeline = nat_gateway_pipeline(verify_checksum=False)
    verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=50_000))
    result = verifier.verify(CrashFreedom(), input_lengths=[INPUT_LENGTH])
    summaries = verifier.element_summaries(INPUT_LENGTH)
    return result, summaries


def test_stateful_elements(benchmark, bench_json):
    result, summaries = benchmark.pedantic(verify_stateful_pipeline, rounds=1, iterations=1)
    bench_json(
        "stateful_elements",
        {
            "verdict": result.verdict,
            "segments": result.statistics.segments_total,
            "suspects": result.statistics.suspect_segments,
            "havoc_reads": sum(
                len(segment.havoc_reads)
                for _key, (_element, summary) in summaries.items()
                for segment in summary.segments
            ),
            "elapsed_seconds": result.statistics.elapsed_seconds,
        },
    )

    print("\n--- E8: stateful elements with havoc'd key/value state "
          "(paper: NetFlow / NAT pipelines) ---")
    print(f"verdict: {result.verdict} "
          f"({result.statistics.segments_total} segments, "
          f"{result.statistics.suspect_segments} suspects)")
    print(f"{'element':>12} | {'segments':>8} | {'havoc reads':>11} | {'table writes':>12}")
    total_havoc = 0
    for (name, _length), (_element, summary) in sorted(summaries.items()):
        havoc = sum(len(segment.havoc_reads) for segment in summary.segments)
        writes = sum(len(segment.table_writes) for segment in summary.segments)
        total_havoc += havoc
        print(f"{name:>12} | {len(summary.segments):>8} | {havoc:>11} | {writes:>12}")

    assert result.proved, result.summary()
    assert total_havoc > 0  # the key/value-store model was actually exercised
