"""E5 — §3 Preliminary Results: decomposed verification time vs the monolithic baseline.

Paper: the decomposed approach verifies the longest pipeline in ~18
minutes, while the same symbex engine *without* decomposition does not
complete within 12 hours.  Reproduced shape: decomposed time grows roughly
linearly with pipeline length, the monolithic baseline's explored-path
count grows multiplicatively and it stops completing within its (scaled
down) budget as the pipeline grows.
"""

import time

from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, MonolithicVerifier, PipelineVerifier, Verdict
from repro.workloads import synthetic_pipeline

BRANCHES_PER_ELEMENT = 3
PIPELINE_LENGTHS = (1, 2, 3, 4, 5)
# Each synthetic element branches on its own bytes; the packet must cover
# the offsets of the longest pipeline.
INPUT_LENGTH = BRANCHES_PER_ELEMENT * max(PIPELINE_LENGTHS)
MONOLITHIC_PATH_BUDGET = 200  # the scaled-down stand-in for the paper's 12-hour budget


def run_comparison():
    rows = []
    for length in PIPELINE_LENGTHS:
        pipeline = synthetic_pipeline(elements=length, branches_per_element=BRANCHES_PER_ELEMENT)

        started = time.perf_counter()
        # merge=off throughout: this bench pins the paper's *unmerged* path
        # counts (state merging collapses the synthetic branches entirely).
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=50_000, merge="off"))
        decomposed = verifier.verify(CrashFreedom(), input_lengths=[INPUT_LENGTH])
        decomposed_seconds = time.perf_counter() - started
        decomposed_segments = decomposed.statistics.segments_total

        started = time.perf_counter()
        baseline = MonolithicVerifier(
            pipeline,
            options=SymbexOptions(max_paths=MONOLITHIC_PATH_BUDGET, max_seconds=120, merge="off"),
        )
        monolithic = baseline.verify(CrashFreedom(), input_length=INPUT_LENGTH)
        monolithic_seconds = time.perf_counter() - started
        monolithic_paths = getattr(monolithic.statistics, "pipeline_paths_explored", 0)

        rows.append(
            {
                "length": length,
                "decomposed_verdict": decomposed.verdict,
                "decomposed_seconds": decomposed_seconds,
                "decomposed_segments": decomposed_segments,
                "monolithic_verdict": monolithic.verdict,
                "monolithic_seconds": monolithic_seconds,
                "monolithic_paths": monolithic_paths,
            }
        )
    return rows


def test_decomposed_vs_monolithic(benchmark, bench_json):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    bench_json("decomposed_vs_monolithic", rows)

    print("\n--- E5: decomposed vs monolithic verification "
          f"(k elements x {BRANCHES_PER_ELEMENT} branches; "
          f"monolithic budget = {MONOLITHIC_PATH_BUDGET} paths) ---")
    print(f"{'k':>2} | {'decomposed':>20} | {'segments':>8} | "
          f"{'monolithic':>22} | {'paths':>7}")
    for row in rows:
        print(f"{row['length']:>2} | "
              f"{row['decomposed_verdict']:>10} {row['decomposed_seconds']:>7.2f}s | "
              f"{row['decomposed_segments']:>8} | "
              f"{row['monolithic_verdict']:>12} {row['monolithic_seconds']:>7.2f}s | "
              f"{row['monolithic_paths']:>7}")

    # Decomposition always completes and proves the property.
    assert all(row["decomposed_verdict"] == Verdict.PROVED for row in rows)
    # Decomposed work grows linearly in k (k * 2^n segments).
    per_element = 2**BRANCHES_PER_ELEMENT
    assert [row["decomposed_segments"] for row in rows] == [
        per_element * row["length"] for row in rows
    ]
    # The monolithic baseline completes on short pipelines but blows its budget
    # on the longer ones — the "did not finish" data point.
    assert rows[0]["monolithic_verdict"] == Verdict.PROVED
    assert rows[-1]["monolithic_verdict"] == Verdict.UNKNOWN
