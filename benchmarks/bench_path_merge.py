"""Path-merging symbolic execution: ite-lifted joins + batched slice solving.

Three claims, measured on the branch-heavy synthetic catalog and the
standard fleet catalog:

* **explosion rescue** — with ``merge=off`` the branch-heavy pipeline
  blows a 2^k path budget and degrades to ``unknown``; ``conservative``
  merging keeps the frontier at one state per join and certifies the
  same pipeline under the identical budget;
* **path/work ratio** — on the fleet catalog, conservative merging
  explores >= 3x fewer Step-1 paths and issues no more SAT-core calls
  than ``off``, with verdict parity (including the ``array`` backend);
* **batched slice solving** — variable-disjoint slices of one query are
  solved in a single arena: strictly fewer encode sweeps than slices
  solved, with shared-subterm blast-cache hits.

A copy-on-write fork-cost microbench rides along: ``SymbolicPacket.copy``
shares pages instead of duplicating the byte list, so forking a large
packet is O(pages-touched), not O(length).

Set ``REPRO_BENCH_QUICK=1`` for the CI-smoke-sized run (fewer branches,
smaller catalog — the quick numbers are the pinned ones).
"""

import os
import time

from repro.orchestrator import certify_fleet
from repro.symbex import SymbexOptions, SymbolicEngine, SymbolicPacket
from repro.verify import CrashFreedom, Verdict
from repro.workloads import fleet_catalog, synthetic_branchy_element, synthetic_pipeline

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Branch count of the explosion pipeline: merge=off forks 2^k paths,
#: which overflows a 2^(k-1) budget at the final branch; conservative
#: merging keeps the frontier at one state and certifies under the same
#: budget (4096 paths in full mode).
EXPLOSION_BRANCHES = 9 if QUICK else 13
EXPLOSION_BUDGET = 2 ** (EXPLOSION_BRANCHES - 1)
CATALOG_SIZE = 8
INPUT_LENGTHS = (24,)

#: Acceptance floor: Step-1 paths explored must drop by this factor on
#: the fleet catalog when conservative merging is enabled.
PATHS_RATIO_FLOOR = 3.0


def _catalog():
    """The branch-heavy fleet: the standard catalog plus pipelines whose
    elements fork hard on packet bytes.  The routers/gateways keep the
    differential honest (their forks mostly diverge in control outcome
    and barely merge); the branchy members are where joins pay off."""
    heavies = [
        synthetic_pipeline(3, 5, name=f"heavy-{index}") for index in range(4)
    ]
    return fleet_catalog(CATALOG_SIZE) + heavies


def _certify(merge, **kwargs):
    options = SymbexOptions(merge=merge, **kwargs.pop("options", {}))
    return certify_fleet(
        _catalog(),
        [CrashFreedom()],
        input_lengths=INPUT_LENGTHS,
        options=options,
        **kwargs,
    )


def _explosion_run(merge):
    pipeline = synthetic_pipeline(
        elements=1, branches_per_element=EXPLOSION_BRANCHES, name="branch-heavy"
    )
    options = SymbexOptions(merge=merge, max_paths=EXPLOSION_BUDGET)
    return certify_fleet(
        [pipeline], [CrashFreedom()], input_lengths=(24,), options=options
    )


def _summarize_sliced(merge):
    """Summarize an element whose feasibility queries slice and reach the
    core (header validation: mixed SAT/UNSAT over disjoint byte groups),
    returning (summary, checker statistics)."""
    from repro.dataplane.elements import CheckIPHeader

    engine = SymbolicEngine(SymbexOptions(merge=merge))
    element = CheckIPHeader(name="check_ip")
    summary = engine.summarize_element(
        element.program,
        24,
        tables=element.state.tables(),
        element_name=element.name,
        configuration_key=element.configuration_key(),
    )
    return summary, engine.checker.statistics


def _arena_microbench(slices=5):
    """One composed query whose constraints arrive together — the Step-2
    shape the arena is built for: ``slices`` variable-disjoint masked-byte
    constraints (interval quick check cannot decide bit-masks) all miss
    the cache at once, so the batch hook encodes the whole set in one
    sweep and runs one assumption solve per slice."""
    from repro import smt
    from repro.smt.qcache import build_query_cache

    checker = smt.AssumptionChecker(query_cache=build_query_cache(True, None))
    constraints = [
        smt.intern_term(smt.simplify((smt.BitVec(f"in_b{i}", 64) & 0x7) == 0x5))
        for i in range(slices)
    ]
    status, _ = checker.check(constraints)
    assert status == smt.CheckResult.SAT
    return checker.statistics


def _fork_cost_microbench(length=1500, forks=2000):
    """CPU seconds to fork (and dirty one byte of) a packet of ``length``.

    ``paged`` measures the copy-on-write :meth:`SymbolicPacket.copy`;
    ``flat`` rebuilds the packet from its materialized byte list — the
    cost the pre-COW representation paid on every fork.
    """
    packet = SymbolicPacket.fresh(length)
    probe = packet.byte(0)
    clock = time.process_time

    started = clock()
    for _ in range(forks):
        child = packet.copy()
        child.set_byte(0, probe)
    paged_seconds = clock() - started

    started = clock()
    for _ in range(forks):
        child = SymbolicPacket(list(packet.bytes))
        child.set_byte(0, probe)
    flat_seconds = clock() - started
    return paged_seconds, flat_seconds


def run_path_merge():
    exploded = _explosion_run("off")
    rescued = _explosion_run("conservative")
    off = _certify("off")
    conservative = _certify("conservative")
    array_parity = _certify("conservative", options={"sat_backend": "array"})
    _summary, checker_stats = _summarize_sliced("off")
    arena_stats = _arena_microbench()
    fork_paged, fork_flat = _fork_cost_microbench()
    return (exploded, rescued, off, conservative, array_parity, checker_stats,
            arena_stats, fork_paged, fork_flat)


def test_path_merge(benchmark, bench_json):
    (exploded, rescued, off, conservative, array_parity, checker_stats,
     arena_stats, fork_paged, fork_flat) = benchmark.pedantic(
        run_path_merge, rounds=1, iterations=1
    )

    paths_ratio = off.statistics.paths_explored / max(
        conservative.statistics.paths_explored, 1
    )
    sat_ratio = off.statistics.sat_core_calls / max(
        conservative.statistics.sat_core_calls, 1
    )
    fork_speedup = fork_flat / max(fork_paged, 1e-9)

    print(f"\n--- path merging ({CATALOG_SIZE} pipelines, "
          f"branch-heavy budget {EXPLOSION_BUDGET}) ---")
    print(f"{'mode':>14} | {'paths':>7} | {'merged':>6} | {'SAT calls':>9} | "
          f"{'seconds':>7}")
    for label, report in (("off", off), ("conservative", conservative)):
        stats = report.statistics
        print(f"{label:>14} | {stats.paths_explored:>7} | {stats.paths_merged:>6} | "
              f"{stats.sat_core_calls:>9} | {stats.elapsed_seconds:>7.2f}")
    print(f"paths ratio {paths_ratio:.1f}x (floor {PATHS_RATIO_FLOOR:.1f}x), "
          f"SAT-core ratio {sat_ratio:.1f}x")
    print(f"branch-heavy: off -> {exploded.verdicts()[0][2]}, "
          f"conservative -> {rescued.verdicts()[0][2]}")
    print(f"element run: {checker_stats.slices_solved} slices solved, "
          f"{checker_stats.encode_passes} encode passes, "
          f"{checker_stats.blast_cache_hits} blast-cache hits")
    print(f"slice arena: {arena_stats.slices_solved} slices solved in "
          f"{arena_stats.encode_passes} encode pass, "
          f"{arena_stats.blast_cache_hits} blast-cache hits")
    print(f"fork cost ({2000} forks of 1500 bytes): paged {fork_paged:.3f}s "
          f"vs flat {fork_flat:.3f}s ({fork_speedup:.1f}x)")

    bench_json(
        "path_merge",
        {
            "catalog_size": CATALOG_SIZE,
            "explosion_branches": EXPLOSION_BRANCHES,
            "explosion_budget": EXPLOSION_BUDGET,
            "off_explodes": int(exploded.verdicts()[0][2] == Verdict.UNKNOWN),
            "conservative_certifies": int(
                rescued.verdicts()[0][2] == Verdict.PROVED
            ),
            "off_paths_explored": off.statistics.paths_explored,
            "conservative_paths_explored": conservative.statistics.paths_explored,
            "paths_ratio": paths_ratio,
            "off_sat_core_calls": off.statistics.sat_core_calls,
            "conservative_sat_core_calls": conservative.statistics.sat_core_calls,
            "sat_core_ratio": sat_ratio,
            "paths_merged": conservative.statistics.paths_merged,
            "ites_introduced": conservative.statistics.ites_introduced,
            "verdicts_match": int(
                off.verdicts() == conservative.verdicts() == array_parity.verdicts()
            ),
            "element_slices_solved": checker_stats.slices_solved,
            "element_encode_passes": checker_stats.encode_passes,
            "element_blast_cache_hits": checker_stats.blast_cache_hits,
            "arena_slices_solved": arena_stats.slices_solved,
            "arena_encode_passes": arena_stats.encode_passes,
            "arena_blast_cache_hits": arena_stats.blast_cache_hits,
            "fork_paged_seconds": fork_paged,
            "fork_flat_seconds": fork_flat,
            "fork_speedup": fork_speedup,
        },
    )

    # The rescue: off blows the budget, conservative certifies under it.
    assert exploded.verdicts()[0][2] == Verdict.UNKNOWN
    assert rescued.verdicts()[0][2] == Verdict.PROVED

    # Merging is an optimization, never a semantic change.
    assert off.verdicts() == conservative.verdicts()
    assert array_parity.verdicts() == conservative.verdicts()

    assert paths_ratio >= PATHS_RATIO_FLOOR, (
        f"conservative merging only cut Step-1 paths by {paths_ratio:.2f}x "
        f"({off.statistics.paths_explored} -> "
        f"{conservative.statistics.paths_explored})"
    )
    assert conservative.statistics.sat_core_calls <= off.statistics.sat_core_calls

    # Batched slice solving: one arena, shared bit-blasting.  An encode
    # sweep covers a whole batch, so sweeps stay below slices solved; the
    # uid-keyed blast cache shows shared subterms encoding only once.
    # The microbench isolates the designed case (all slices fresh at
    # once); the element run shows it also fires on the DFS workload.
    assert arena_stats.slices_solved > 1
    assert arena_stats.encode_passes == 1, (
        f"{arena_stats.encode_passes} encode passes for "
        f"{arena_stats.slices_solved} fresh slices — the arena is not batching"
    )
    assert arena_stats.blast_cache_hits > 0
    assert checker_stats.encode_passes < checker_stats.slices_solved
    assert checker_stats.blast_cache_hits > 0
