"""E13 — the flat-array CDCL core against the reference solver.

Certifies the checksum-heavy 8-pipeline fleet catalog with the query
cache disabled — every solver question reaches the CDCL core, so solver
time dominates the run — once per SAT backend, and checks the three
claims the backend seam is built on:

* **speedup** — the ``array`` backend spends >= 5x (quick: >= 4x) less
  CPU time inside ``solve`` than ``reference`` on the identical
  workload.  Both cores run in the same process on the same machine, so
  the ratio is runner-relative and far more stable than wall-clock;
* **verdict parity** — every backend (including ``external`` when a
  DIMACS solver binary is installed) certifies the same verdicts on the
  full catalog;
* **determinism** — the in-process cores are deterministic for the
  fixed catalog, so the SAT-core call count is pinned exactly.

Set ``REPRO_BENCH_QUICK=1`` for the CI-smoke-sized run (same catalog,
single property — the quick numbers are the pinned ones).  Set
``REPRO_REQUIRE_EXTERNAL=1`` to fail instead of skip when no external
solver is installed (used by the optional CI solver job).
"""

import os
import time

from repro.orchestrator import certify_fleet
from repro.smt.backend import find_external_solver
from repro.smt.sat import SATSolver
from repro.smt.satcore import ArraySolver
from repro.symbex.engine import SymbexOptions
from repro.verify import CrashFreedom, destination_reachability
from repro.workloads import fleet_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REQUIRE_EXTERNAL = os.environ.get("REPRO_REQUIRE_EXTERNAL", "") not in ("", "0")

#: The tentpole claim is stated for the 8-pipeline checksum catalog.
CATALOG_SIZE = 8
INPUT_LENGTHS = (24,)

#: Solver-core CPU-seconds speedup the array backend must clear.  The
#: full-mode floor is the acceptance criterion; the quick floor sits
#: below the ~5.7x observed at baseline-refresh time because the quick
#: workload is lighter and per-call overhead weighs more.
SPEEDUP_FLOOR = 4.0 if QUICK else 5.0

#: Measured runs per backend (after one warmup); the minimum is scored.
MEASURED_RUNS = 1 if QUICK else 2


def _properties():
    if QUICK:
        return [CrashFreedom()]
    return [
        CrashFreedom(),
        destination_reachability(
            0x0A000001, exempt_elements={"check_ip", "gw_check", "dec_ttl", "lookup"}
        ),
    ]


def _certify(backend):
    return certify_fleet(
        fleet_catalog(CATALOG_SIZE, verify_checksum=True),
        _properties(),
        input_lengths=INPUT_LENGTHS,
        options=SymbexOptions(query_opt=False, sat_backend=backend),
    )


def _timed_certify(backend, solver_class):
    """Certify with ``backend``, measuring CPU seconds inside ``solve``.

    The solver class's ``solve`` is wrapped with a ``process_time``
    accumulator for the duration, so the score counts exactly the CDCL
    core (not symbolic execution, composition, or clause feeding), and
    is immune to wall-clock noise from other processes.  One warmup run
    absorbs import/JIT-warming effects; the minimum over the measured
    runs is scored.
    """
    unbound_solve = solver_class.__dict__["solve"]
    clock = time.process_time
    accumulator = {"seconds": 0.0}

    def timed_solve(self, *args, **kwargs):
        started = clock()
        try:
            return unbound_solve(self, *args, **kwargs)
        finally:
            accumulator["seconds"] += clock() - started

    solver_class.solve = timed_solve
    try:
        report = _certify(backend)  # warmup; report reused for verdicts
        samples = []
        for _ in range(MEASURED_RUNS):
            accumulator["seconds"] = 0.0
            report = _certify(backend)
            samples.append(accumulator["seconds"])
    finally:
        solver_class.solve = unbound_solve
    return report, min(samples)


def run_sat_core_comparison():
    reference_report, reference_seconds = _timed_certify("reference", SATSolver)
    array_report, array_seconds = _timed_certify("array", ArraySolver)
    external_report = None
    if find_external_solver() is not None or REQUIRE_EXTERNAL:
        # Parity only: subprocess round-trips dominate external timing,
        # so its seconds say nothing about the core being bridged to.
        external_report = _certify("external")
    return (reference_report, reference_seconds, array_report, array_seconds,
            external_report)


def test_sat_core(benchmark, bench_json):
    (reference_report, reference_seconds, array_report, array_seconds,
     external_report) = benchmark.pedantic(run_sat_core_comparison, rounds=1, iterations=1)

    speedup = reference_seconds / max(array_seconds, 1e-9)
    rows = [("reference", reference_report, reference_seconds),
            ("array", array_report, array_seconds)]
    if external_report is not None:
        rows.append(("external", external_report, float("nan")))

    print(f"\n--- E13: SAT-core backends ({CATALOG_SIZE} checksum pipelines, "
          f"{len(_properties())} properties, cache disabled) ---")
    print(f"{'backend':>10} | {'SAT-core calls':>14} | {'solve CPU (s)':>13} | "
          f"{'total (s)':>9}")
    for label, report, seconds in rows:
        stats = report.statistics
        print(f"{label:>10} | {stats.sat_core_calls:>14} | {seconds:>13.3f} | "
              f"{stats.elapsed_seconds:>9.2f}")
    print(f"{'speedup':>10} | {speedup:>13.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")

    verdicts_match = reference_report.verdicts() == array_report.verdicts() and (
        external_report is None
        or external_report.verdicts() == reference_report.verdicts()
    )
    bench_json(
        "sat_core",
        {
            "catalog_size": CATALOG_SIZE,
            "properties": len(_properties()),
            "reference_solver_seconds": reference_seconds,
            "array_solver_seconds": array_seconds,
            "solver_speedup": speedup,
            "reference_sat_core_calls": reference_report.statistics.sat_core_calls,
            "array_sat_core_calls": array_report.statistics.sat_core_calls,
            "external_checked": int(external_report is not None),
            "verdicts_match": int(verdicts_match),
        },
    )

    # A faster core may never change what is proved — only how fast.
    assert array_report.verdicts() == reference_report.verdicts()
    if external_report is not None:
        assert external_report.verdicts() == reference_report.verdicts()

    # Both in-process cores see the identical query stream.
    assert (array_report.statistics.sat_core_calls
            == reference_report.statistics.sat_core_calls)

    assert speedup >= SPEEDUP_FLOOR, (
        f"array backend only {speedup:.2f}x faster than reference "
        f"({reference_seconds:.3f}s -> {array_seconds:.3f}s solver CPU)"
    )
