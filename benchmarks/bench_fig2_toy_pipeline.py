"""E2 — Figure 2: the two-element toy pipeline E1 -> E2.

Paper: E2 alone has a crashing segment (e3); composed after E1 every path
containing e3 is infeasible, so the pipeline is proved crash-free.
"""

from repro.dataplane import Element, Pipeline
from repro.ir import ElementProgram, ProgramBuilder
from repro.verify import verify_crash_freedom


class ElementE1(Element):
    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        with builder.if_(value >= 0x80):
            builder.store(0, 1, 0)
        builder.emit(0)
        return builder.build()


class ElementE2(Element):
    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        builder.assert_(value < 0x80, "negative input reached E2")
        with builder.if_(value < 10):
            builder.store(0, 1, 10)
        builder.emit(0)
        return builder.build()


def verify_both():
    alone = verify_crash_freedom(
        Pipeline.chain([ElementE2(name="E2")], name="E2-alone"), input_lengths=[1]
    )
    composed = verify_crash_freedom(
        Pipeline.chain([ElementE1(name="E1"), ElementE2(name="E2")], name="E1-E2"),
        input_lengths=[1],
    )
    return alone, composed


def test_fig2_toy_pipeline(benchmark, bench_json):
    alone, composed = benchmark.pedantic(verify_both, rounds=1, iterations=1)

    assert alone.violated and composed.proved
    assert composed.statistics.suspect_segments >= 1
    assert composed.statistics.composed_paths_feasible == 0
    bench_json(
        "fig2_toy_pipeline",
        {
            "alone_verdict": alone.verdict,
            "composed_verdict": composed.verdict,
            "suspect_segments": composed.statistics.suspect_segments,
            "composed_paths_checked": composed.statistics.composed_paths_checked,
            "elapsed_seconds": composed.statistics.elapsed_seconds,
        },
    )

    print("\n--- E2 / Figure 2: toy pipeline decomposition ---")
    print(f"{'paper':<12} e3 is suspect in isolation; infeasible once composed after E1")
    print(f"{'measured':<12} E2 alone: {alone.verdict} "
          f"(counterexample byte {alone.counterexamples[0].packet[0]}), "
          f"pipeline E1->E2: {composed.verdict} "
          f"({composed.statistics.suspect_segments} suspects, "
          f"{composed.statistics.composed_paths_checked} composed paths, "
          f"{composed.statistics.composed_paths_feasible} feasible)")
