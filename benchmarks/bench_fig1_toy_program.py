"""E1 — Figure 1: the toy program's execution tree.

Paper: three feasible paths, a crash for ``in < 0``, and a proof that the
safe paths execute a bounded number of instructions.  This bench
symbolically executes the toy program and prints the same facts.
"""

from repro.dataplane import Element
from repro.ir import ElementProgram, ProgramBuilder
from repro.symbex import SymbexOptions, SymbolicEngine


class ToyProgram(Element):
    """assert in >= 0; out = (in < 10) ? 10 : in — over the first packet byte (signed)."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        builder.assert_(value < 0x80, "negative input")
        with builder.if_(value < 10):
            builder.store(0, 1, 10)
        builder.emit(0)
        return builder.build()


def summarize_toy_program():
    element = ToyProgram(name="fig1")
    # merge=off: this bench pins the paper's unmerged Figure-1 path count.
    engine = SymbolicEngine(SymbexOptions(merge="off"))
    return engine.summarize_element(element.program, 1, element_name=element.name)


def test_fig1_toy_program_paths(benchmark, bench_json):
    summary = benchmark.pedantic(summarize_toy_program, rounds=1, iterations=1)

    # The paper's Figure 1: exactly three feasible paths, one of which crashes.
    assert len(summary.segments) == 3
    assert len(summary.crash_segments) == 1
    assert len(summary.emit_segments) == 2

    bound = max(segment.instructions for segment in summary.emit_segments)
    bench_json(
        "fig1_toy_program",
        {
            "segments": len(summary.segments),
            "crash_segments": len(summary.crash_segments),
            "safe_path_instruction_bound": bound,
            "elapsed_seconds": summary.elapsed_seconds,
        },
    )
    print("\n--- E1 / Figure 1: toy program execution tree ---")
    print(f"{'paper':<12} 3 feasible paths; crash iff in < 0; <=10 instructions on safe paths")
    print(
        f"{'measured':<12} {len(summary.segments)} feasible paths; "
        f"{len(summary.crash_segments)} crash path; "
        f"instruction bound on safe paths = {bound}"
    )
    for segment in summary.segments:
        print(f"  {segment.outcome:5s} instructions={segment.instructions:3d} "
              f"C = {segment.constraint!r}")
