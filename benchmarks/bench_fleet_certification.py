"""E10 — fleet-scale certification: store reuse and multi-core scaling.

The orchestrator layer amortizes Step-1 work across a whole pipeline
catalog (deduplicated shared elements), across runs (the persistent
:class:`SummaryStore`), and across cores (multiprocessing workers).  This
bench certifies a catalog three ways and checks the three claims that
matter:

* **warm store** — re-certifying an unchanged catalog from a warm store
  performs *zero* Step-1 symbolic executions;
* **parallel == serial** — worker sharding changes wall-clock, never
  verdicts or counterexample packets;
* **scaling** — with enough cores, ``workers=4`` beats serial by >= 2x on
  a catalog of >= 8 pipelines (asserted only when the host actually has
  >= 4 CPUs; the speedup is always recorded in ``BENCH_fleet.json``).

Set ``REPRO_BENCH_QUICK=1`` for a CI-smoke-sized run.
"""

import os
import tempfile

from repro.obs.trace import Tracer
from repro.orchestrator import SummaryStore, certify_fleet
from repro.verify import CrashFreedom, destination_reachability
from repro.workloads import fleet_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

# The >= 2x scaling claim is stated for catalogs of >= 8 pipelines, so even
# the quick smoke keeps the catalog at 8 — only the property set shrinks.
CATALOG_SIZE = 8 if QUICK else 10
INPUT_LENGTHS = (24,)
WORKERS = 4


def _properties():
    if QUICK:
        return [CrashFreedom()]
    return [
        CrashFreedom(),
        destination_reachability(
            0x0A000001, exempt_elements={"check_ip", "gw_check", "dec_ttl", "lookup"}
        ),
    ]


def _packets(report):
    """Per-pipeline counterexample packets — the bytes two runs must agree on."""
    return [
        [ce.packet.hex() for result in c.results for ce in result.counterexamples]
        for c in report.certifications
    ]


def run_fleet_comparison():
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as root:
        serial_store = SummaryStore(os.path.join(root, "serial"))
        cold = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            workers=1,
            store=serial_store,
        )
        warm = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            workers=1,
            store=SummaryStore(os.path.join(root, "serial")),
        )
        parallel = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            workers=WORKERS,
            store=SummaryStore(os.path.join(root, "parallel")),
        )
    return cold, warm, parallel


def test_fleet_certification(benchmark, bench_json):
    cold, warm, parallel = benchmark.pedantic(run_fleet_comparison, rounds=1, iterations=1)

    speedup = cold.statistics.elapsed_seconds / max(parallel.statistics.elapsed_seconds, 1e-9)
    print(f"\n--- E10: fleet certification ({CATALOG_SIZE} pipelines, "
          f"{len(_properties())} properties, {os.cpu_count()} CPUs) ---")
    print(f"{'mode':>16} | {'time (s)':>9} | {'step-1 computed':>15} | {'store hits':>10}")
    for label, report in (("serial cold", cold), ("serial warm", warm),
                          (f"parallel x{WORKERS}", parallel)):
        stats = report.statistics
        print(f"{label:>16} | {stats.elapsed_seconds:>9.2f} | "
              f"{stats.summaries_computed:>15} | {stats.store_hits:>10}")
    print(f"{'speedup':>16} | {speedup:>8.2f}x")

    # A separate traced cold run (outside the timed region — the three
    # benchmarked runs above stay tracing-free, so the committed-baseline
    # gate also guards the disabled-tracing overhead).  The span summary
    # rides into BENCH_fleet.json for the archived artifacts.
    run_tracer = Tracer()
    traced = certify_fleet(
        fleet_catalog(CATALOG_SIZE),
        _properties(),
        input_lengths=INPUT_LENGTHS,
        workers=1,
        trace=run_tracer,
    )
    trace_summary = run_tracer.summary()

    bench_json(
        "fleet",
        {
            "catalog_size": CATALOG_SIZE,
            "workers": WORKERS,
            "cpus": os.cpu_count(),
            "element_instances": cold.statistics.element_instances,
            "distinct_summary_jobs": cold.statistics.distinct_summary_jobs,
            "serial_cold_seconds": cold.statistics.elapsed_seconds,
            "serial_warm_seconds": warm.statistics.elapsed_seconds,
            "parallel_seconds": parallel.statistics.elapsed_seconds,
            "speedup_vs_serial": speedup,
            "warm_summaries_computed": warm.statistics.summaries_computed,
            "certified": len(cold.certified),
            "rejected": len(cold.rejected),
            "counterexamples": cold.statistics.counterexamples,
            "paths_explored": cold.statistics.paths_explored,
            "paths_merged": cold.statistics.paths_merged,
            "ites_introduced": cold.statistics.ites_introduced,
            "merge_rejected": cold.statistics.merge_rejected,
            "trace": {
                "spans": trace_summary["spans"],
                "events": trace_summary["events"],
                "phase_seconds": {
                    name: phase["seconds"]
                    for name, phase in trace_summary["phases"].items()
                },
            },
        },
    )

    # Tracing is observation only: verdicts are unchanged, and the traced
    # run's verify-phase span total reconciles with the statistics the
    # verifier reports on its own (the spans cover the same intervals).
    assert traced.verdicts() == cold.verdicts()
    reported_verify_seconds = sum(
        result.statistics.elapsed_seconds
        for certification in traced.certifications
        for result in certification.results
    )
    traced_verify_seconds = trace_summary["phases"]["verify"]["seconds"]
    assert abs(traced_verify_seconds - reported_verify_seconds) <= max(
        0.10 * reported_verify_seconds, 1e-6
    )

    # (a) A warm store serves the entire unchanged catalog: zero Step-1
    # symbolic executions, everything from disk.
    assert warm.statistics.summaries_computed == 0
    assert warm.statistics.store_hits >= cold.statistics.summaries_computed
    assert warm.verdicts() == cold.verdicts()

    # (c) Parallel and serial runs are indistinguishable in their results.
    assert parallel.verdicts() == cold.verdicts()
    assert _packets(parallel) == _packets(cold)

    # Cross-pipeline dedupe did real work: the catalog shares elements.
    assert cold.statistics.distinct_summary_jobs < cold.statistics.element_instances

    # (b) The scaling claim needs actual cores to stand on; on smaller hosts
    # the speedup is recorded above but not asserted.  Quick mode keeps a
    # lighter floor — the workload is smaller and CI runners are shared —
    # but still catches a regression that serializes the pool outright.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        floor = 1.3 if QUICK else 2.0
        assert speedup >= floor, (
            f"workers={WORKERS} speedup {speedup:.2f}x < {floor}x on {cpus} CPUs"
        )
