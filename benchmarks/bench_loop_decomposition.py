"""E7 — §3 Element Verification: loop decomposition into "mini-elements".

Paper: symbexing the IP-options element naively would require "millions
of segments ... months to complete"; instead each loop iteration is
verified in isolation and the results composed, like pipeline elements.
This bench compares the work of naive loop unrolling (segments of the
whole element, growing multiplicatively with the iteration bound) against
the decomposed mini-element analysis (segments of a single iteration,
reused linearly).
"""

from repro.dataplane.elements import IPOptions
from repro.symbex import SymbexOptions, SymbolicEngine, summarize_loop

INPUT_LENGTH = 24
OPTION_BOUNDS = (1, 2, 3, 4)


def measure():
    rows = []
    for max_options in OPTION_BOUNDS:
        element = IPOptions(name=f"opts{max_options}", max_options=max_options)

        engine = SymbolicEngine(SymbexOptions(max_paths=100_000))
        naive = engine.summarize_element(
            element.program,
            INPUT_LENGTH,
            tables=element.state.tables(),
            element_name=element.name,
        )

        loop = element.program.loops()[0]
        decomposed = summarize_loop(element.program, loop, input_length=INPUT_LENGTH)

        rows.append((max_options, naive, decomposed))
    return rows


def test_loop_decomposition(benchmark, bench_json):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_json(
        "loop_decomposition",
        [
            {
                "loop_bound": max_options,
                "naive_segments": len(naive.segments),
                "naive_seconds": naive.elapsed_seconds,
                "mini_element_segments": decomposed.segments_per_iteration,
                "decomposed_segment_count": decomposed.decomposed_segment_count,
            }
            for max_options, naive, decomposed in rows
        ],
    )

    print("\n--- E7: loop decomposition (naive unrolling vs per-iteration mini-element) ---")
    print(f"{'loop bound':>10} | {'naive segments':>14} {'naive time (s)':>14} | "
          f"{'mini-element segments':>21} {'work (segments*t)':>17}")
    naive_counts = []
    for max_options, naive, decomposed in rows:
        naive_counts.append(len(naive.segments))
        print(f"{max_options:>10} | {len(naive.segments):>14} {naive.elapsed_seconds:>14.2f} | "
              f"{decomposed.segments_per_iteration:>21} "
              f"{decomposed.decomposed_segment_count:>17}")

    # Naive unrolling grows with the loop bound; the mini-element analysis is
    # a constant per-iteration cost reused linearly.
    assert naive_counts == sorted(naive_counts)
    assert naive_counts[-1] > naive_counts[0]
    last_decomposed = rows[-1][2]
    assert last_decomposed.segments_per_iteration < naive_counts[-1]
    # A single iteration of the option parser never crashes on its own
    # (the crash suspects come from the header-length trust, checked per path).
    assert last_decomposed.loop_instruction_bound >= last_decomposed.max_instructions_per_iteration
