"""E4 — §3 Preliminary Results: bounded instructions per packet.

Paper: "the longest pipeline ... executes up to about 3600 instructions
per packet, and we also identified the packet that yields this maximum."
This bench computes the IR-instruction bound of each IP-router prefix, the
witness packet for the longest one, and cross-checks the bound against
concrete traffic (including the witness replay).
"""

from repro.dataplane import PipelineDriver
from repro.symbex import SymbexOptions
from repro.verify import PipelineVerifier
from repro.workloads import PacketWorkload, ip_router_pipeline

INPUT_LENGTH = 24
LENGTHS = (1, 2, 3, 4)


def compute_bounds():
    rows = []
    for length in LENGTHS:
        pipeline = ip_router_pipeline(length=length, verify_checksum=False, max_options=8)
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=50_000))
        result = verifier.instruction_bound(
            input_lengths=[INPUT_LENGTH], find_witness=(length == LENGTHS[-1])
        )
        rows.append((length, result))
    return rows


def test_prelim_instruction_bound(benchmark, bench_json):
    rows = benchmark.pedantic(compute_bounds, rounds=1, iterations=1)
    bench_json(
        "prelim_instruction_bound",
        [
            {
                "pipeline_length": length,
                "bound": result.bound,
                "witness_instructions": result.witness_instructions,
                "witness_confirmed": result.witness_confirmed,
            }
            for length, result in rows
        ],
    )

    print("\n--- E4: per-packet instruction bound (paper: ~3600 x86 instructions, "
          "ours: IR instructions) ---")
    print(f"{'pipeline length':>15} | {'bound':>7} | {'witness':>18}")
    bounds = []
    for length, result in rows:
        witness = "-"
        if result.witness_packet is not None:
            witness = f"{result.witness_instructions} instr (replay={result.witness_confirmed})"
        print(f"{length:>15} | {result.bound:>7} | {witness:>18}")
        bounds.append(result.bound)
    # The bound grows monotonically with pipeline length, as in the paper's setup.
    assert bounds == sorted(bounds)

    # No concrete packet exceeds the proved bound for the longest pipeline.
    longest = rows[-1][1]
    driver = PipelineDriver(ip_router_pipeline(length=LENGTHS[-1], verify_checksum=False, max_options=8))
    observed_max = 0
    for packet in PacketWorkload(valid=30, malformed=10, random_blobs=10, seed=4):
        trace = driver.inject(packet[:INPUT_LENGTH].ljust(INPUT_LENGTH, b"\x00"))
        observed_max = max(observed_max, trace.total_instructions)
    print(f"{'concrete traffic max':>23} = {observed_max} <= proved bound {longest.bound}")
    assert observed_max <= longest.bound
