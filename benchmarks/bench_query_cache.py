"""E12 — the query-optimization layer: slicing + tiered query caching.

Certifies the 8-pipeline fleet catalog three ways and checks the three
claims the layer is built on:

* **fewer SAT calls** — with independence slicing and the verdict/model/
  unsat-core cache enabled (the default), the run invokes the CDCL core
  >= 2x less often than the optimization-disabled mode, with *identical*
  certification verdicts;
* **warm L3** — re-certifying the unchanged catalog against a warm
  summary store *and* query store performs zero symbolic executions and
  **zero SAT-core calls**: every solver question is answered from the
  persistent tier, the solver-level analogue of the zero-symbex warm
  path;
* **verdict stability** — all three runs certify the same pipelines.

The counters are deterministic for the fixed catalog (serial runs, no
randomness in the solver), so the baseline pins them tightly.  Set
``REPRO_BENCH_QUICK=1`` for the CI-smoke-sized run (same catalog, single
property — the quick numbers are the pinned ones).
"""

import os
import tempfile

from repro.orchestrator import QueryStore, SummaryStore, certify_fleet
from repro.symbex.engine import SymbexOptions
from repro.verify import CrashFreedom, destination_reachability
from repro.workloads import fleet_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: The tentpole claim is stated for the 8-pipeline fleet catalog.
CATALOG_SIZE = 8
INPUT_LENGTHS = (24,)


def _properties():
    if QUICK:
        return [CrashFreedom()]
    return [
        CrashFreedom(),
        destination_reachability(
            0x0A000001, exempt_elements={"check_ip", "gw_check", "dec_ttl", "lookup"}
        ),
    ]


def run_query_cache_comparison():
    with tempfile.TemporaryDirectory(prefix="repro-bench-qcache-") as root:
        disabled = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            options=SymbexOptions(query_opt=False),
        )
        optimized = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            store=SummaryStore(os.path.join(root, "summaries")),
            query_store=QueryStore(os.path.join(root, "queries")),
        )
        warm = certify_fleet(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            store=SummaryStore(os.path.join(root, "summaries")),
            query_store=QueryStore(os.path.join(root, "queries")),
        )
    return disabled, optimized, warm


def test_query_cache(benchmark, bench_json):
    disabled, optimized, warm = benchmark.pedantic(
        run_query_cache_comparison, rounds=1, iterations=1
    )

    reduction = disabled.statistics.sat_core_calls / max(
        optimized.statistics.sat_core_calls, 1
    )
    print(f"\n--- E12: query-optimization layer ({CATALOG_SIZE} pipelines, "
          f"{len(_properties())} properties) ---")
    print(f"{'mode':>16} | {'SAT-core calls':>14} | {'qcache hits':>11} | {'time (s)':>8}")
    for label, report in (("opt disabled", disabled), ("opt enabled", optimized),
                          ("warm L3", warm)):
        stats = report.statistics
        print(f"{label:>16} | {stats.sat_core_calls:>14} | "
              f"{stats.qcache_hits:>11} | {stats.elapsed_seconds:>8.2f}")
    print(f"{'reduction':>16} | {reduction:>13.2f}x")

    bench_json(
        "query_cache",
        {
            "catalog_size": CATALOG_SIZE,
            "properties": len(_properties()),
            "disabled_sat_core_calls": disabled.statistics.sat_core_calls,
            "optimized_sat_core_calls": optimized.statistics.sat_core_calls,
            "sat_core_reduction": reduction,
            "optimized_qcache_hits": optimized.statistics.qcache_hits,
            "warm_sat_core_calls": warm.statistics.sat_core_calls,
            "warm_summaries_computed": warm.statistics.summaries_computed,
            "verdicts_match": int(
                disabled.verdicts() == optimized.verdicts() == warm.verdicts()
            ),
            "disabled_seconds": disabled.statistics.elapsed_seconds,
            "optimized_seconds": optimized.statistics.elapsed_seconds,
            "warm_seconds": warm.statistics.elapsed_seconds,
        },
    )

    # The optimization may never change what is proved — only how.
    assert optimized.verdicts() == disabled.verdicts()
    assert warm.verdicts() == disabled.verdicts()

    # >= 2x fewer CDCL invocations on the same catalog and properties.
    assert reduction >= 2.0, (
        f"query optimization reduced SAT-core calls only {reduction:.2f}x "
        f"({disabled.statistics.sat_core_calls} -> "
        f"{optimized.statistics.sat_core_calls})"
    )

    # Warm L3: zero symbolic execution and zero SAT-core calls, matching
    # the summary store's 0-symbex warm path one layer down.
    assert warm.statistics.summaries_computed == 0
    assert warm.statistics.sat_core_calls == 0
