"""E9 — §1/§2: configuration-specific reachability.

Paper: "any packet with destination IP address X will never be dropped
unless it is malformed" — a property that is only meaningful for a
specific forwarding/filtering configuration.  This bench checks the
property against two configurations of the same pipeline: one where the
route to X exists (proved, once the TTL precondition is stated) and one
where it is missing (violated, with the concrete packet as evidence).
"""

from repro import smt
from repro.dataplane import Pipeline
from repro.dataplane.elements import CheckIPHeader, DecIPTTL, IPLookup
from repro.symbex import SymbexOptions
from repro.verify import PipelineVerifier, Reachability, destination_reachability

INPUT_LENGTH = 24
DESTINATION = 0x0A010203  # 10.1.2.3


def build_pipeline(routes):
    return Pipeline.chain(
        [
            CheckIPHeader(name="chk", verify_checksum=False),
            IPLookup(routes, name="rt"),
            DecIPTTL(name="ttl"),
        ],
        name="reachability",
    )


def well_formed_predicate(packet_bytes):
    """Destination is X and the packet is not about to expire (TTL > 1)."""
    base = destination_reachability(DESTINATION).input_predicate(packet_bytes)
    ttl = smt.ZeroExt(56, packet_bytes[8])
    return smt.And(base, smt.UGT(ttl, smt.BitVecVal(1, 64)))


def run_both_configurations():
    prop = Reachability(
        input_predicate=well_formed_predicate,
        exempt_elements={"chk"},
        description="well-formed packets to 10.1.2.3 are never dropped",
    )
    good = PipelineVerifier(
        build_pipeline([("10.0.0.0/8", 0), ("0.0.0.0/0", 0)]),
        options=SymbexOptions(max_paths=50_000),
    ).verify(prop, input_lengths=[INPUT_LENGTH])
    bad = PipelineVerifier(
        build_pipeline([("192.168.0.0/16", 0)]),
        options=SymbexOptions(max_paths=50_000),
    ).verify(prop, input_lengths=[INPUT_LENGTH])
    return good, bad


def test_reachability(benchmark, bench_json):
    good, bad = benchmark.pedantic(run_both_configurations, rounds=1, iterations=1)
    bench_json(
        "reachability",
        {
            "with_route_verdict": good.verdict,
            "without_route_verdict": bad.verdict,
            "counterexamples": len(bad.counterexamples),
            "elapsed_seconds": good.statistics.elapsed_seconds
            + bad.statistics.elapsed_seconds,
        },
    )

    print("\n--- E9: reachability for destination 10.1.2.3 (configuration-specific) ---")
    print(f"with a covering route   : {good.verdict}")
    print(f"with the route missing  : {bad.verdict}")
    if bad.counterexamples:
        counterexample = bad.counterexamples[0]
        print(f"  evidence: dropped at {counterexample.violating_element} "
              f"({counterexample.detail!r}), packet {counterexample.packet.hex()}, "
              f"replay confirmed: {counterexample.confirmed_by_replay}")

    assert good.proved, good.summary()
    assert bad.violated
    assert any(c.violating_element == "rt" for c in bad.counterexamples)
