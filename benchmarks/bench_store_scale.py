"""E12 — fleet-scale store tier: the backends race at 1,000 pipelines.

The store-backend seam (:mod:`repro.orchestrator.backends`) exists for
exactly one scale: a catalog large enough that per-pipeline store traffic
— verdict records, fingerprint probes, L3 query entries — would dominate
a JSON one-file-per-entry layout.  This bench certifies a 1,000-pipeline
catalog (:func:`repro.workloads.store_scale_catalog`: every pipeline a
distinct fingerprint, all of them built from six shared element
configurations, so Step 1 stays six jobs) twice per backend — cold, then
a warm delta re-certification — and checks the claims the store tier is
sold on:

* **differential** — both backends produce identical verdicts and
  identical hit/miss/put statistics on every tier; the backend changes
  where bytes live, never what the orchestrator sees;
* **store does not dominate** — on the cold run, store I/O stays under
  the time spent actually verifying (both backends);
* **batched beats per-file when warm** — SQLite's warm store I/O beats
  JSON's by >= 3x at full scale (>= 1.5x in quick mode, where the
  catalog is too small to amortize the constant costs);
* **delta mode at scale** — the warm run reuses every one of the 1,000
  verdicts and performs zero symbolic executions, on both backends.

A raw entry-traffic microbenchmark (N writes + N reads through a
:class:`QueryStore` on each backend) rides along in the JSON output so
the per-entry costs are visible separately from the end-to-end run.

Set ``REPRO_BENCH_QUICK=1`` for a CI-smoke-sized run.
"""

import os
import tempfile

from repro.obs.trace import clock
from repro.orchestrator import QueryStore, SummaryStore, VerdictStore, certify_fleet
from repro.verify import CrashFreedom
from repro.workloads import store_scale_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CATALOG_SIZE = 150 if QUICK else 1000
INPUT_LENGTHS = (24,)
#: The catalog is chains over six shared element configurations, so a
#: cold run at any catalog size performs exactly six symbolic executions.
DISTINCT_JOBS = 6
BACKENDS = ("json", "sqlite")
#: Warm store-I/O advantage the SQLite backend must keep over JSON files.
WARM_IO_FLOOR = 1.5 if QUICK else 3.0
#: Raw microbenchmark entry count.
RAW_ENTRIES = 400 if QUICK else 2000


def _open_stores(root, backend):
    return (
        SummaryStore(os.path.join(root, "summaries"), backend=backend),
        VerdictStore(os.path.join(root, "verdicts"), backend=backend),
        QueryStore(os.path.join(root, "queries"), backend=backend),
    )


def _store_io(*stores):
    return sum(store.statistics.io_seconds for store in stores)


def _tier_counters(*stores):
    """The backend-independent store traffic: hits/misses/puts per tier.

    ``io_seconds`` (the thing the backends differ on), ``bytes_written``
    (layout overhead differs) and ``busy_retries`` (SQLite-only) are
    deliberately excluded — everything left must match across backends.
    """
    return [
        {
            "hits": store.statistics.hits,
            "misses": store.statistics.misses,
            "puts": store.statistics.puts,
            "quarantined": store.statistics.quarantined,
        }
        for store in stores
    ]


def run_backend(backend):
    """Cold + warm certification of the catalog on one backend."""
    with tempfile.TemporaryDirectory(prefix=f"repro-bench-store-{backend}-") as root:
        cold_stores = _open_stores(root, backend)
        started = clock()
        cold = certify_fleet(
            store_scale_catalog(CATALOG_SIZE),
            [CrashFreedom()],
            input_lengths=INPUT_LENGTHS,
            store=cold_stores[0],
            verdict_store=cold_stores[1],
            query_store=cold_stores[2],
        )
        cold_seconds = clock() - started
        cold_io = _store_io(*cold_stores)
        for store in cold_stores:
            store.close()

        # Fresh store objects over the same roots: the warm run pays real
        # (re)open and read costs, exactly like a new CI job or operator
        # invocation would.
        warm_stores = _open_stores(root, backend)
        started = clock()
        warm = certify_fleet(
            store_scale_catalog(CATALOG_SIZE),
            [CrashFreedom()],
            input_lengths=INPUT_LENGTHS,
            store=warm_stores[0],
            verdict_store=warm_stores[1],
            query_store=warm_stores[2],
        )
        warm_seconds = clock() - started
        warm_io = _store_io(*warm_stores)

        verify_seconds = sum(
            result.statistics.elapsed_seconds
            for certification in cold.certifications
            for result in certification.results
        )
        return {
            "backend": backend,
            "verdicts": cold.verdicts(),
            "cold_counters": _tier_counters(*cold_stores),
            "cold": {
                "seconds": cold_seconds,
                "store_io_seconds": cold_io,
                "store_fraction": cold_io / max(cold_seconds, 1e-9),
                "verify_seconds": verify_seconds,
                "summaries_computed": cold.statistics.summaries_computed,
                "distinct_summary_jobs": cold.statistics.distinct_summary_jobs,
                "certified": len(cold.certified),
                "rejected": len(cold.rejected),
            },
            "warm": {
                "seconds": warm_seconds,
                "store_io_seconds": warm_io,
                "verdicts_reused": warm.statistics.verdicts_reused,
                "summaries_computed": warm.statistics.summaries_computed,
            },
        }


def run_raw_traffic(backend):
    """Raw per-entry store traffic: N payload writes, then N reads back."""
    payload = {"verdict": "unsat", "core": list(range(24)), "v": 1}
    with tempfile.TemporaryDirectory(prefix=f"repro-bench-raw-{backend}-") as root:
        store = QueryStore(root, backend=backend)
        started = clock()
        for index in range(RAW_ENTRIES):
            store.save_payload(f"{index:064x}", payload)
        store.flush()
        write_seconds = clock() - started
        started = clock()
        for index in range(RAW_ENTRIES):
            assert store.load_payload(f"{index:064x}") is not None
        store.flush()
        read_seconds = clock() - started
        store.close()
    return {"write_seconds": write_seconds, "read_seconds": read_seconds}


def run_comparison():
    return {backend: run_backend(backend) for backend in BACKENDS}


def test_store_scale(benchmark, bench_json):
    runs = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    raw = {backend: run_raw_traffic(backend) for backend in BACKENDS}

    json_run, sqlite_run = runs["json"], runs["sqlite"]
    warm_io_ratio = json_run["warm"]["store_io_seconds"] / max(
        sqlite_run["warm"]["store_io_seconds"], 1e-9
    )
    warm_wall_ratio = json_run["warm"]["seconds"] / max(
        sqlite_run["warm"]["seconds"], 1e-9
    )

    print(f"\n--- E12: store scale ({CATALOG_SIZE} pipelines, "
          f"{DISTINCT_JOBS} distinct Step-1 jobs) ---")
    print(f"{'backend':>8} | {'cold (s)':>9} | {'cold io':>8} | {'io frac':>7} | "
          f"{'warm (s)':>9} | {'warm io':>8}")
    for backend in BACKENDS:
        run = runs[backend]
        print(f"{backend:>8} | {run['cold']['seconds']:>9.2f} | "
              f"{run['cold']['store_io_seconds']:>8.3f} | "
              f"{run['cold']['store_fraction']:>7.1%} | "
              f"{run['warm']['seconds']:>9.2f} | "
              f"{run['warm']['store_io_seconds']:>8.3f}")
    print(f"warm store-io ratio json/sqlite: {warm_io_ratio:.2f}x "
          f"(wall {warm_wall_ratio:.2f}x)")

    bench_json(
        "store_scale",
        {
            "catalog_size": CATALOG_SIZE,
            "json": {key: json_run[key] for key in ("cold", "warm")},
            "sqlite": {key: sqlite_run[key] for key in ("cold", "warm")},
            "warm_store_io_ratio": warm_io_ratio,
            "warm_wall_ratio": warm_wall_ratio,
            "raw": raw,
        },
    )

    # Differential: the backend changes where bytes live, never verdicts
    # or tier traffic.  Every pipeline certifies identically, and the
    # hit/miss/put counters agree tier by tier.
    assert sqlite_run["verdicts"] == json_run["verdicts"]
    assert sqlite_run["cold_counters"] == json_run["cold_counters"]

    for backend in BACKENDS:
        run = runs[backend]
        # The catalog shares six element configurations across the whole
        # fleet: a cold run symbolically executes exactly those.
        assert run["cold"]["distinct_summary_jobs"] == DISTINCT_JOBS
        assert run["cold"]["summaries_computed"] == DISTINCT_JOBS
        assert run["cold"]["certified"] == CATALOG_SIZE
        assert run["cold"]["rejected"] == 0
        # Delta mode at scale: the warm run serves every verdict from the
        # store and re-executes nothing.
        assert run["warm"]["verdicts_reused"] == CATALOG_SIZE
        assert run["warm"]["summaries_computed"] == 0
        # The store tier must not dominate the cold run: I/O stays under
        # the non-store (symbex + composition + solver) time.
        non_store = run["cold"]["seconds"] - run["cold"]["store_io_seconds"]
        assert run["cold"]["store_io_seconds"] < non_store, (
            f"{backend}: store I/O {run['cold']['store_io_seconds']:.3f}s dominates "
            f"the cold run ({run['cold']['seconds']:.3f}s total)"
        )

    # The point of the batched backend: warm fleet re-certification store
    # traffic is >= 3x cheaper than per-file JSON (>= 1.5x in quick mode).
    assert warm_io_ratio >= WARM_IO_FLOOR, (
        f"sqlite warm store I/O only {warm_io_ratio:.2f}x faster than json "
        f"(need >= {WARM_IO_FLOOR}x)"
    )
