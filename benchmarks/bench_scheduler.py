"""E13 — the persistent fleet scheduler vs the wave-synchronous pool.

The scheduler (:mod:`repro.orchestrator.scheduler`) is sold on four
claims, and this bench checks each one:

* **differential** — the scheduled run's verdicts and work counters are
  identical to the serial and wave paths on the full catalog; the
  scheduler reorders work, it never changes it.  Checked unconditionally.
* **one pool, no churn** — exactly one pool is forked per run
  (``pools_forked == 1``) and workers stay busy: parent-measured idle
  time stays under 20% of the pool's worker-lifetime.  The idle bound is
  asserted on hosts with >= 4 CPUs (elsewhere the workers time-slice one
  core and "idle" measures the kernel scheduler, not ours).
* **overlap** — on the straggler catalog (one deliberately heavy Step-1
  element in front of quick pipelines) some Step-2 verification *starts*
  before the last Step-1 summary *ends*.  The wave path structurally
  cannot do this; asserted on hosts with >= 2 CPUs.
* **risk first** — with a seeded high-churn/violation history,
  ``--schedule risk`` reaches the risky pipeline's verdict before >= 90%
  of the unchanged catalog.  Single-worker dispatch is deterministic, so
  this is asserted everywhere and pinned exactly in the baseline.

Wall-clock speedup over the wave path is reported (and asserted >= 1.0
on >= 4 CPUs) but deliberately not pinned in the committed baseline —
it is the one metric here that measures the host, not the code.

Set ``REPRO_BENCH_QUICK=1`` for a CI-smoke-sized run.
"""

import os
import tempfile

from repro.obs.trace import Tracer, active, clock
from repro.orchestrator import (
    RiskHistory,
    RiskStore,
    SummaryStore,
    certify_fleet,
    run_scheduled,
)
from repro.orchestrator.scheduler import OFF, RISK, SUMMARY, VERIFY
from repro.symbex.engine import SymbexOptions
from repro.verify import CrashFreedom
from repro.workloads import store_scale_catalog, straggler_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
CPUS = os.cpu_count() or 1

CATALOG_SIZE = 150 if QUICK else 1000
INPUT_LENGTHS = (24,)
#: The catalog is chains over six shared element configurations, so a
#: cold run at any catalog size performs exactly six symbolic executions.
DISTINCT_JOBS = 6
WORKERS = max(2, min(4, CPUS))
RISK_CATALOG_SIZE = 30 if QUICK else 100
STRAGGLER_PIPELINES = 6
#: 2^branches Step-1 paths for the heavy element — sized to dominate the
#: quick pipelines without brushing the default 4096-path budget.
STRAGGLER_BRANCHES = 9 if QUICK else 11
#: Ceiling on parent-measured worker idle time per worker-lifetime.
IDLE_FRACTION_CEILING = 0.20
#: The risky pipeline must land before this share of the bulk catalog.
RISK_PREEMPTION_FLOOR = 0.90


def _statistics_row(report):
    return {
        "certified": len(report.certified),
        "rejected": len(report.rejected),
        "distinct_summary_jobs": report.statistics.distinct_summary_jobs,
        "summaries_computed": report.statistics.summaries_computed,
        "solver_checks": report.statistics.solver_checks,
    }


def run_serial():
    started = clock()
    report = certify_fleet(
        store_scale_catalog(CATALOG_SIZE), [CrashFreedom()], input_lengths=INPUT_LENGTHS
    )
    return {"seconds": clock() - started, "report": report}


def run_wave():
    """The legacy path: wave-synchronous discovery over one shared pool."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-wave-") as root:
        started = clock()
        report = certify_fleet(
            store_scale_catalog(CATALOG_SIZE),
            [CrashFreedom()],
            input_lengths=INPUT_LENGTHS,
            workers=WORKERS,
            store=SummaryStore(root),
            schedule=OFF,
        )
        return {"seconds": clock() - started, "report": report}


def run_scheduler():
    """The scheduler, driven directly so the fleet CPU clamp cannot shrink it."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-sched-") as root:
        catalog = store_scale_catalog(CATALOG_SIZE)
        started = clock()
        run = run_scheduled(
            catalog,
            [CrashFreedom()],
            INPUT_LENGTHS,
            SymbexOptions(),
            workers=WORKERS,
            store=SummaryStore(root),
        )
        seconds = clock() - started
    verdicts = [
        (catalog[index].name, result.property_name, result.verdict)
        for index in sorted(run.step2)
        for result in run.step2[index][0].results
    ]
    stats = run.statistics
    lifetime = max(stats.pool_lifetime_seconds * stats.workers, 1e-9)
    return {
        "seconds": seconds,
        "verdicts": verdicts,
        "pipelines": len(run.step2),
        "distinct_summary_jobs": len(run.summaries),
        "summaries_computed": run.computed,
        "tasks_dispatched": stats.tasks_dispatched,
        "pools_forked": stats.pools_forked,
        "workers_spawned": stats.workers_spawned,
        "workers_crashed": stats.workers_crashed,
        "incremental_merges": stats.incremental_merges,
        "max_queue_depth": stats.max_queue_depth,
        "worker_idle_seconds": stats.worker_idle_seconds,
        "worker_busy_seconds": stats.worker_busy_seconds,
        "idle_fraction": stats.worker_idle_seconds / lifetime,
    }


def run_straggler_overlap():
    """Step-2 spans must start while the heavy Step-1 summary still runs."""
    catalog = straggler_catalog(
        STRAGGLER_PIPELINES, straggler_branches=STRAGGLER_BRANCHES
    )
    options = SymbexOptions(trace=True)
    with tempfile.TemporaryDirectory(prefix="repro-bench-straggle-") as root:
        with active(Tracer()) as t:
            run = run_scheduled(
                catalog,
                [CrashFreedom()],
                (64,),
                options,
                workers=2,
                store=SummaryStore(root),
            )
            spans = [s for s in t.spans() if s.name == "scheduler.task"]
    assert len(run.step2) == len(catalog)
    summaries = [s for s in spans if s.args.get("kind") == SUMMARY]
    verifies = [s for s in spans if s.args.get("kind") == VERIFY]
    last_summary_end = max(s.end for s in summaries)
    first_verify_start = min(s.start for s in verifies)
    return {
        "summary_tasks": len(summaries),
        "verify_tasks": len(verifies),
        "overlap_seconds": last_summary_end - first_verify_start,
        "overlapped": first_verify_start < last_summary_end,
    }


def run_risk_priority():
    """A seeded risky pipeline's verdict must preempt the bulk catalog."""
    catalog = store_scale_catalog(RISK_CATALOG_SIZE)
    risky_index = RISK_CATALOG_SIZE - 1  # worst case: last in catalog order
    with tempfile.TemporaryDirectory(prefix="repro-bench-risk-") as root:
        history = RiskHistory(RiskStore(os.path.join(root, "risk")))
        history.seed(catalog[risky_index].name, churn=5, violations=1)
        # One worker: dispatch follows the priority heap deterministically.
        run = run_scheduled(
            catalog,
            [CrashFreedom()],
            INPUT_LENGTHS,
            SymbexOptions(),
            workers=1,
            store=SummaryStore(os.path.join(root, "store")),
            schedule=RISK,
            risk_history=history,
        )
    position = run.verify_order.index(risky_index)
    others = len(catalog) - 1
    return {
        "risky_position": position,
        "preempted_fraction": (others - position) / others,
    }


def test_scheduler(benchmark, bench_json):
    serial = benchmark.pedantic(run_serial, rounds=1, iterations=1)
    wave = run_wave()
    scheduled = run_scheduler()
    overlap = run_straggler_overlap()
    risk = run_risk_priority()

    # Differential: verdicts and work counters identical across all paths.
    assert scheduled["verdicts"] == serial["report"].verdicts()
    assert wave["report"].verdicts() == serial["report"].verdicts()
    assert scheduled["distinct_summary_jobs"] == DISTINCT_JOBS
    assert scheduled["summaries_computed"] == serial["report"].statistics.summaries_computed
    # One pool, exact task accounting: every Step-1 job and every pipeline
    # dispatched exactly once on a crash-free cold run.
    assert scheduled["pools_forked"] == 1
    assert scheduled["workers_crashed"] == 0
    assert scheduled["tasks_dispatched"] == DISTINCT_JOBS + CATALOG_SIZE
    assert scheduled["incremental_merges"] == scheduled["tasks_dispatched"]
    # Risk preemption is deterministic (single worker) — assert everywhere.
    assert risk["preempted_fraction"] >= RISK_PREEMPTION_FLOOR

    speedup = wave["seconds"] / max(scheduled["seconds"], 1e-9)
    if CPUS >= 2:
        assert overlap["overlapped"], (
            "no Step-2 task started before the last Step-1 summary ended"
        )
    if CPUS >= 4:
        assert scheduled["idle_fraction"] < IDLE_FRACTION_CEILING, (
            f"workers idled {scheduled['idle_fraction']:.1%} of the pool lifetime"
        )
        assert speedup >= 1.0, (
            f"scheduler ({scheduled['seconds']:.2f}s) lost to the wave path "
            f"({wave['seconds']:.2f}s)"
        )

    print(f"\n--- E13: fleet scheduler ({CATALOG_SIZE} pipelines, "
          f"{WORKERS} workers, {CPUS} cpus) ---")
    print(f"{'path':>10} | {'wall (s)':>9}")
    for label, row in (("serial", serial), ("wave", wave), ("scheduler", scheduled)):
        print(f"{label:>10} | {row['seconds']:>9.2f}")
    print(f"speedup over wave: {speedup:.2f}x  "
          f"idle fraction: {scheduled['idle_fraction']:.1%}  "
          f"overlap: {overlap['overlapped']} "
          f"({overlap['overlap_seconds']:.3f}s)  "
          f"risk preemption: {risk['preempted_fraction']:.1%}")

    bench_json(
        "scheduler",
        {
            "catalog_size": CATALOG_SIZE,
            "workers": WORKERS,
            "cpus": CPUS,
            "serial": {"seconds": serial["seconds"],
                       **_statistics_row(serial["report"])},
            "wave": {"seconds": wave["seconds"], **_statistics_row(wave["report"])},
            "scheduler": {
                key: value for key, value in scheduled.items() if key != "verdicts"
            },
            "speedup_over_wave": speedup,
            "overlap": overlap,
            "risk": risk,
        },
    )
