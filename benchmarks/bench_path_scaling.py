"""E6 — §3 path-count argument: 2^(k*n) whole-pipeline paths vs k*2^n per-element segments.

Paper: "If each element has n branches and roughly 2^n paths, a pipeline
of k such elements has roughly 2^(k*n) paths.  Verifying each element in
isolation ... cuts the number of paths that need to be explored roughly
from 2^(k*n) to k*2^n."
"""

from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, MonolithicVerifier, PipelineVerifier
from repro.workloads import synthetic_pipeline

INPUT_LENGTH = 10
CONFIGURATIONS = [(1, 2), (2, 2), (3, 2), (1, 3), (2, 3), (3, 3)]  # (k elements, n branches)


def measure_path_counts():
    rows = []
    for elements, branches in CONFIGURATIONS:
        pipeline = synthetic_pipeline(elements=elements, branches_per_element=branches)

        # merge=off throughout: this bench pins the paper's *unmerged* path
        # counts (state merging collapses the synthetic branches entirely).
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=100_000, merge="off"))
        summaries = verifier.element_summaries(INPUT_LENGTH)
        decomposed_segments = sum(len(summary.segments) for _e, summary in summaries.values())

        baseline = MonolithicVerifier(
            pipeline, options=SymbexOptions(max_paths=100_000, max_seconds=120, merge="off")
        )
        result = baseline.verify(CrashFreedom(), input_length=INPUT_LENGTH)
        monolithic_paths = getattr(result.statistics, "pipeline_paths_explored", 0)

        rows.append((elements, branches, decomposed_segments, monolithic_paths))
    return rows


def test_path_scaling(benchmark, bench_json):
    rows = benchmark.pedantic(measure_path_counts, rounds=1, iterations=1)
    bench_json(
        "path_scaling",
        [
            {
                "elements": elements,
                "branches": branches,
                "decomposed_segments": decomposed,
                "monolithic_paths": monolithic,
            }
            for elements, branches, decomposed, monolithic in rows
        ],
    )

    print("\n--- E6: path-count scaling (paper: k*2^n vs 2^(k*n)) ---")
    print(f"{'k':>2} {'n':>2} | {'k*2^n (predicted)':>18} {'decomposed (measured)':>22} | "
          f"{'2^(k*n) (predicted)':>20} {'monolithic (measured)':>22}")
    for elements, branches, decomposed, monolithic in rows:
        predicted_decomposed = elements * 2**branches
        predicted_monolithic = 2 ** (elements * branches)
        print(f"{elements:>2} {branches:>2} | {predicted_decomposed:>18} {decomposed:>22} | "
              f"{predicted_monolithic:>20} {monolithic:>22}")
        assert decomposed == predicted_decomposed
        assert monolithic == predicted_monolithic
