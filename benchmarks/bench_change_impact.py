"""E11 — change-impact re-certification: work proportional to the diff.

The continuous-verification claim: after PR 2's warm summary store made
the *unchanged-catalog* case free, this bench measures the realistic case
— one routing-table change in a warm N-pipeline catalog — and checks the
three claims that matter:

* **only the impacted pipeline re-verifies** — the delta run performs
  exactly one Step-1 symbolic execution (the changed lookup element) and
  exactly the solver checks of the impacted pipeline alone: zero symbex
  and zero solver checks for the N-1 unimpacted pipelines;
* **delta verdicts == cold full pass** — reusing verdict records never
  changes an answer;
* **the delta run is proportionally faster** than re-certifying the
  whole catalog cold.

Set ``REPRO_BENCH_QUICK=1`` for a CI-smoke-sized run.
"""

import os
import tempfile

from repro.orchestrator import (
    DELTA_REUSED,
    FRESH,
    SummaryStore,
    VerdictStore,
    certify_fleet,
    recertify,
)
from repro.verify import CrashFreedom, destination_reachability
from repro.workloads import churned_fleet_catalog, fleet_catalog

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CATALOG_SIZE = 8 if QUICK else 10
INPUT_LENGTHS = (24,)
MUTATION = "routes"  # one router's forwarding-table contents change


def _properties():
    if QUICK:
        return [CrashFreedom()]
    return [
        CrashFreedom(),
        destination_reachability(
            0x0A000001, exempt_elements={"check_ip", "gw_check", "dec_ttl", "lookup"}
        ),
    ]


def run_change_impact():
    with tempfile.TemporaryDirectory(prefix="repro-bench-impact-") as root:
        summary_store = SummaryStore(os.path.join(root, "summaries"))
        verdict_store = VerdictStore(os.path.join(root, "verdicts"))
        cold = recertify(
            fleet_catalog(CATALOG_SIZE),
            _properties(),
            input_lengths=INPUT_LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )
        mutated = churned_fleet_catalog(CATALOG_SIZE, MUTATION)
        delta = recertify(
            mutated,
            _properties(),
            baseline=cold.manifest,
            input_lengths=INPUT_LENGTHS,
            store=summary_store,
            verdict_store=verdict_store,
        )
        # The impacted pipeline alone, against the same warm summary store:
        # the work floor a perfect delta run cannot go below.
        impacted_name = delta.impact.impacted[0].name
        solo = certify_fleet(
            [p for p in churned_fleet_catalog(CATALOG_SIZE, MUTATION) if p.name == impacted_name],
            _properties(),
            input_lengths=INPUT_LENGTHS,
            store=summary_store,
        )
    # A cold full pass over the mutated catalog (fresh everything): the
    # answer key the delta run must reproduce.
    full = certify_fleet(
        churned_fleet_catalog(CATALOG_SIZE, MUTATION), _properties(), input_lengths=INPUT_LENGTHS
    )
    return cold, delta, solo, full


def test_change_impact(benchmark, bench_json):
    cold, delta, solo, full = benchmark.pedantic(run_change_impact, rounds=1, iterations=1)

    reused = sum(1 for c in delta.report.certifications if c.provenance == DELTA_REUSED)
    fresh = sum(1 for c in delta.report.certifications if c.provenance == FRESH)
    unimpacted_solver_checks = (
        delta.report.statistics.solver_checks - solo.statistics.solver_checks
    )
    speedup = cold.report.statistics.elapsed_seconds / max(
        delta.report.statistics.elapsed_seconds, 1e-9
    )

    print(f"\n--- E11: change impact ({CATALOG_SIZE} pipelines, {MUTATION} mutation, "
          f"{len(_properties())} properties) ---")
    print(f"{'mode':>12} | {'time (s)':>9} | {'symbex':>6} | {'solver':>6} | {'reused':>6}")
    for label, report in (("cold", cold.report), ("delta", delta.report)):
        stats = report.statistics
        print(f"{label:>12} | {stats.elapsed_seconds:>9.3f} | {stats.summaries_computed:>6} | "
              f"{stats.solver_checks:>6} | {stats.verdicts_reused:>6}")
    print(f"{'speedup':>12} | {speedup:>8.2f}x")

    bench_json(
        "change_impact",
        {
            "catalog_size": CATALOG_SIZE,
            "mutation": MUTATION,
            "cold_seconds": cold.report.statistics.elapsed_seconds,
            "delta_seconds": delta.report.statistics.elapsed_seconds,
            "speedup_delta_vs_cold": speedup,
            "reused_pipelines": reused,
            "fresh_pipelines": fresh,
            "delta_summaries_computed": delta.report.statistics.summaries_computed,
            "delta_solver_checks": delta.report.statistics.solver_checks,
            "unimpacted_solver_checks": unimpacted_solver_checks,
            "verdicts_match_full_pass": int(delta.report.verdicts() == full.verdicts()),
        },
    )

    # (a) Exactly one pipeline is impacted; everything else reuses its record.
    assert fresh == 1 and reused == CATALOG_SIZE - 1

    # The unimpacted pipelines cost zero symbolic executions and zero
    # solver checks: the delta run's only Step-1 computation is the changed
    # lookup element, and its solver work equals the impacted pipeline's own.
    assert delta.report.statistics.summaries_computed == 1
    assert unimpacted_solver_checks == 0

    # (b) Delta-mode verdicts are identical to a cold full pass.
    assert delta.report.verdicts() == full.verdicts()

    # (c) Re-certification is proportional to the diff, not the fleet.
    assert speedup > 1.5, f"delta run only {speedup:.2f}x faster than cold"
