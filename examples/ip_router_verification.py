#!/usr/bin/env python3
"""Reproduce the paper's preliminary results on the Click-style IP router.

For pipelines of increasing length drawn from the IP-router element set
(§3 "Preliminary Results") this example:

* proves crash freedom with the decomposed verifier,
* computes the per-packet instruction bound and the packet attaining it,
* runs the monolithic (whole-pipeline) baseline under a budget and shows
  where it stops completing — the "did not finish within 12 hours" shape.
"""

import time

from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, MonolithicVerifier, PipelineVerifier
from repro.workloads import ip_router_pipeline

INPUT_LENGTH = 24
MONOLITHIC_BUDGET_SECONDS = 20.0


def main() -> None:
    print(f"{'len':>3} | {'decomposed':>22} | {'instr bound':>11} | {'monolithic baseline':>28}")
    print("-" * 78)
    for length in range(1, 5):
        pipeline = ip_router_pipeline(length=length, verify_checksum=False, max_options=8)

        started = time.perf_counter()
        verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=50_000))
        result = verifier.verify(CrashFreedom(), input_lengths=[INPUT_LENGTH])
        decomposed_seconds = time.perf_counter() - started
        bound = verifier.instruction_bound(input_lengths=[INPUT_LENGTH], find_witness=False)

        started = time.perf_counter()
        baseline = MonolithicVerifier(
            pipeline,
            options=SymbexOptions(max_paths=100_000, max_seconds=MONOLITHIC_BUDGET_SECONDS),
        )
        baseline_result = baseline.verify(CrashFreedom(), input_length=INPUT_LENGTH)
        baseline_seconds = time.perf_counter() - started
        baseline_paths = getattr(baseline_result.statistics, "pipeline_paths_explored", 0)
        baseline_text = (
            f"{baseline_result.verdict} ({baseline_paths} paths, {baseline_seconds:.1f}s)"
        )

        print(
            f"{length:>3} | {result.verdict:>10} in {decomposed_seconds:6.1f}s | "
            f"{bound.bound:>11} | {baseline_text:>28}"
        )

    print("\nEvery prefix of the IP-router chain is proved crash-free; the instruction")
    print("bound grows with pipeline length (the paper reports ~3600 instructions for")
    print("its longest pipeline on its x86 instruction count; ours counts IR instructions).")


if __name__ == "__main__":
    main()
