#!/usr/bin/env python3
"""Quickstart: build a small IP-router pipeline, run packets through it, verify it.

This walks the three things a user of the library does:

1. build a pipeline out of elements (or parse a Click-style config),
2. run concrete packets through it with the pipeline driver,
3. prove crash freedom and compute the per-packet instruction bound with
   the decomposed verifier.
"""

from repro.dataplane import Pipeline, PipelineDriver
from repro.dataplane.elements import CheckIPHeader, DecIPTTL, IPLookup, IPOptions
from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, PipelineVerifier
from repro.workloads import well_formed_ip_packet


def build_pipeline() -> Pipeline:
    """CheckIPHeader -> IPLookup -> DecIPTTL -> IPOptions (IP header at byte 0)."""
    elements = [
        CheckIPHeader(name="check", verify_checksum=False),
        IPLookup([("10.0.0.0/8", 0), ("0.0.0.0/0", 0)], name="route"),
        DecIPTTL(name="ttl"),
        IPOptions(name="options", max_options=8),
    ]
    return Pipeline.chain(elements, name="quickstart-router")


def run_concrete_traffic(pipeline: Pipeline) -> None:
    driver = PipelineDriver(pipeline)
    good = well_formed_ip_packet(dst="10.1.2.3")
    expired = well_formed_ip_packet(dst="10.1.2.3", ttl=1)

    trace = driver.inject(good)
    print(f"well-formed packet : {trace.final_outcome:5s} "
          f"({trace.total_instructions} instructions, path {[h.element_name for h in trace.hops]})")

    trace = driver.inject(expired)
    print(f"ttl-expired packet : {trace.final_outcome:5s} "
          f"(dropped by {trace.hops[-1].element_name}: {trace.hops[-1].detail!r})")


def verify(pipeline: Pipeline) -> None:
    verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=20_000))

    result = verifier.verify(CrashFreedom(), input_lengths=[24])
    print("\ncrash freedom:")
    print(result.summary())

    bound = verifier.instruction_bound(input_lengths=[24])
    print("\nbounded instructions:")
    print(bound.summary())


def main() -> None:
    pipeline = build_pipeline()
    run_concrete_traffic(pipeline)
    verify(pipeline)


if __name__ == "__main__":
    main()
