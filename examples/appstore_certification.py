#!/usr/bin/env python3
"""The paper's app-store use case, at fleet scale: certify third-party
elements against a *catalog* of deployment pipelines before rollout.

§2 "Use Cases" imagines an operator downloading a new packet-processing
element and a certification tool checking what it would do to the
operator's existing pipeline.  A real operator runs many pipeline
variants, so this example certifies each candidate against every variant
in one batch using the fleet orchestrator:

* a well-behaved third-party element (a DSCP remarker) is certified on
  every variant: the upgraded pipelines stay crash-free and their latency
  (instruction) bounds are reported so the operator can compare;
* a buggy third-party element (reads a header field without checking the
  packet is long enough) is rejected, with the concrete packet that
  triggers the crash as evidence.

The shared :class:`SummaryStore` means the base elements (CheckIPHeader,
IPLookup, ...) are symbolically executed once for the whole catalog — and
not at all on a re-run, which is exactly the paper's "process each element
once" economics extended across pipelines and runs.
"""

import tempfile
from typing import List, Optional

from repro.dataplane import Element, Pipeline
from repro.ir import ElementProgram, ProgramBuilder
from repro.orchestrator import SummaryStore, certify_fleet
from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom
from repro.workloads import ip_router_elements


class DscpRemarker(Element):
    """A well-behaved third-party element: rewrites the DSCP field of IPv4 packets."""

    def __init__(self, dscp: int = 46, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.dscp = dscp & 0x3F

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="rewrite the DSCP code point")
        with builder.if_(builder.packet_length() < 20):
            builder.drop("not an IPv4 packet")
        tos = builder.let("tos", builder.load(1, 1))
        builder.store(1, 1, (tos & 0x03) | (self.dscp << 2))
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"DscpRemarker:{self.dscp}"


class BuggyAccelerator(Element):
    """A buggy third-party element: trusts that a transport header is present."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="buggy application accelerator")
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)
        # BUG: reads 4 bytes past the IP header without checking the packet length.
        ports = builder.let("ports", builder.load(hlen, 4))
        with builder.if_((ports >> 16) == 80):
            builder.set_meta("http", 1)
        builder.emit(0)
        return builder.build()


def upgraded_catalog(candidate_factory, label: str) -> List[Pipeline]:
    """The operator's pipeline variants, each upgraded with the candidate."""
    catalog = []
    for length in (2, 3):
        base = ip_router_elements(length=length, verify_checksum=False)
        catalog.append(
            Pipeline.chain(
                base + [candidate_factory()], name=f"{label}-after-router-{length}"
            )
        )
    return catalog


def certify(candidate_factory, label: str, store: SummaryStore) -> None:
    print(f"=== certifying {label} against the pipeline catalog ===")
    catalog = upgraded_catalog(candidate_factory, label)
    report = certify_fleet(
        catalog,
        [CrashFreedom()],
        input_lengths=(24,),
        workers=2,
        store=store,
        options=SymbexOptions(max_paths=20_000),
        instruction_bounds=True,
    )
    print(report.summary())
    for certification in report.certifications:
        if certification.certified:
            bound = certification.instruction_bound.bound if certification.instruction_bound else "?"
            print(f"  ACCEPTED on {certification.pipeline_name} — instruction bound {bound}")
        else:
            evidence = [ce for result in certification.results for ce in result.counterexamples]
            if evidence:
                worst = evidence[0]
                print(f"  REJECTED on {certification.pipeline_name} — "
                      f"{worst.violating_element} can crash on packet {worst.packet.hex()} "
                      f"({worst.detail}); replay confirmed: {worst.confirmed_by_replay}")
            else:
                # An unknown verdict (exhausted budget) also blocks rollout.
                verdicts = ", ".join(r.verdict for r in certification.results)
                print(f"  REJECTED on {certification.pipeline_name} — "
                      f"verification did not complete ({verdicts})")
    print()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="appstore-store-") as root:
        # One persistent store across both certifications: the shared base
        # elements are summarized exactly once for the whole session.
        store = SummaryStore(root)
        certify(lambda: DscpRemarker(name="dscp_remarker"), "a well-behaved DSCP remarker", store)
        certify(lambda: BuggyAccelerator(name="buggy_accel"), "a buggy application accelerator", store)
        print(f"store contents: {len(store)} summaries persisted on disk")


if __name__ == "__main__":
    main()
