#!/usr/bin/env python3
"""The paper's app-store use case: certify a third-party element before deployment.

§2 "Use Cases" imagines an operator downloading a new packet-processing
element and a certification tool checking what it would do to the
operator's existing pipeline.  This example plays both sides:

* a well-behaved third-party element (a DSCP remarker) is certified: the
  upgraded pipeline stays crash-free and its latency (instruction) bound
  is reported so the operator can compare before/after;
* a buggy third-party element (reads a header field without checking the
  packet is long enough) is rejected, with the concrete packet that
  triggers the crash as evidence.
"""

from typing import Optional

from repro.dataplane import Element, Pipeline
from repro.ir import ElementProgram, ProgramBuilder
from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, PipelineVerifier
from repro.workloads import ip_router_elements


class DscpRemarker(Element):
    """A well-behaved third-party element: rewrites the DSCP field of IPv4 packets."""

    def __init__(self, dscp: int = 46, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.dscp = dscp & 0x3F

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="rewrite the DSCP code point")
        with builder.if_(builder.packet_length() < 20):
            builder.drop("not an IPv4 packet")
        tos = builder.let("tos", builder.load(1, 1))
        builder.store(1, 1, (tos & 0x03) | (self.dscp << 2))
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"DscpRemarker:{self.dscp}"


class BuggyAccelerator(Element):
    """A buggy third-party element: trusts that a transport header is present."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="buggy application accelerator")
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)
        # BUG: reads 4 bytes past the IP header without checking the packet length.
        ports = builder.let("ports", builder.load(hlen, 4))
        with builder.if_((ports >> 16) == 80):
            builder.set_meta("http", 1)
        builder.emit(0)
        return builder.build()


def certify(candidate: Element, label: str) -> None:
    print(f"=== certifying {label} ===")
    base_elements = ip_router_elements(length=3, verify_checksum=False)
    pipeline = Pipeline.chain(base_elements + [candidate], name=f"upgraded-with-{candidate.name}")
    verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=20_000))

    result = verifier.verify(CrashFreedom(), input_lengths=[24])
    print(f"crash freedom after the upgrade: {result.verdict}")
    if result.violated:
        worst = result.counterexamples[0]
        print(f"  REJECTED — {worst.violating_element} can crash on packet "
              f"{worst.packet.hex()} ({worst.detail}); replay confirmed: "
              f"{worst.confirmed_by_replay}")
    else:
        bound = verifier.instruction_bound(input_lengths=[24], find_witness=False)
        print(f"  ACCEPTED — per-packet instruction bound with the new element: {bound.bound}")
    print()


def main() -> None:
    certify(DscpRemarker(name="dscp_remarker"), "a well-behaved DSCP remarker")
    certify(BuggyAccelerator(name="buggy_accel"), "a buggy application accelerator")


if __name__ == "__main__":
    main()
