#!/usr/bin/env python3
"""Verify a stateful NAT gateway: mutable state modelled as key/value stores.

The paper's §3 "Element Verification" handles mutable data structures by
treating every read as potentially returning *any* value and then asking
whether a harmful value could ever have been written.  This example runs
that analysis on a CheckIPHeader -> NetFlow -> NAT gateway:

* crash freedom is proved even though table reads are havoc'd,
* the NAT element's own range check discharges the "corrupt mapping"
  bad-value case (the drop is reported, not a crash),
* concrete traffic exercises the same pipeline to show the state filling up.
"""

from repro.dataplane import PipelineDriver
from repro.symbex import SymbexOptions
from repro.verify import CrashFreedom, PipelineVerifier
from repro.workloads import nat_gateway_pipeline, random_ip_packets


def concrete_traffic() -> None:
    print("=== concrete traffic through the NAT gateway ===")
    pipeline = nat_gateway_pipeline()
    driver = PipelineDriver(pipeline)
    for packet in random_ip_packets(50, seed=7):
        driver.inject(packet)
    stats = driver.statistics
    netflow = pipeline.element("gw_netflow")
    print(f"packets delivered : {stats.packets_delivered}/{stats.packets_in}")
    print(f"flows tracked     : {netflow.flow_count()}")
    print(f"max instructions  : {stats.max_instructions} per packet")


def verification() -> None:
    print("\n=== decomposed verification of the stateful pipeline ===")
    pipeline = nat_gateway_pipeline()
    verifier = PipelineVerifier(pipeline, options=SymbexOptions(max_paths=20_000))
    result = verifier.verify(CrashFreedom(), input_lengths=[28])
    print(result.summary())

    print("\nhavoc'd table reads seen during Step 1 (the key/value-store model):")
    for (name, length), (_element, summary) in verifier.element_summaries(28).items():
        havoc_reads = sum(len(segment.havoc_reads) for segment in summary.segments)
        writes = sum(len(segment.table_writes) for segment in summary.segments)
        print(f"  {name:12s} @ {length:3d} bytes: "
              f"{len(summary.segments):3d} segments, {havoc_reads:3d} havoc'd reads, "
              f"{writes:3d} table writes")


def main() -> None:
    concrete_traffic()
    verification()


if __name__ == "__main__":
    main()
