#!/usr/bin/env python3
"""Figures 1 and 2 of the paper, reproduced on the real machinery.

Figure 1: a toy program with one assertion.  Symbolic execution finds its
three feasible paths, proves the 10-instruction bound for the two safe
paths, and reports the inputs (``in < 0``) that crash it.

Figure 2: the two-element toy pipeline E1 -> E2.  E2 in isolation has a
crashing segment (e3); composed after E1 that segment is infeasible, so
the pipeline is proved crash-free — exactly the worked example of §3.

The paper's toy programs take an integer input; here the "integer" is the
first byte of the packet interpreted as a signed value, so the same
element machinery (packets in, packets out) is exercised.
"""


from repro.dataplane import Element, Pipeline
from repro.ir import ElementProgram, ProgramBuilder
from repro.symbex import SymbexOptions, SymbolicEngine
from repro.verify import CrashFreedom, PipelineVerifier


class ElementE1(Element):
    """E1 from Figure 2: clamp negative inputs to zero (out = max(in, 0))."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        # Treat the byte as signed: values >= 0x80 are "negative".
        with builder.if_(value >= 0x80):
            builder.store(0, 1, 0)
        builder.emit(0)
        return builder.build()


class ElementE2(Element):
    """E2 from Figure 2: assert in >= 0, then out = max(in, 10)."""

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name)
        value = builder.let("value", builder.load(0, 1))
        builder.assert_(value < 0x80, "negative input reached E2")
        with builder.if_(value < 10):
            builder.store(0, 1, 10)
        builder.emit(0)
        return builder.build()


def figure_1() -> None:
    print("=== Figure 1: the toy program, in isolation ===")
    element = ElementE2(name="toy_program")
    engine = SymbolicEngine(SymbexOptions())
    summary = engine.summarize_element(element.program, input_length=1, element_name=element.name)
    print(f"feasible paths: {len(summary.segments)}")
    for segment in summary.segments:
        print(f"  {segment.outcome:5s}  instructions={segment.instructions:2d}  "
              f"constraint={segment.constraint!r}")
    crash = summary.crash_segments
    print(f"crash-causing inputs exist: {bool(crash)} "
          f"(the paper's 'in < 0' case)")
    print(f"instruction bound over non-crashing paths: "
          f"{max(s.instructions for s in summary.emit_segments)}")


def figure_2() -> None:
    print("\n=== Figure 2: the toy pipeline E1 -> E2 ===")
    e1 = ElementE1(name="E1")
    e2 = ElementE2(name="E2")

    # Step 1, element in isolation: E2 alone has a crash segment (e3).
    alone = PipelineVerifier(Pipeline.chain([ElementE2(name="E2_alone")], name="E2-alone"))
    alone_result = alone.verify(CrashFreedom(), input_lengths=[1])
    print(f"E2 alone          : {alone_result.verdict} "
          f"({len(alone_result.counterexamples)} counterexamples)")
    if alone_result.counterexamples:
        packet = alone_result.counterexamples[0].packet
        print(f"  example crashing input byte: {packet[0]} (signed {packet[0] - 256})")

    # Step 2, composed: the crash segment is infeasible after E1.
    pipeline = Pipeline.chain([e1, e2], name="toy-pipeline")
    verifier = PipelineVerifier(pipeline)
    result = verifier.verify(CrashFreedom(), input_lengths=[1])
    print(f"pipeline E1 -> E2 : {result.verdict}")
    print(f"  suspect segments found in Step 1: {result.statistics.suspect_segments}")
    print(f"  composed paths checked in Step 2: {result.statistics.composed_paths_checked}")
    print(f"  feasible violations             : {result.statistics.composed_paths_feasible}")


def main() -> None:
    figure_1()
    figure_2()


if __name__ == "__main__":
    main()
