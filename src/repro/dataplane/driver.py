"""The pipeline driver: routes concrete packets through a pipeline.

This is the dataplane's run-to-completion scheduler: a packet enters at an
entry element and is pushed from element to element along the port its
current element emitted it on, until it is dropped, crashes an element, or
leaves through an unconnected output port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir.interpreter import Outcome
from ..obs.stats import StatisticsMixin
from .element import Element
from .errors import PipelineConfigurationError
from .packet import Packet
from .pipeline import Pipeline


@dataclass
class HopRecord:
    """One element traversal in a packet's journey."""

    element_name: str
    outcome: str
    port: Optional[int]
    instructions: int
    detail: str = ""


@dataclass
class PacketTrace:
    """The full journey of one packet through the pipeline."""

    packet_id: int
    hops: List[HopRecord] = field(default_factory=list)
    final_outcome: str = Outcome.DROP
    egress_element: Optional[str] = None
    egress_port: Optional[int] = None
    output_data: Optional[bytes] = None
    output_metadata: Dict[str, int] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(hop.instructions for hop in self.hops)

    @property
    def crashed(self) -> bool:
        return self.final_outcome == Outcome.CRASH

    @property
    def delivered(self) -> bool:
        return self.final_outcome == Outcome.EMIT

    def __repr__(self) -> str:
        path = " -> ".join(hop.element_name for hop in self.hops)
        return (
            f"PacketTrace(packet={self.packet_id}, {self.final_outcome}, "
            f"path=[{path}], instructions={self.total_instructions})"
        )


@dataclass
class DriverStatistics(StatisticsMixin):
    """Aggregate statistics over a driver run."""

    #: A merged run's worst case is the max of the two, not their sum.
    MERGE_MAX = ("max_instructions",)

    packets_in: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_crashed: int = 0
    total_instructions: int = 0
    max_instructions: int = 0
    per_element_instructions: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_instructions(self) -> float:
        return self.total_instructions / self.packets_in if self.packets_in else 0.0


class PipelineDriver:
    """Executes concrete packets against a pipeline."""

    def __init__(self, pipeline: Pipeline, max_hops: int = 1_000) -> None:
        pipeline.validate()
        self.pipeline = pipeline
        self.max_hops = max_hops
        self.statistics = DriverStatistics()

    def inject(
        self,
        data: bytes | bytearray,
        metadata: Optional[Dict[str, int]] = None,
        entry: Optional[Element] = None,
    ) -> PacketTrace:
        """Send one packet into the pipeline and return its trace."""
        if entry is None:
            entries = self.pipeline.entry_elements()
            if len(entries) != 1:
                raise PipelineConfigurationError(
                    f"pipeline has {len(entries)} entry elements; specify one explicitly"
                )
            entry = entries[0]

        packet = Packet(data, metadata)
        packet.acquire(entry)
        trace = PacketTrace(packet_id=packet.packet_id)
        self.statistics.packets_in += 1

        current: Optional[Tuple[Element, int]] = (entry, 0)
        hops = 0
        while current is not None:
            element, _input_port = current
            if hops >= self.max_hops:
                raise PipelineConfigurationError(
                    f"packet exceeded {self.max_hops} hops; is the pipeline malformed?"
                )
            hops += 1
            result = element.process(packet)
            self.statistics.per_element_instructions[element.name] = (
                self.statistics.per_element_instructions.get(element.name, 0)
                + result.instructions
            )
            if result.outcome == Outcome.EMIT:
                hop = HopRecord(element.name, result.outcome, result.port, result.instructions)
            elif result.outcome == Outcome.DROP:
                hop = HopRecord(
                    element.name, result.outcome, None, result.instructions, result.drop_reason
                )
            else:
                hop = HopRecord(
                    element.name, result.outcome, None, result.instructions, result.crash_message
                )
            trace.hops.append(hop)

            if result.outcome != Outcome.EMIT:
                trace.final_outcome = result.outcome
                self._finish(trace)
                return trace

            assert result.port is not None
            downstream = self.pipeline.downstream(element, result.port)
            if downstream is None:
                # Leaving through an unconnected port: the packet exits the pipeline.
                trace.final_outcome = Outcome.EMIT
                trace.egress_element = element.name
                trace.egress_port = result.port
                trace.output_data = bytes(packet.data(element))
                trace.output_metadata = dict(packet.metadata(element))
                packet.kill(element)
                self._finish(trace)
                return trace
            next_element, next_port = downstream
            packet.transfer(element, next_element)
            current = (next_element, next_port)

        raise AssertionError("unreachable")  # pragma: no cover

    def run(
        self,
        packets: Iterable[bytes | bytearray],
        entry: Optional[Element] = None,
    ) -> List[PacketTrace]:
        """Inject a sequence of packets and return their traces."""
        return [self.inject(packet, entry=entry) for packet in packets]

    def _finish(self, trace: PacketTrace) -> None:
        stats = self.statistics
        if trace.final_outcome == Outcome.EMIT:
            stats.packets_delivered += 1
        elif trace.final_outcome == Outcome.DROP:
            stats.packets_dropped += 1
        else:
            stats.packets_crashed += 1
        stats.total_instructions += trace.total_instructions
        stats.max_instructions = max(stats.max_instructions, trace.total_instructions)
