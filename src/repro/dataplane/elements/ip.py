"""IPv4 elements: CheckIPHeader, DecIPTTL, IPLookup, IPOptions, IPFilter.

These are the elements of the default Click IP-router configuration the
paper's preliminary evaluation verifies (§3 "Preliminary Results").  They
all operate on packets whose first byte is the start of the IPv4 header
(i.e. after ``EthDecap`` / ``Strip(14)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ...ir.builder import ProgramBuilder
from ...ir.program import ElementProgram
from ...net.addresses import IPv4Prefix
from ...net.headers import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4_CHECKSUM_OFFSET,
    IPV4_DST_OFFSET,
    IPV4_MIN_HEADER_LEN,
    IPV4_PROTO_OFFSET,
    IPV4_SRC_OFFSET,
    IPV4_TOTAL_LENGTH_OFFSET,
    IPV4_TTL_OFFSET,
)
from ..element import Element, register_element
from ..errors import DataplaneError
from ..state import ElementState, LpmTable


@register_element
class CheckIPHeader(Element):
    """Validate the IPv4 header (Click's ``CheckIPHeader``).

    Checks, in order: minimum length, IP version, IHL sanity, header fits
    in the packet, total length is consistent, and (optionally) the header
    checksum.  Malformed packets are dropped (or emitted on port 1 when
    ``use_error_port`` is set, mirroring Click's optional second output).

    This is the element that makes downstream "suspect" segments
    infeasible: it establishes exactly the invariants that IPOptions and
    DecIPTTL rely on.
    """

    def __init__(
        self,
        verify_checksum: bool = True,
        use_error_port: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.verify_checksum = verify_checksum
        self.use_error_port = use_error_port
        self.num_output_ports = 2 if use_error_port else 1

    def _reject(self, builder: ProgramBuilder, reason: str) -> None:
        if self.use_error_port:
            builder.emit(1)
        else:
            builder.drop(reason)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(
            self.name,
            num_output_ports=self.num_output_ports,
            description="validate the IPv4 header",
        )
        with builder.if_(builder.packet_length() < IPV4_MIN_HEADER_LEN):
            self._reject(builder, "packet shorter than an IPv4 header")
        vihl = builder.let("vihl", builder.load(0, 1))
        with builder.if_((vihl >> 4) != 4):
            self._reject(builder, "not IPv4")
        ihl = builder.let("ihl", vihl & 0x0F)
        with builder.if_(ihl < 5):
            self._reject(builder, "IHL below 5")
        hlen = builder.let("hlen", ihl * 4)
        with builder.if_(builder.packet_length() < hlen):
            self._reject(builder, "header does not fit in the packet")
        total_length = builder.let("total_length", builder.load(IPV4_TOTAL_LENGTH_OFFSET, 2))
        with builder.if_(total_length < hlen):
            self._reject(builder, "total length shorter than the header")
        with builder.if_(total_length > builder.packet_length()):
            self._reject(builder, "total length longer than the packet")

        if self.verify_checksum:
            builder.assign("offset", 0)
            builder.assign("sum", 0)
            with builder.while_(builder.reg("offset") < hlen, max_iterations=30, loop_id=f"{self.name}.checksum"):
                builder.assign("sum", builder.reg("sum") + builder.load(builder.reg("offset"), 2))
                builder.assign("offset", builder.reg("offset") + 2)
            folded = builder.let("folded", (builder.reg("sum") & 0xFFFF) + (builder.reg("sum") >> 16))
            folded2 = builder.let("folded2", (folded & 0xFFFF) + (folded >> 16))
            with builder.if_(folded2 != 0xFFFF):
                self._reject(builder, "bad IP checksum")

        builder.set_meta("ip_header_valid", 1)
        builder.set_meta("ip_header_length", builder.reg("hlen"))
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"CheckIPHeader:checksum={self.verify_checksum}:errport={self.use_error_port}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "CheckIPHeader":
        verify = not any(arg.strip().upper() == "NOCHECKSUM" for arg in args)
        return cls(verify_checksum=verify, name=name)


@register_element
class DecIPTTL(Element):
    """Decrement the TTL and patch the checksum (Click's ``DecIPTTL``).

    Packets whose TTL is 0 or 1 are dropped (port 1 when ``use_expired_port``
    is set, where an ICMP generator would sit in a full router).
    The checksum is patched incrementally (RFC 1141-style) rather than
    recomputed.
    """

    click_aliases = ("DecTTL",)

    def __init__(self, use_expired_port: bool = False, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.use_expired_port = use_expired_port
        self.num_output_ports = 2 if use_expired_port else 1

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(
            self.name,
            num_output_ports=self.num_output_ports,
            description="decrement TTL, patch checksum",
        )
        ttl = builder.let("ttl", builder.load(IPV4_TTL_OFFSET, 1))
        with builder.if_(ttl <= 1):
            if self.use_expired_port:
                builder.emit(1)
            else:
                builder.drop("TTL expired")
        builder.store(IPV4_TTL_OFFSET, 1, ttl - 1)
        # Incremental checksum update: the TTL lives in the high byte of the
        # word at offset 8, so decrementing TTL by one adds 0x0100 to the
        # checksum, plus an end-around carry when it overflows 16 bits.
        checksum = builder.let("checksum", builder.load(IPV4_CHECKSUM_OFFSET, 2))
        updated = builder.let("updated", checksum + 0x0100)
        with builder.if_(updated > 0xFFFF):
            builder.assign("updated", (updated & 0xFFFF) + 1)
        builder.store(IPV4_CHECKSUM_OFFSET, 2, builder.reg("updated"))
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"DecIPTTL:expired_port={self.use_expired_port}"


@register_element
class IPLookup(Element):
    """Longest-prefix-match routing (Click's ``LookupIPRoute`` family).

    The forwarding table is static state; the packet is emitted on the
    port stored with the matching route.  Packets that match no route are
    dropped (a production router would send an ICMP unreachable).
    """

    click_aliases = ("LookupIPRoute", "RadixIPLookup", "StaticIPLookup")

    TABLE = "routes"

    def __init__(
        self,
        routes: Sequence[Union[str, Tuple[str, int]]] = (),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        parsed: List[Tuple[str, int]] = []
        for route in routes:
            if isinstance(route, tuple):
                parsed.append((route[0], int(route[1])))
            else:
                parts = route.split()
                if len(parts) < 2:
                    raise DataplaneError(f"route needs 'prefix port', got {route!r}")
                parsed.append((parts[0], int(parts[-1])))
        self.routes = parsed
        self.num_output_ports = max((port for _, port in parsed), default=0) + 1

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(
            self.name,
            num_output_ports=self.num_output_ports,
            description="longest-prefix-match forwarding",
        )
        builder.declare_table(self.TABLE, kind="static", description="forwarding table")
        with builder.if_(builder.packet_length() < IPV4_MIN_HEADER_LEN):
            builder.drop("too short for an IPv4 header")
        destination = builder.let("destination", builder.load(IPV4_DST_OFFSET, 4))
        port, found = builder.table_read(self.TABLE, destination, "route_port", "route_found")
        with builder.if_(found.logical_not()):
            builder.drop("no route to destination")
        builder.set_meta("output_port", port)
        # Emit on the port selected by the table.  The IR's Emit takes a
        # static port, so the dynamic choice becomes a cascade of branches —
        # which is also how the verifier sees the per-port paths.
        for out_port in range(self.num_output_ports - 1):
            with builder.if_(port == out_port):
                builder.emit(out_port)
        builder.emit(self.num_output_ports - 1)
        return builder.build()

    def create_state(self) -> ElementState:
        state = ElementState()
        table = LpmTable()
        for prefix, port in self.routes:
            table.add_route(prefix, port)
        state.add_table(self.TABLE, table)
        return state

    def configuration_key(self) -> str:
        routes = ",".join(f"{prefix}>{port}" for prefix, port in self.routes)
        return f"IPLookup:{routes}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "IPLookup":
        return cls(routes=list(args), name=name)


@register_element
class IPOptions(Element):
    """Process IPv4 options (Click's ``IPGWOptions``).

    Walks the options region between byte 20 and the end of the header:
    End-of-Options stops processing, No-Operation advances one byte, any
    other option carries a length byte which must be at least 2 and must
    not run past the header.  Malformed options drop the packet (port 1
    with ``use_error_port``, where an ICMP parameter-problem generator
    would sit).

    Deliberately, and faithfully to Click, this element *trusts* that the
    header length fits inside the packet — CheckIPHeader upstream
    guarantees it.  Symbolically executed in isolation it therefore has
    crash suspects (out-of-bounds reads); composed after CheckIPHeader
    those suspects are infeasible.  This is the Figure-2 story on real code.
    """

    click_aliases = ("IPGWOptions",)

    OPT_EOL = 0
    OPT_NOP = 1

    def __init__(
        self,
        max_options: int = 10,
        use_error_port: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if max_options <= 0:
            raise DataplaneError("max_options must be positive")
        self.max_options = max_options
        self.use_error_port = use_error_port
        self.num_output_ports = 2 if use_error_port else 1

    def _reject(self, builder: ProgramBuilder, reason: str) -> None:
        if self.use_error_port:
            builder.emit(1)
        else:
            builder.drop(reason)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(
            self.name,
            num_output_ports=self.num_output_ports,
            description="process IPv4 options",
        )
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)
        # No options: the common case, fast path.
        with builder.if_(hlen <= IPV4_MIN_HEADER_LEN):
            builder.emit(0)
        # Touch the end of the options region before walking it, trusting the
        # IHL — exactly what Click does when it copies the options for
        # processing.  When an upstream CheckIPHeader has established that the
        # header fits in the packet this read is safe; in isolation it is an
        # out-of-bounds read (a crash) for packets whose IHL lies.
        builder.let("options_end", builder.load(hlen - 1, 1))
        builder.assign("position", IPV4_MIN_HEADER_LEN)
        with builder.while_(
            builder.reg("position") < hlen,
            max_iterations=self.max_options,
            loop_id=f"{self.name}.options",
        ):
            option_type = builder.let("option_type", builder.load(builder.reg("position"), 1))
            with builder.if_(option_type == self.OPT_EOL):
                builder.emit(0)
            with builder.if_(option_type == self.OPT_NOP):
                builder.assign("position", builder.reg("position") + 1)
            with builder.else_():
                # Option with a length byte.
                with builder.if_(builder.reg("position") + 1 >= hlen):
                    self._reject(builder, "option length byte missing")
                option_length = builder.let(
                    "option_length", builder.load(builder.reg("position") + 1, 1)
                )
                with builder.if_(option_length < 2):
                    self._reject(builder, "option length below 2")
                with builder.if_(builder.reg("position") + option_length > hlen):
                    self._reject(builder, "option runs past the header")
                builder.assign("position", builder.reg("position") + option_length)
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"IPOptions:max={self.max_options}:errport={self.use_error_port}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "IPOptions":
        max_options = int(args[0]) if args else 10
        return cls(max_options=max_options, name=name)


@dataclass(frozen=True)
class FilterRule:
    """One IPFilter rule: action plus (all optional) match fields."""

    action: str  # "allow" or "deny"
    src: Optional[IPv4Prefix] = None
    dst: Optional[IPv4Prefix] = None
    protocol: Optional[int] = None
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise DataplaneError(f"filter action must be allow/deny, got {self.action!r}")


@register_element
class IPFilter(Element):
    """Simple stateless firewall (a subset of Click's ``IPFilter``).

    Rules are evaluated in order; the first matching rule decides.  The
    default policy (no rule matches) is configurable and defaults to deny.
    Port matching is only attempted for TCP and UDP packets and only when
    the transport header fits in the packet.
    """

    def __init__(
        self,
        rules: Sequence[FilterRule] = (),
        default_allow: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.rules = list(rules)
        self.default_allow = default_allow

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="stateless packet filter")
        with builder.if_(builder.packet_length() < IPV4_MIN_HEADER_LEN):
            builder.drop("too short for an IPv4 header")
        src = builder.let("src", builder.load(IPV4_SRC_OFFSET, 4))
        dst = builder.let("dst", builder.load(IPV4_DST_OFFSET, 4))
        protocol = builder.let("protocol", builder.load(IPV4_PROTO_OFFSET, 1))
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)

        for index, rule in enumerate(self.rules):
            condition = None

            def conjoin(addition):
                nonlocal condition
                condition = addition if condition is None else condition & addition

            if rule.src is not None:
                conjoin((src & rule.src.mask()) == (int(rule.src.network) & rule.src.mask()))
            if rule.dst is not None:
                conjoin((dst & rule.dst.mask()) == (int(rule.dst.network) & rule.dst.mask()))
            if rule.protocol is not None:
                conjoin(protocol == rule.protocol)
            match_reg = f"rule{index}_match"
            if rule.dst_port is not None:
                # Only TCP/UDP have ports; guard the load so a short packet
                # fails the rule instead of crashing the filter.
                builder.assign(match_reg, 0)
                is_transport = (protocol == IPPROTO_TCP) | (protocol == IPPROTO_UDP)
                header_fits = builder.packet_length() >= (hlen + 4)
                with builder.if_(is_transport & header_fits):
                    dst_port = builder.load(hlen + 2, 2)
                    port_match = dst_port == rule.dst_port
                    conjoin(port_match)
                    builder.assign(match_reg, condition if condition is not None else 1)
            else:
                builder.assign(match_reg, condition if condition is not None else 1)
            with builder.if_(builder.reg(match_reg)):
                if rule.action == "allow":
                    builder.emit(0)
                else:
                    builder.drop(f"denied by rule {index}")
        if self.default_allow:
            builder.emit(0)
        else:
            builder.drop("denied by default policy")
        return builder.build()

    def configuration_key(self) -> str:
        rules = ";".join(
            f"{rule.action}:{rule.src}:{rule.dst}:{rule.protocol}:{rule.dst_port}"
            for rule in self.rules
        )
        return f"IPFilter:{rules}:default={self.default_allow}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "IPFilter":
        rules: List[FilterRule] = []
        for arg in args:
            parts = arg.split()
            if not parts:
                continue
            action = parts[0].lower()
            src = dst = None
            protocol = dst_port = None
            index = 1
            while index < len(parts) - 1:
                keyword = parts[index].lower()
                value = parts[index + 1]
                if keyword == "src":
                    src = IPv4Prefix(value)
                elif keyword == "dst":
                    dst = IPv4Prefix(value)
                elif keyword == "proto":
                    protocol = int(value)
                elif keyword == "dport":
                    dst_port = int(value)
                index += 2
            rules.append(FilterRule(action=action, src=src, dst=dst, protocol=protocol, dst_port=dst_port))
        return cls(rules=rules, name=name)
