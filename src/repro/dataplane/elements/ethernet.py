"""Ethernet-layer elements: Classifier, EthEncap, EthDecap."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ...ir.builder import ProgramBuilder
from ...ir.program import ElementProgram
from ...net.addresses import EthernetAddress
from ...net.headers import ETHERNET_HEADER_LEN, ETHERTYPE_IPV4
from ...net.rules import ClassifierRule, parse_classifier_config
from ..element import Element, register_element


@register_element
class Classifier(Element):
    """Pattern classifier over raw packet bytes (Click's ``Classifier``).

    Each configuration string is an ``offset/value[%mask]`` conjunction (or
    ``-`` for catch-all) and corresponds to one output port, checked in
    order.  A packet matching no rule is dropped, as in Click.
    """

    def __init__(
        self,
        rules: Sequence[Union[str, ClassifierRule]] = ("-",),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        parsed: List[ClassifierRule] = []
        text_rules: List[str] = []
        for port, rule in enumerate(rules):
            if isinstance(rule, ClassifierRule):
                parsed.append(rule)
                text_rules.append(str(rule))
            else:
                text_rules.append(rule)
        if not parsed:
            parsed = parse_classifier_config(list(text_rules))
        self.rules = parsed
        self.num_output_ports = max(1, len(self.rules))

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(
            self.name,
            num_output_ports=self.num_output_ports,
            description="classify packets by byte patterns",
        )
        for rule in self.rules:
            if rule.is_catch_all():
                builder.emit(rule.port)
                return builder.build()
            # Check every pattern of the rule; all must match.  The length
            # check guards the field loads so a short packet cannot crash the
            # classifier — it simply fails the rule.
            conditions = []
            max_end = max(pattern.offset + pattern.length for pattern in rule.patterns)
            length_ok = builder.temp(builder.packet_length() >= max_end, "len_ok")
            match_reg = f"match_{rule.port}"
            builder.assign(match_reg, 0)
            with builder.if_(length_ok):
                condition = None
                for pattern in rule.patterns:
                    mask = int.from_bytes(pattern.mask, "big")
                    value = int.from_bytes(pattern.value, "big") & mask
                    field = builder.load(pattern.offset, pattern.length)
                    this_match = (field & mask) == value
                    condition = this_match if condition is None else condition & this_match
                builder.assign(match_reg, condition if condition is not None else 1)
            with builder.if_(builder.reg(match_reg)):
                builder.emit(rule.port)
        builder.drop("no classifier rule matched")
        return builder.build()

    def configuration_key(self) -> str:
        return "Classifier:" + "|".join(str(rule) for rule in self.rules)

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "Classifier":
        return cls(rules=args or ["-"], name=name)


@register_element
class EthEncap(Element):
    """Prepend an Ethernet header (Click's ``EtherEncap``)."""

    click_aliases = ("EtherEncap",)

    def __init__(
        self,
        ethertype: int = ETHERTYPE_IPV4,
        src: Union[str, EthernetAddress] = "00:00:00:00:00:01",
        dst: Union[str, EthernetAddress] = "00:00:00:00:00:02",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.ethertype = ethertype
        self.src = EthernetAddress(src)
        self.dst = EthernetAddress(dst)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="prepend an Ethernet header")
        builder.push_head(ETHERNET_HEADER_LEN)
        builder.store(0, 6, int(self.dst))
        builder.store(6, 6, int(self.src))
        builder.store(12, 2, self.ethertype)
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"EthEncap:{self.ethertype:#06x}:{self.src}:{self.dst}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "EthEncap":
        ethertype = int(args[0], 16) if args else ETHERTYPE_IPV4
        src = args[1] if len(args) > 1 else "00:00:00:00:00:01"
        dst = args[2] if len(args) > 2 else "00:00:00:00:00:02"
        return cls(ethertype=ethertype, src=src, dst=dst, name=name)


@register_element
class EthDecap(Element):
    """Remove the Ethernet header (equivalent to Click's ``Strip(14)``).

    The packet must be at least 14 bytes long; shorter packets are
    dropped rather than crashing the element.
    """

    click_aliases = ("EtherDecap",)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="remove the Ethernet header")
        with builder.if_(builder.packet_length() < ETHERNET_HEADER_LEN):
            builder.drop("runt frame")
        builder.pull_head(ETHERNET_HEADER_LEN)
        builder.emit(0)
        return builder.build()


@register_element
class EthMirror(Element):
    """Swap Ethernet source and destination addresses (Click's ``EtherMirror``)."""

    click_aliases = ("EtherMirror",)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="swap Ethernet addresses")
        with builder.if_(builder.packet_length() < ETHERNET_HEADER_LEN):
            builder.drop("runt frame")
        dst = builder.let("dst", builder.load(0, 6))
        src = builder.let("src", builder.load(6, 6))
        builder.store(0, 6, src)
        builder.store(6, 6, dst)
        builder.emit(0)
        return builder.build()
