"""Basic utility elements: sources, sinks, counters, strip/unstrip, paint, queue."""

from __future__ import annotations

from typing import List, Optional

from ...ir.builder import ProgramBuilder
from ...ir.program import ElementProgram
from ..element import Element, register_element
from ..errors import DataplaneError
from ..packet import Packet
from ..state import ElementState, ExactMatchTable


@register_element
class Discard(Element):
    """Drops every packet (Click's ``Discard``)."""

    click_aliases = ("Sink",)

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="drop every packet")
        builder.drop("discarded")
        return builder.build()


@register_element
class PassThrough(Element):
    """Forwards every packet unchanged (useful as a placeholder or queue stand-in)."""

    click_aliases = ("Queue", "SimpleQueue")

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="forward unchanged")
        builder.emit(0)
        return builder.build()


@register_element
class Counter(Element):
    """Counts packets and bytes in private state, then forwards (Click's ``Counter``)."""

    TABLE = "counters"
    KEY_PACKETS = 0
    KEY_BYTES = 1

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="count packets and bytes")
        builder.declare_table(self.TABLE, kind="private", description="packet/byte counters")
        packets, _found = builder.table_read(self.TABLE, self.KEY_PACKETS, "pkt_count", "pkt_found")
        builder.table_write(self.TABLE, self.KEY_PACKETS, packets + 1)
        total_bytes, _bfound = builder.table_read(self.TABLE, self.KEY_BYTES, "byte_count", "byte_found")
        builder.table_write(self.TABLE, self.KEY_BYTES, total_bytes + builder.packet_length())
        builder.emit(0)
        return builder.build()

    def create_state(self) -> ElementState:
        state = ElementState()
        state.add_table(self.TABLE, ExactMatchTable())
        return state

    @property
    def packet_count(self) -> int:
        return self.state.table(self.TABLE).read(self.KEY_PACKETS)[0]

    @property
    def byte_count(self) -> int:
        return self.state.table(self.TABLE).read(self.KEY_BYTES)[0]


@register_element
class Paint(Element):
    """Writes a colour annotation into packet metadata (Click's ``Paint``)."""

    def __init__(self, color: int = 0, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.color = color

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description=f"paint colour {self.color}")
        builder.set_meta("paint", self.color)
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"Paint:{self.color}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "Paint":
        color = int(args[0], 0) if args else 0
        return cls(color=color, name=name)


@register_element
class Strip(Element):
    """Removes the first N bytes of the packet (Click's ``Strip``)."""

    def __init__(self, nbytes: int = 14, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if nbytes <= 0:
            raise DataplaneError("Strip needs a positive byte count")
        self.nbytes = nbytes

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description=f"strip {self.nbytes} bytes")
        builder.pull_head(self.nbytes)
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"Strip:{self.nbytes}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "Strip":
        nbytes = int(args[0]) if args else 14
        return cls(nbytes=nbytes, name=name)


@register_element
class Unstrip(Element):
    """Prepends N zero bytes to the packet (Click's ``Unstrip``)."""

    def __init__(self, nbytes: int = 14, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if nbytes <= 0:
            raise DataplaneError("Unstrip needs a positive byte count")
        self.nbytes = nbytes

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description=f"unstrip {self.nbytes} bytes")
        builder.push_head(self.nbytes)
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"Unstrip:{self.nbytes}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "Unstrip":
        nbytes = int(args[0]) if args else 14
        return cls(nbytes=nbytes, name=name)


@register_element
class CheckLength(Element):
    """Drops packets longer than a maximum length (Click's ``CheckLength``)."""

    def __init__(self, max_length: int = 1514, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.max_length = max_length

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description=f"drop packets longer than {self.max_length}")
        with builder.if_(builder.packet_length() > self.max_length):
            builder.drop("packet too long")
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"CheckLength:{self.max_length}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "CheckLength":
        max_length = int(args[0]) if args else 1514
        return cls(max_length=max_length, name=name)


@register_element
class InfiniteSource(Element):
    """A packet generator (Click's ``InfiniteSource``).

    Not part of the verified code — the paper verifies everything between
    the generator and the sink — but needed to run concrete workloads.
    ``generate`` creates packets owned by nobody, ready to inject.
    """

    def __init__(
        self,
        template: bytes = b"\x00" * 64,
        count: int = 1,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.template = bytes(template)
        self.count = count

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="source pass-through")
        builder.emit(0)
        return builder.build()

    def generate(self) -> List[Packet]:
        """Create ``count`` packets from the template."""
        return [Packet(self.template) for _ in range(self.count)]

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "InfiniteSource":
        template = args[0].encode() if args else b"\x00" * 64
        count = int(args[1]) if len(args) > 1 else 1
        return cls(template=template, count=count, name=name)
