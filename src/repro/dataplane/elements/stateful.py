"""Stateful elements: NetFlow-style statistics and NAT rewriting.

These are the elements with mutable private state the paper discusses in
§3 ("Element Verification" — mutable data structures, and the last
paragraph of the preliminary results).  Their state is modelled as
key/value tables; during verification, reads are havoc'd and the
two-phase bad-value analysis checks whether harmful values can ever have
been written.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ...ir.builder import ProgramBuilder
from ...ir.program import ElementProgram
from ...net.addresses import IPv4Address
from ...net.headers import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4_DST_OFFSET,
    IPV4_MIN_HEADER_LEN,
    IPV4_PROTO_OFFSET,
    IPV4_SRC_OFFSET,
)
from ..element import Element, register_element
from ..state import ElementState, ExactMatchTable


@register_element
class NetFlow(Element):
    """Per-flow packet counters (a NetFlow-style statistics element).

    The flow key combines addresses, protocol and (for TCP/UDP) ports.
    Counters live in a pre-allocated exact-match table; when the table is
    full the oldest entry is evicted, as a fixed-size flow cache would.
    """

    TABLE = "flows"

    def __init__(
        self,
        capacity: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.capacity = capacity

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="per-flow packet counters")
        builder.declare_table(self.TABLE, kind="private", description="flow counter table")
        with builder.if_(builder.packet_length() < IPV4_MIN_HEADER_LEN):
            builder.drop("too short for an IPv4 header")
        src = builder.let("src", builder.load(IPV4_SRC_OFFSET, 4))
        dst = builder.let("dst", builder.load(IPV4_DST_OFFSET, 4))
        protocol = builder.let("protocol", builder.load(IPV4_PROTO_OFFSET, 1))
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)

        # Flow key: a 64-bit mix of the 5-tuple.  Ports are folded in only
        # for TCP/UDP packets whose transport header is present.
        builder.assign("ports", 0)
        is_transport = (protocol == IPPROTO_TCP) | (protocol == IPPROTO_UDP)
        ports_fit = builder.packet_length() >= (hlen + 4)
        with builder.if_(is_transport & ports_fit):
            builder.assign("ports", builder.load(hlen, 4))
        key = builder.let(
            "flow_key",
            (src << 32) ^ (dst << 13) ^ (protocol << 5) ^ builder.reg("ports"),
        )

        count, found = builder.table_read(self.TABLE, key, "flow_count", "flow_found")
        with builder.if_(found):
            builder.table_write(self.TABLE, key, count + 1)
        with builder.else_():
            builder.table_write(self.TABLE, key, 1)
        builder.set_meta("flow_packets", count + 1)
        builder.emit(0)
        return builder.build()

    def create_state(self) -> ElementState:
        state = ElementState()
        state.add_table(self.TABLE, ExactMatchTable(capacity=self.capacity))
        return state

    def configuration_key(self) -> str:
        return f"NetFlow:capacity={self.capacity}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "NetFlow":
        capacity = int(args[0]) if args else 4096
        return cls(capacity=capacity, name=name)

    def flow_count(self) -> int:
        """Number of flows currently tracked (concrete state inspection)."""
        return len(self.state.table(self.TABLE))  # type: ignore[arg-type]


@register_element
class NAT(Element):
    """Source NAT (a simplified Click ``IPRewriter``).

    Outbound packets have their source address rewritten to the external
    address and their source port replaced by a translated port drawn from
    a pre-allocated range.  The (flow key -> translated port) map and the
    next-free-port counter are private state.

    The translated port is range-checked before use — the "bad value"
    check the paper's data-structure analysis performs: even if the map
    returned an arbitrary value, the element must not misbehave.
    """

    TABLE_MAP = "nat_map"
    TABLE_ALLOC = "nat_alloc"
    KEY_NEXT_PORT = 0

    def __init__(
        self,
        external_ip: Union[str, IPv4Address] = "192.0.2.1",
        port_base: int = 10_000,
        port_count: int = 20_000,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.external_ip = IPv4Address(external_ip)
        self.port_base = port_base
        self.port_count = port_count

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description="source NAT rewriting")
        builder.declare_table(self.TABLE_MAP, kind="private", description="flow to translated port")
        builder.declare_table(self.TABLE_ALLOC, kind="private", description="next free port index")

        with builder.if_(builder.packet_length() < IPV4_MIN_HEADER_LEN):
            builder.drop("too short for an IPv4 header")
        protocol = builder.let("protocol", builder.load(IPV4_PROTO_OFFSET, 1))
        is_transport = (protocol == IPPROTO_TCP) | (protocol == IPPROTO_UDP)
        with builder.if_(is_transport.logical_not()):
            # Non-TCP/UDP traffic passes through with only the address rewritten.
            builder.store(IPV4_SRC_OFFSET, 4, int(self.external_ip))
            builder.emit(0)
        vihl = builder.let("vihl", builder.load(0, 1))
        hlen = builder.let("hlen", (vihl & 0x0F) * 4)
        with builder.if_(builder.packet_length() < hlen + 4):
            builder.drop("transport ports missing")

        src = builder.let("src", builder.load(IPV4_SRC_OFFSET, 4))
        src_port = builder.let("src_port", builder.load(hlen, 2))
        key = builder.let("nat_key", (src << 16) ^ src_port ^ (protocol << 48))

        mapped, found = builder.table_read(self.TABLE_MAP, key, "mapped_port", "mapping_found")
        with builder.if_(found.logical_not()):
            next_index, _alloc_found = builder.table_read(
                self.TABLE_ALLOC, self.KEY_NEXT_PORT, "next_index", "alloc_found"
            )
            with builder.if_(next_index >= self.port_count):
                builder.drop("NAT port pool exhausted")
            builder.assign("mapped_port", next_index + self.port_base)
            builder.table_write(self.TABLE_MAP, key, builder.reg("mapped_port"))
            builder.table_write(self.TABLE_ALLOC, self.KEY_NEXT_PORT, next_index + 1)

        # Bad-value guard: whatever the map returned must be a valid port.
        mapped_value = builder.reg("mapped_port")
        valid_port = (mapped_value >= self.port_base) & (
            mapped_value < self.port_base + self.port_count
        )
        with builder.if_(valid_port.logical_not()):
            builder.drop("corrupt NAT mapping")

        builder.store(IPV4_SRC_OFFSET, 4, int(self.external_ip))
        builder.store(hlen, 2, mapped_value)
        builder.set_meta("nat_port", mapped_value)
        builder.emit(0)
        return builder.build()

    def create_state(self) -> ElementState:
        state = ElementState()
        state.add_table(self.TABLE_MAP, ExactMatchTable())
        state.add_table(self.TABLE_ALLOC, ExactMatchTable())
        return state

    def configuration_key(self) -> str:
        return f"NAT:{self.external_ip}:{self.port_base}:{self.port_count}"

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "NAT":
        external = args[0] if args else "192.0.2.1"
        base = int(args[1]) if len(args) > 1 else 10_000
        count = int(args[2]) if len(args) > 2 else 20_000
        return cls(external_ip=external, port_base=base, port_count=count, name=name)
