"""Standard element library (the Click IP-router elements plus stateful extras)."""

from .basic import (
    CheckLength,
    Counter,
    Discard,
    InfiniteSource,
    Paint,
    PassThrough,
    Strip,
    Unstrip,
)
from .ethernet import Classifier, EthDecap, EthEncap, EthMirror
from .ip import CheckIPHeader, DecIPTTL, FilterRule, IPFilter, IPLookup, IPOptions
from .stateful import NAT, NetFlow

__all__ = [
    "CheckIPHeader",
    "CheckLength",
    "Classifier",
    "Counter",
    "DecIPTTL",
    "Discard",
    "EthDecap",
    "EthEncap",
    "EthMirror",
    "FilterRule",
    "IPFilter",
    "IPLookup",
    "IPOptions",
    "InfiniteSource",
    "NAT",
    "NetFlow",
    "Paint",
    "PassThrough",
    "Strip",
    "Unstrip",
]
