"""Click-style configuration parser.

Supports the subset of the Click language the paper's pipelines use::

    // declarations
    check :: CheckIPHeader();
    rt    :: IPLookup(10.0.0.0/8 0, 192.168.1.0/24 1);

    // connections (ports default to 0)
    src -> check -> rt;
    rt[1] -> [0]sink;

Element classes are resolved against :data:`repro.dataplane.element.ELEMENT_REGISTRY`;
anonymous elements may be declared inline in a connection chain
(``... -> CheckIPHeader() -> ...``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .element import ELEMENT_REGISTRY, Element
from .errors import ConfigParseError, UnknownElementError
from .pipeline import Pipeline

_DECLARATION_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w-]*)\s*::\s*(?P<cls>[A-Za-z_]\w*)\s*(?:\((?P<args>.*)\))?$",
    re.DOTALL,
)
_INLINE_RE = re.compile(
    r"^(?P<cls>[A-Za-z_]\w*)\s*\((?P<args>.*)\)$",
    re.DOTALL,
)
_HOP_RE = re.compile(
    r"^(?:\[(?P<inport>\d+)\]\s*)?(?P<body>.+?)(?:\s*\[(?P<outport>\d+)\])?$",
    re.DOTALL,
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _split_statements(text: str) -> List[str]:
    statements = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if chunk:
            statements.append(chunk)
    return statements


def split_config_args(args: Optional[str]) -> List[str]:
    """Split a Click argument string on top-level commas."""
    if not args or not args.strip():
        return []
    parts: List[str] = []
    depth = 0
    current = []
    for char in args:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    parts.append("".join(current).strip())
    return [part for part in parts if part != ""] or []


class ClickConfigParser:
    """Parses a Click-style configuration string into a :class:`Pipeline`."""

    def __init__(self, registry: Optional[Dict[str, type]] = None) -> None:
        self._registry = registry if registry is not None else ELEMENT_REGISTRY

    def parse(self, text: str, name: str = "pipeline") -> Pipeline:
        pipeline = Pipeline(name=name)
        elements: Dict[str, Element] = {}
        statements = _split_statements(_strip_comments(text))
        # First pass: declarations, so connections can reference them in any order.
        connection_statements: List[str] = []
        for statement in statements:
            if "::" in statement and "->" not in statement:
                self._parse_declaration(statement, elements, pipeline)
            else:
                connection_statements.append(statement)
        for statement in connection_statements:
            if "->" in statement:
                self._parse_connection(statement, elements, pipeline)
            elif "::" in statement:
                self._parse_declaration(statement, elements, pipeline)
            else:
                raise ConfigParseError(f"cannot parse statement: {statement!r}")
        return pipeline

    # -- pieces -------------------------------------------------------------------------

    def _resolve_class(self, class_name: str) -> type:
        cls = self._registry.get(class_name)
        if cls is None:
            known = ", ".join(sorted(self._registry))
            raise UnknownElementError(
                f"unknown element class {class_name!r}; known classes: {known}"
            )
        return cls

    def _parse_declaration(
        self, statement: str, elements: Dict[str, Element], pipeline: Pipeline
    ) -> Element:
        match = _DECLARATION_RE.match(statement.strip())
        if match is None:
            raise ConfigParseError(f"cannot parse declaration: {statement!r}")
        name = match.group("name")
        if name in elements:
            raise ConfigParseError(f"element {name!r} declared twice")
        cls = self._resolve_class(match.group("cls"))
        args = split_config_args(match.group("args"))
        element = cls.from_click_args(args, name=name)  # type: ignore[attr-defined]
        elements[name] = element
        pipeline.add_element(element)
        return element

    def _parse_connection(
        self, statement: str, elements: Dict[str, Element], pipeline: Pipeline
    ) -> None:
        hops = [hop.strip() for hop in statement.split("->")]
        if len(hops) < 2:
            raise ConfigParseError(f"connection needs at least two elements: {statement!r}")
        resolved: List[Tuple[int, Element, int]] = []
        for hop in hops:
            resolved.append(self._parse_hop(hop, elements, pipeline))
        for (_, source, out_port), (in_port, destination, _) in zip(resolved, resolved[1:]):
            pipeline.connect(source, destination, source_port=out_port, destination_port=in_port)

    def _parse_hop(
        self, hop: str, elements: Dict[str, Element], pipeline: Pipeline
    ) -> Tuple[int, Element, int]:
        match = _HOP_RE.match(hop)
        if match is None:
            raise ConfigParseError(f"cannot parse connection endpoint: {hop!r}")
        in_port = int(match.group("inport") or 0)
        out_port = int(match.group("outport") or 0)
        body = match.group("body").strip()

        inline = _INLINE_RE.match(body)
        if body in elements:
            element = elements[body]
        elif inline is not None and inline.group("cls") in self._registry:
            cls = self._resolve_class(inline.group("cls"))
            args = split_config_args(inline.group("args"))
            element = cls.from_click_args(args)  # type: ignore[attr-defined]
            pipeline.add_element(element)
        elif body in self._registry:
            element = self._resolve_class(body).from_click_args([])  # type: ignore[attr-defined]
            pipeline.add_element(element)
        else:
            # Declaration inline in a connection: "name :: Class(args)".
            if "::" in body:
                element = self._parse_declaration(body, elements, pipeline)
            else:
                raise ConfigParseError(f"unknown element {body!r} in connection")
        return in_port, element, out_port


def parse_click_config(text: str, name: str = "pipeline") -> Pipeline:
    """Parse a Click-style configuration string into a pipeline."""
    return ClickConfigParser().parse(text, name=name)
