"""Stable identity of an element's verification-relevant configuration.

A Step-1 summary depends on everything the symbolic engine can observe:
the element's IR program, its configuration, and — in concrete
static-table mode — the *contents* of its static tables, which are
encoded into the summary terms.  The fingerprints here capture exactly
that, so two elements share a summary (in the in-process cache or the
on-disk store) iff symbolic execution would produce the same result for
both.

Fingerprints are memoized per element instance: programs and static
state are immutable once built, and the render walk is not free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from ..ir.stmts import If, Stmt, While
from .element import Element

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports element)
    from .pipeline import Pipeline

_MEMO_ATTRIBUTE = "_configuration_fingerprint_memo"


def _render_block(block: Sequence[Stmt]) -> str:
    """Deterministic full render of a statement block.

    ``repr`` alone is not enough: ``If``/``While`` abbreviate their nested
    blocks ("then=1 stmts"), which would make programs differing only
    inside a branch body collide.  This render recurses into every block;
    flat statements and expressions repr themselves completely.  Nothing
    rendered embeds the element instance name (``While.loop_id``, the one
    name-derived field, is deliberately excluded — it only flavours crash
    messages), so identically configured elements with different names
    render identically.
    """
    parts = []
    for stmt in block:
        if isinstance(stmt, If):
            parts.append(
                f"If({stmt.cond!r},[{_render_block(stmt.then)}],[{_render_block(stmt.orelse)}])"
            )
        elif isinstance(stmt, While):
            parts.append(
                f"While({stmt.cond!r},{stmt.max_iterations},[{_render_block(stmt.body)}])"
            )
        else:
            parts.append(repr(stmt))
    return ";".join(parts)


def program_fingerprint(element: Element) -> str:
    """A stable structural fingerprint of an element's IR program.

    Two elements get the same fingerprint iff their programs are
    structurally identical (statements, expressions, table declarations,
    port count) — instance names play no part.
    """
    program = element.program
    tables = repr(sorted(program.tables.items()))
    rendered = f"{_render_block(program.body)}|{tables}|ports={program.num_output_ports}"
    return hashlib.sha256(rendered.encode()).hexdigest()


def static_table_fingerprints(element: Element) -> Dict[str, str]:
    """Per-table content fingerprints of the element's *static* tables.

    Tables advertise their own ``fingerprint()``; an unknown static-table
    type falls back to an identity no other element or run can share —
    trading reuse (and diff precision: an opaque table always reads as
    changed) for soundness.  Private tables are havoc'd, so their contents
    are never observed and never fingerprinted.
    """
    fingerprints: Dict[str, str] = {}
    for name, table in sorted(element.state.tables().items()):
        if getattr(table, "kind", "private") != "static":
            continue
        fingerprint = getattr(table, "fingerprint", None)
        if callable(fingerprint):
            fingerprints[name] = fingerprint()
        else:
            fingerprints[name] = f"opaque:{type(table).__qualname__}:{id(table)}"
    return fingerprints


def static_state_fingerprint(element: Element) -> str:
    """Fingerprint the contents of the element's static tables.

    In concrete static-table mode the engine bakes these contents into
    the summary (``symbolic_read`` cascades), so they are part of the
    summary's identity.
    """
    return ";".join(
        f"{name}={fingerprint}"
        for name, fingerprint in static_table_fingerprints(element).items()
    )


def configuration_fingerprint(element: Element, include_static_tables: bool) -> str:
    """The full summary-identity digest of one element configuration.

    ``include_static_tables`` should be True exactly when the engine runs
    in concrete static-table mode; under havoc'd tables the contents are
    unobservable and hashing them would only forfeit reuse.
    """
    memo: Dict[bool, str] = getattr(element, _MEMO_ATTRIBUTE, None) or {}
    cached = memo.get(include_static_tables)
    if cached is not None:
        return cached
    material = "\x1f".join(
        (
            element.configuration_key(),
            program_fingerprint(element),
            static_state_fingerprint(element) if include_static_tables else "-",
        )
    )
    digest = hashlib.sha256(material.encode()).hexdigest()
    memo[include_static_tables] = digest
    setattr(element, _MEMO_ATTRIBUTE, memo)
    return digest


# -- diffable decomposition (the change-impact engine's raw material) -----------------


@dataclass(frozen=True)
class ElementFingerprintParts:
    """One element's summary identity, decomposed into independently diffable parts.

    :func:`configuration_fingerprint` collapses everything into one digest
    — perfect for cache keys, useless for explaining *what* changed.  The
    parts keep the axes separate, so a differ can tell "the IR program
    changed" from "only the contents of table ``routes`` changed".
    """

    configuration_key: str
    program: str
    #: Per-static-table content fingerprints; empty under havoc'd tables,
    #: where contents are unobservable and deliberately excluded.
    static_tables: Mapping[str, str] = field(default_factory=dict)
    #: Whether table contents participate at all (concrete static-table
    #: mode).  Kept explicit so :attr:`combined` reproduces
    #: :func:`configuration_fingerprint` byte-for-byte — a table-free
    #: element in concrete mode is not the same identity as havoc mode.
    includes_static_tables: bool = True

    @property
    def combined(self) -> str:
        """The single digest over all parts (matches :func:`configuration_fingerprint`)."""
        material = "\x1f".join(
            (
                self.configuration_key,
                self.program,
                ";".join(f"{name}={fp}" for name, fp in sorted(self.static_tables.items()))
                if self.includes_static_tables
                else "-",
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()


def element_fingerprint_parts(
    element: Element, include_static_tables: bool
) -> ElementFingerprintParts:
    """Decompose one element's configuration fingerprint into its diffable parts."""
    return ElementFingerprintParts(
        configuration_key=element.configuration_key(),
        program=program_fingerprint(element),
        static_tables=static_table_fingerprints(element) if include_static_tables else {},
        includes_static_tables=include_static_tables,
    )


def canonical_elements(pipeline: "Pipeline") -> List[Element]:
    """Elements in a name-independent canonical order.

    BFS from the entry elements (ordered by configuration fingerprint),
    expanding output ports in ascending order, so a pipeline rebuilt with
    renamed but identically configured and identically wired elements
    enumerates in the same order.  Unreachable elements (none, in a valid
    pipeline) are appended in construction order as a deterministic
    fallback.
    """
    ordered: List[Element] = []
    seen: set = set()
    frontier = sorted(
        pipeline.entry_elements(),
        key=lambda element: configuration_fingerprint(element, include_static_tables=False),
    )
    while frontier:
        element = frontier.pop(0)
        if id(element) in seen:
            continue
        seen.add(id(element))
        ordered.append(element)
        for port in range(element.num_output_ports):
            downstream = pipeline.downstream(element, port)
            if downstream is not None and id(downstream[0]) not in seen:
                frontier.append(downstream[0])
    for element in pipeline.elements:
        if id(element) not in seen:
            seen.add(id(element))
            ordered.append(element)
    return ordered


def wiring_fingerprint(pipeline: "Pipeline") -> str:
    """A structural digest of the pipeline graph, independent of element names.

    Covers which canonical slot connects to which through which ports (and
    each slot's port count) — but *not* the element configurations, so a
    differ can separate "the graph was rewired" from "an element changed
    in place".
    """
    ordered = canonical_elements(pipeline)
    slots = {id(element): index for index, element in enumerate(ordered)}
    edges = []
    for element in ordered:
        for port in range(element.num_output_ports):
            downstream = pipeline.downstream(element, port)
            if downstream is not None:
                edges.append(
                    f"{slots[id(element)]}.{port}>{slots[id(downstream[0])]}.{downstream[1]}"
                )
    rendered = "|".join(
        (
            f"slots={len(ordered)}",
            ";".join(f"{index}:{element.num_output_ports}" for index, element in enumerate(ordered)),
            ";".join(sorted(edges)),
        )
    )
    return hashlib.sha256(rendered.encode()).hexdigest()


def pipeline_fingerprint(pipeline: "Pipeline", include_static_tables: bool) -> str:
    """The full verification identity of one pipeline configuration.

    Two pipelines share a fingerprint iff they are the same graph of the
    same element configurations (and, in concrete static-table mode, the
    same table contents) — names play no part, so a no-op rename keeps the
    fingerprint.  This is the content-address the verdict store keys on:
    any change that could alter a verdict changes the fingerprint.
    """
    material = "\x1f".join(
        [wiring_fingerprint(pipeline)]
        + [
            configuration_fingerprint(element, include_static_tables=include_static_tables)
            for element in canonical_elements(pipeline)
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()
