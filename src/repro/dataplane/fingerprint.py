"""Stable identity of an element's verification-relevant configuration.

A Step-1 summary depends on everything the symbolic engine can observe:
the element's IR program, its configuration, and — in concrete
static-table mode — the *contents* of its static tables, which are
encoded into the summary terms.  The fingerprints here capture exactly
that, so two elements share a summary (in the in-process cache or the
on-disk store) iff symbolic execution would produce the same result for
both.

Fingerprints are memoized per element instance: programs and static
state are immutable once built, and the render walk is not free.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence

from ..ir.stmts import If, Stmt, While
from .element import Element

_MEMO_ATTRIBUTE = "_configuration_fingerprint_memo"


def _render_block(block: Sequence[Stmt]) -> str:
    """Deterministic full render of a statement block.

    ``repr`` alone is not enough: ``If``/``While`` abbreviate their nested
    blocks ("then=1 stmts"), which would make programs differing only
    inside a branch body collide.  This render recurses into every block;
    flat statements and expressions repr themselves completely.  Nothing
    rendered embeds the element instance name (``While.loop_id``, the one
    name-derived field, is deliberately excluded — it only flavours crash
    messages), so identically configured elements with different names
    render identically.
    """
    parts = []
    for stmt in block:
        if isinstance(stmt, If):
            parts.append(
                f"If({stmt.cond!r},[{_render_block(stmt.then)}],[{_render_block(stmt.orelse)}])"
            )
        elif isinstance(stmt, While):
            parts.append(
                f"While({stmt.cond!r},{stmt.max_iterations},[{_render_block(stmt.body)}])"
            )
        else:
            parts.append(repr(stmt))
    return ";".join(parts)


def program_fingerprint(element: Element) -> str:
    """A stable structural fingerprint of an element's IR program.

    Two elements get the same fingerprint iff their programs are
    structurally identical (statements, expressions, table declarations,
    port count) — instance names play no part.
    """
    program = element.program
    tables = repr(sorted(program.tables.items()))
    rendered = f"{_render_block(program.body)}|{tables}|ports={program.num_output_ports}"
    return hashlib.sha256(rendered.encode()).hexdigest()


def static_state_fingerprint(element: Element) -> str:
    """Fingerprint the contents of the element's static tables.

    In concrete static-table mode the engine bakes these contents into
    the summary (``symbolic_read`` cascades), so they are part of the
    summary's identity.  Tables advertise their own ``fingerprint()``;
    an unknown static-table type falls back to an identity no other
    element or run can share — trading reuse for soundness.
    """
    parts = []
    for name, table in sorted(element.state.tables().items()):
        if getattr(table, "kind", "private") != "static":
            continue  # private tables are havoc'd: contents never observed
        fingerprint = getattr(table, "fingerprint", None)
        if callable(fingerprint):
            parts.append(f"{name}={fingerprint()}")
        else:
            parts.append(f"{name}=opaque:{type(table).__qualname__}:{id(table)}")
    return ";".join(parts)


def configuration_fingerprint(element: Element, include_static_tables: bool) -> str:
    """The full summary-identity digest of one element configuration.

    ``include_static_tables`` should be True exactly when the engine runs
    in concrete static-table mode; under havoc'd tables the contents are
    unobservable and hashing them would only forfeit reuse.
    """
    memo: Dict[bool, str] = getattr(element, _MEMO_ATTRIBUTE, None) or {}
    cached = memo.get(include_static_tables)
    if cached is not None:
        return cached
    material = "\x1f".join(
        (
            element.configuration_key(),
            program_fingerprint(element),
            static_state_fingerprint(element) if include_static_tables else "-",
        )
    )
    digest = hashlib.sha256(material.encode()).hexdigest()
    memo[include_static_tables] = digest
    setattr(element, _MEMO_ATTRIBUTE, memo)
    return digest
