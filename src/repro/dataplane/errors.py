"""Exception types for the dataplane framework."""

from __future__ import annotations


class DataplaneError(Exception):
    """Base class for dataplane framework errors."""


class PacketOwnershipError(DataplaneError):
    """Raised when packet state is accessed by a non-owner.

    The paper's pipeline structure (§3) requires that packet state is
    owned by exactly one element at a time; this error is the executable
    form of that rule.
    """


class StateIsolationError(DataplaneError):
    """Raised when element state isolation is violated (e.g. writing static state)."""


class PipelineConfigurationError(DataplaneError):
    """Raised when a pipeline graph is malformed (dangling ports, cycles, duplicates)."""


class ConfigParseError(DataplaneError):
    """Raised when a Click-style configuration string cannot be parsed."""


class UnknownElementError(ConfigParseError):
    """Raised when a configuration references an element class that is not registered."""
