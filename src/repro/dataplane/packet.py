"""Packets and the ownership discipline of the paper's pipeline structure.

A :class:`Packet` bundles the raw bytes and the metadata annotations
(Click's packet annotations).  Ownership is explicit: exactly one owner at
a time may read or write the packet; transferring ownership revokes the
previous owner's access.  Violations raise :class:`PacketOwnershipError`
rather than silently sharing state — the framework enforces the model the
verification approach relies on.
"""

from __future__ import annotations

from typing import Dict, Optional

from .errors import PacketOwnershipError


class Packet:
    """A packet with byte content, metadata annotations and an explicit owner."""

    _counter = 0

    def __init__(
        self,
        data: bytes | bytearray = b"",
        metadata: Optional[Dict[str, int]] = None,
        owner: Optional[object] = None,
    ) -> None:
        Packet._counter += 1
        self.packet_id = Packet._counter
        self._data = bytearray(data)
        self._metadata: Dict[str, int] = dict(metadata or {})
        self._owner: Optional[object] = owner
        self._alive = True

    # -- ownership ---------------------------------------------------------------------

    @property
    def owner(self) -> Optional[object]:
        return self._owner

    def transfer(self, from_owner: Optional[object], to_owner: Optional[object]) -> "Packet":
        """Atomically transfer ownership; only the current owner may transfer."""
        self._check_alive()
        if self._owner is not None and self._owner is not from_owner:
            raise PacketOwnershipError(
                f"packet {self.packet_id} is owned by {self._owner!r}; "
                f"{from_owner!r} cannot transfer it"
            )
        self._owner = to_owner
        return self

    def acquire(self, owner: object) -> "Packet":
        """Claim an unowned packet (e.g. freshly created by a source element)."""
        self._check_alive()
        if self._owner is not None and self._owner is not owner:
            raise PacketOwnershipError(
                f"packet {self.packet_id} is already owned by {self._owner!r}"
            )
        self._owner = owner
        return self

    def release(self, owner: object) -> None:
        """Give up ownership without handing the packet to anyone."""
        self._check_access(owner)
        self._owner = None

    def kill(self, owner: Optional[object] = None) -> None:
        """Destroy the packet (drop).  Further access raises."""
        if owner is not None:
            self._check_access(owner)
        self._alive = False
        self._owner = None

    @property
    def alive(self) -> bool:
        return self._alive

    def _check_alive(self) -> None:
        if not self._alive:
            raise PacketOwnershipError(f"packet {self.packet_id} has been dropped")

    def _check_access(self, accessor: Optional[object]) -> None:
        self._check_alive()
        if self._owner is not None and accessor is not self._owner:
            raise PacketOwnershipError(
                f"packet {self.packet_id} is owned by {self._owner!r}; "
                f"{accessor!r} may not access it"
            )

    # -- data access (owner-checked) ----------------------------------------------------

    def data(self, accessor: Optional[object] = None) -> bytearray:
        """The raw packet bytes (mutable).  Only the owner may obtain them."""
        self._check_access(accessor if accessor is not None else self._owner)
        return self._data

    def set_data(self, data: bytes | bytearray, accessor: Optional[object] = None) -> None:
        self._check_access(accessor if accessor is not None else self._owner)
        self._data = bytearray(data)

    def metadata(self, accessor: Optional[object] = None) -> Dict[str, int]:
        """The metadata annotation map (mutable).  Only the owner may obtain it."""
        self._check_access(accessor if accessor is not None else self._owner)
        return self._metadata

    def __len__(self) -> int:
        return len(self._data)

    def clone(self) -> "Packet":
        """An unowned deep copy (used by Tee-style elements and test harnesses)."""
        self._check_alive()
        return Packet(bytes(self._data), dict(self._metadata), owner=None)

    def __repr__(self) -> str:
        owner = getattr(self._owner, "name", self._owner)
        return (
            f"Packet(id={self.packet_id}, len={len(self._data)}, "
            f"owner={owner!r}, alive={self._alive})"
        )
