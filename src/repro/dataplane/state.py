"""Element state: private tables, static tables, and their access discipline.

The paper's pipeline structure distinguishes three kinds of state
(§3 "Pipeline Structure"):

* **packet state** — carried by :class:`repro.dataplane.packet.Packet`;
* **private state** — mutable, owned by one element (NetFlow cache, NAT map);
* **static state** — read-only configuration shared by all elements
  (forwarding tables, filter rules).

This module implements the table abstractions behind private and static
state.  Every table exposes exact-match ``read``/``write``; tables that
have a meaningful symbolic encoding (small static tables, LPM tables)
additionally implement ``symbolic_read`` so the verifier can reason about
a *specific* configuration when the property demands it.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

from ..ir.exprs import VALUE_MASK
from ..net.lpm import DirectIndexLPM, RouteEntry, TrieLPM
from .errors import StateIsolationError


class Table(Protocol):
    """Protocol every table implementation satisfies."""

    #: "private" (mutable) or "static" (read-only).
    kind: str

    def read(self, key: int) -> Tuple[int, bool]:
        """Return (value, found)."""
        ...

    def write(self, key: int, value: int) -> None:
        """Store a value; static tables raise."""
        ...


class ExactMatchTable:
    """A mutable exact-match table backed by a dict (private state)."""

    kind = "private"

    def __init__(self, initial: Optional[Dict[int, int]] = None, capacity: Optional[int] = None) -> None:
        self._entries: Dict[int, int] = dict(initial or {})
        self._capacity = capacity

    def read(self, key: int) -> Tuple[int, bool]:
        if key in self._entries:
            return self._entries[key] & VALUE_MASK, True
        return 0, False

    def write(self, key: int, value: int) -> None:
        if (
            self._capacity is not None
            and key not in self._entries
            and len(self._entries) >= self._capacity
        ):
            # Pre-allocated table is full: evict the oldest entry (FIFO), the
            # behaviour of a fixed-size flow cache.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = value & VALUE_MASK

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()

    def clear(self) -> None:
        self._entries.clear()


class StaticExactTable:
    """A read-only exact-match table (static state)."""

    kind = "static"

    def __init__(self, entries: Optional[Dict[int, int]] = None) -> None:
        self._entries: Dict[int, int] = dict(entries or {})

    def read(self, key: int) -> Tuple[int, bool]:
        if key in self._entries:
            return self._entries[key] & VALUE_MASK, True
        return 0, False

    def write(self, key: int, value: int) -> None:
        raise StateIsolationError("static tables are read-only")

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()

    def fingerprint(self) -> str:
        """Stable content identity (part of the element's summary-cache key)."""
        entries = ",".join(f"{key}:{value}" for key, value in sorted(self._entries.items()))
        return f"exact[{entries}]"

    def symbolic_read(self, key_term, smt):
        """Encode the table as an if-then-else cascade over its entries.

        ``smt`` is the :mod:`repro.smt` module (passed in to avoid a hard
        dependency from the dataplane onto the solver).  Returns
        ``(value_term, found_term)``.
        """
        value_term = smt.BitVecVal(0, 64)
        found_term = smt.BoolVal(False)
        for key, value in self._entries.items():
            condition = smt.Eq(key_term, smt.BitVecVal(key, 64))
            value_term = smt.If(condition, smt.BitVecVal(value & VALUE_MASK, 64), value_term)
            found_term = smt.Or(condition, found_term)
        return value_term, found_term


class LpmTable:
    """Static longest-prefix-match table adapter for the ``IPLookup`` element.

    Keys are 32-bit destination addresses; the stored value is the output
    port.  Concrete reads delegate to the underlying LPM structure
    (:class:`TrieLPM` or :class:`DirectIndexLPM`); symbolic reads encode
    the route set as a cascade ordered by decreasing prefix length, which
    is exactly longest-prefix-match semantics.
    """

    kind = "static"

    def __init__(self, lpm: TrieLPM | DirectIndexLPM | None = None) -> None:
        self._lpm = lpm if lpm is not None else TrieLPM()

    @property
    def lpm(self) -> TrieLPM | DirectIndexLPM:
        return self._lpm

    def add_route(self, prefix: str, port: int, next_hop: Optional[str] = None) -> RouteEntry:
        return self._lpm.add_route(prefix, port, next_hop)

    def read(self, key: int) -> Tuple[int, bool]:
        entry = self._lpm.lookup(key & 0xFFFFFFFF)
        if entry is None:
            return 0, False
        return entry.port & VALUE_MASK, True

    def write(self, key: int, value: int) -> None:
        raise StateIsolationError("the forwarding table is static state and is read-only")

    def fingerprint(self) -> str:
        """Stable content identity (part of the element's summary-cache key)."""
        routes = sorted(
            (int(entry.prefix.network), entry.prefix.length, entry.port)
            for entry in self._lpm.routes()
        )
        rendered = ",".join(f"{network}/{length}>{port}" for network, length, port in routes)
        return f"lpm[{rendered}]"

    def symbolic_read(self, key_term, smt):
        """Longest-prefix-match as a cascade ordered by decreasing prefix length."""
        routes = sorted(self._lpm.routes(), key=lambda entry: entry.prefix.length)
        value_term = smt.BitVecVal(0, 64)
        found_term = smt.BoolVal(False)
        address = smt.Extract(31, 0, key_term)
        # Build from least specific to most specific so the most specific wins.
        for entry in routes:
            mask = entry.prefix.mask()
            condition = smt.Eq(
                address & smt.BitVecVal(mask, 32),
                smt.BitVecVal(int(entry.prefix.network) & mask, 32),
            )
            value_term = smt.If(condition, smt.BitVecVal(entry.port & VALUE_MASK, 64), value_term)
            found_term = smt.Or(condition, found_term)
        return value_term, found_term


class ElementState:
    """Per-element state handle implementing the interpreter's table protocol.

    Dispatches reads and writes by table name, enforcing that static
    tables are never written.  One instance exists per element instance —
    private state is never shared across elements, by construction.
    """

    def __init__(self, tables: Optional[Dict[str, Table]] = None) -> None:
        self._tables: Dict[str, Table] = dict(tables or {})

    def add_table(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise StateIsolationError(f"table {name!r} already exists on this element")
        self._tables[name] = table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise StateIsolationError(f"element has no table named {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Dict[str, Table]:
        return dict(self._tables)

    # StateAccess protocol (used by the IR interpreter).
    def table_read(self, table: str, key: int) -> Tuple[int, bool]:
        return self.table(table).read(key)

    def table_write(self, table: str, key: int, value: int) -> None:
        target = self.table(table)
        if getattr(target, "kind", "private") == "static":
            raise StateIsolationError(f"table {table!r} is static state and is read-only")
        target.write(key, value)
