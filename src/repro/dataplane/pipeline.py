"""Pipelines: directed graphs of elements connected port-to-port."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .element import Element
from .errors import PipelineConfigurationError


@dataclass(frozen=True)
class Connection:
    """A directed edge from (source element, output port) to (destination, input port)."""

    source: Element
    source_port: int
    destination: Element
    destination_port: int = 0

    def __str__(self) -> str:
        return (
            f"{self.source.name}[{self.source_port}] -> "
            f"[{self.destination_port}]{self.destination.name}"
        )


class Pipeline:
    """A directed acyclic graph of elements.

    The graph is what the verifier reasons about (it enumerates paths
    through it) and what the driver executes (it routes packets along it).
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._elements: List[Element] = []
        self._by_name: Dict[str, Element] = {}
        self._connections: List[Connection] = []
        # (source element name, port) -> connection, for O(1) routing.
        self._routing: Dict[Tuple[str, int], Connection] = {}

    # -- construction ---------------------------------------------------------------------

    def add_element(self, element: Element) -> Element:
        if element.name in self._by_name:
            if self._by_name[element.name] is element:
                return element
            raise PipelineConfigurationError(f"duplicate element name {element.name!r}")
        self._elements.append(element)
        self._by_name[element.name] = element
        return element

    def connect(
        self,
        source: Element,
        destination: Element,
        source_port: int = 0,
        destination_port: int = 0,
    ) -> Connection:
        """Connect an output port of ``source`` to an input port of ``destination``."""
        self.add_element(source)
        self.add_element(destination)
        if source_port >= source.num_output_ports:
            raise PipelineConfigurationError(
                f"{source.name} has {source.num_output_ports} output ports; "
                f"cannot connect port {source_port}"
            )
        key = (source.name, source_port)
        if key in self._routing:
            raise PipelineConfigurationError(
                f"output port {source_port} of {source.name} is already connected"
            )
        connection = Connection(source, source_port, destination, destination_port)
        self._connections.append(connection)
        self._routing[key] = connection
        return connection

    @classmethod
    def chain(cls, elements: Sequence[Element], name: str = "pipeline") -> "Pipeline":
        """Build a linear pipeline connecting port 0 of each element to the next."""
        pipeline = cls(name=name)
        for element in elements:
            pipeline.add_element(element)
        for upstream, downstream in zip(elements, elements[1:]):
            pipeline.connect(upstream, downstream)
        return pipeline

    # -- inspection ------------------------------------------------------------------------

    @property
    def elements(self) -> List[Element]:
        return list(self._elements)

    @property
    def connections(self) -> List[Connection]:
        return list(self._connections)

    def element(self, name: str) -> Element:
        if name not in self._by_name:
            raise PipelineConfigurationError(f"no element named {name!r} in pipeline {self.name!r}")
        return self._by_name[name]

    def downstream(self, element: Element, port: int) -> Optional[Tuple[Element, int]]:
        """The (element, input port) connected to ``element``'s output ``port``, if any."""
        connection = self._routing.get((element.name, port))
        if connection is None:
            return None
        return connection.destination, connection.destination_port

    def entry_elements(self) -> List[Element]:
        """Elements with no incoming connections (packet entry points)."""
        destinations = {connection.destination.name for connection in self._connections}
        return [element for element in self._elements if element.name not in destinations]

    def exit_elements(self) -> List[Element]:
        """Elements with at least one unconnected output port."""
        exits = []
        for element in self._elements:
            for port in range(element.num_output_ports):
                if (element.name, port) not in self._routing:
                    exits.append(element)
                    break
        return exits

    def successors(self, element: Element) -> Iterator[Element]:
        for port in range(element.num_output_ports):
            downstream = self.downstream(element, port)
            if downstream is not None:
                yield downstream[0]

    # -- validation --------------------------------------------------------------------------

    def validate(self) -> None:
        """Check that the pipeline is a DAG and that port references are sane."""
        if not self._elements:
            raise PipelineConfigurationError("pipeline has no elements")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}  # 0=unvisited, 1=in progress, 2=done

        def visit(element: Element, trail: List[str]) -> None:
            status = state.get(element.name, 0)
            if status == 1:
                cycle = " -> ".join(trail + [element.name])
                raise PipelineConfigurationError(f"pipeline contains a cycle: {cycle}")
            if status == 2:
                return
            state[element.name] = 1
            for successor in self.successors(element):
                visit(successor, trail + [element.name])
            state[element.name] = 2

        for element in self._elements:
            visit(element, [])

    # -- path enumeration (used by the verifier) -----------------------------------------------

    def element_paths(
        self, entry: Optional[Element] = None, max_paths: int = 100_000
    ) -> List[List[Tuple[Element, int]]]:
        """Enumerate all element-level paths from ``entry`` to pipeline exits.

        Each path is a list of (element, output port taken) pairs; the last
        element's port is the port the packet finally leaves on (or the
        port that is unconnected).  This is the pipeline-path structure the
        Step-2 composition engine walks.
        """
        entries = [entry] if entry is not None else self.entry_elements()
        paths: List[List[Tuple[Element, int]]] = []

        def walk(element: Element, prefix: List[Tuple[Element, int]]) -> None:
            if len(paths) >= max_paths:
                raise PipelineConfigurationError(
                    f"more than {max_paths} element paths; refusing to enumerate"
                )
            for port in range(element.num_output_ports):
                downstream = self.downstream(element, port)
                step = prefix + [(element, port)]
                if downstream is None:
                    paths.append(step)
                else:
                    walk(downstream[0], step)

        for start in entries:
            walk(start, [])
        return paths

    def __repr__(self) -> str:
        return (
            f"Pipeline({self.name!r}, {len(self._elements)} elements, "
            f"{len(self._connections)} connections)"
        )
