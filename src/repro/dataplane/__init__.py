"""``repro.dataplane`` — the Click-like software dataplane framework.

Pipelines are directed graphs of :class:`Element` objects; each element's
per-packet behaviour is an IR program (see :mod:`repro.ir`) executed by
the concrete interpreter at runtime and analysed symbolically by the
verifier.  The framework enforces the paper's state model: packet state
is owned by one element at a time, private state never changes ownership,
and static state is read-only.
"""

from .config import ClickConfigParser, parse_click_config, split_config_args
from .driver import DriverStatistics, HopRecord, PacketTrace, PipelineDriver
from .element import ELEMENT_REGISTRY, Element, register_element
from .errors import (
    ConfigParseError,
    DataplaneError,
    PacketOwnershipError,
    PipelineConfigurationError,
    StateIsolationError,
    UnknownElementError,
)
from .packet import Packet
from .pipeline import Connection, Pipeline
from .state import (
    ElementState,
    ExactMatchTable,
    LpmTable,
    StaticExactTable,
    Table,
)

__all__ = [
    "ClickConfigParser",
    "Connection",
    "ConfigParseError",
    "DataplaneError",
    "DriverStatistics",
    "ELEMENT_REGISTRY",
    "Element",
    "ElementState",
    "ExactMatchTable",
    "HopRecord",
    "LpmTable",
    "Packet",
    "PacketOwnershipError",
    "PacketTrace",
    "Pipeline",
    "PipelineConfigurationError",
    "PipelineDriver",
    "StateIsolationError",
    "StaticExactTable",
    "Table",
    "UnknownElementError",
    "parse_click_config",
    "register_element",
    "split_config_args",
]
