"""The element base class: a packet-processing stage of the pipeline.

An element's behaviour is an IR program (:meth:`Element.build_program`)
plus its state tables (:meth:`Element.create_state`).  The same program is
run concretely here and symbolically by the verifier, so what you deploy
is what you prove about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..ir.interpreter import ExecutionResult, Interpreter, Outcome
from ..ir.program import ElementProgram
from ..ir.validate import validate_program
from .errors import DataplaneError
from .packet import Packet
from .state import ElementState

#: Registry of element classes by name, used by the Click-style config parser.
ELEMENT_REGISTRY: Dict[str, Type["Element"]] = {}


def register_element(cls: Type["Element"]) -> Type["Element"]:
    """Class decorator adding an element class (and its aliases) to the registry."""
    names = [cls.__name__] + list(getattr(cls, "click_aliases", ()))
    for name in names:
        ELEMENT_REGISTRY[name] = cls
    return cls


class Element:
    """Base class for packet-processing elements.

    Subclasses implement :meth:`build_program` (their per-packet IR) and
    optionally :meth:`create_state` (their private/static tables) and
    :meth:`from_click_args` (their Click configuration-string parsing).
    """

    #: Number of output ports the element exposes.
    num_output_ports: int = 1
    #: Number of input ports (informational; the driver only checks connectivity).
    num_input_ports: int = 1
    #: Alternative names accepted by the configuration parser.
    click_aliases: Sequence[str] = ()

    _instance_counter = 0

    def __init__(self, name: Optional[str] = None) -> None:
        Element._instance_counter += 1
        self.name = name or f"{type(self).__name__}_{Element._instance_counter}"
        self._program: Optional[ElementProgram] = None
        self._state: Optional[ElementState] = None
        self._interpreter = Interpreter()
        # Simple built-in counters (themselves private state).
        self.packets_processed = 0
        self.packets_emitted = 0
        self.packets_dropped = 0
        self.packets_crashed = 0
        self.instructions_executed = 0

    # -- pieces supplied by subclasses ---------------------------------------------------

    def build_program(self) -> ElementProgram:
        """Build this element's per-packet IR program."""
        raise NotImplementedError(f"{type(self).__name__} must implement build_program()")

    def create_state(self) -> ElementState:
        """Create this element's state tables (default: no tables)."""
        return ElementState()

    @classmethod
    def from_click_args(cls, args: List[str], name: Optional[str] = None) -> "Element":
        """Construct the element from Click-style configuration arguments.

        The default accepts only an empty argument list; elements with
        configuration override this.
        """
        if args and any(arg.strip() for arg in args):
            raise DataplaneError(
                f"{cls.__name__} takes no configuration arguments, got {args!r}"
            )
        return cls(name=name)  # type: ignore[call-arg]

    # -- derived, cached views ------------------------------------------------------------

    @property
    def program(self) -> ElementProgram:
        """The element's validated IR program (built once, cached)."""
        if self._program is None:
            program = self.build_program()
            validate_program(program).raise_if_invalid()
            self._program = program
        return self._program

    @property
    def state(self) -> ElementState:
        """The element's private/static state (created once, cached)."""
        if self._state is None:
            self._state = self.create_state()
        return self._state

    def configuration_key(self) -> str:
        """A string identifying the element class plus configuration.

        Used by the verifier's summary cache: two elements with the same
        configuration key share Step-1 results (the paper's "process each
        element once" point).  The default key is the class name plus the
        program's structural fingerprint; subclasses with configuration
        that changes the program should already be covered because the
        program is rebuilt from the configuration.
        """
        return f"{type(self).__name__}:{self.program.statement_count()}:{self.program.branch_count()}"

    # -- packet processing ----------------------------------------------------------------

    def process(self, packet: Packet) -> ExecutionResult:
        """Run the element on a packet it owns; apply the results to the packet.

        The packet's bytes and metadata are updated in place on emit.  On
        drop or crash the packet is killed.  The caller (usually the
        pipeline driver) routes the packet onward based on the result.
        """
        data = packet.data(self)
        metadata = packet.metadata(self)
        result = self._interpreter.run(self.program, data, metadata, self.state)

        self.packets_processed += 1
        self.instructions_executed += result.instructions
        if result.outcome == Outcome.EMIT:
            self.packets_emitted += 1
            packet.set_data(result.data, self)
            packet.metadata(self).clear()
            packet.metadata(self).update(result.metadata)
        elif result.outcome == Outcome.DROP:
            self.packets_dropped += 1
            packet.kill(self)
        else:
            self.packets_crashed += 1
            packet.kill(self)
        return result

    def reset_counters(self) -> None:
        self.packets_processed = 0
        self.packets_emitted = 0
        self.packets_dropped = 0
        self.packets_crashed = 0
        self.instructions_executed = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
