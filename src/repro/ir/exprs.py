"""Expressions of the element IR.

Every expression evaluates to a 64-bit unsigned value.  Packet-field loads
are big-endian and zero-extended; comparison operators yield 0 or 1.
Expressions support Python operator overloading so element programs read
naturally (``ttl - 1``, ``ihl < 5``); the builder DSL in
:mod:`repro.ir.builder` relies on this.
"""

from __future__ import annotations

from typing import Tuple, Union

VALUE_WIDTH = 64
VALUE_MASK = (1 << VALUE_WIDTH) - 1

ExprLike = Union["Expr", int]


class BinaryOperator:
    """Operator names for :class:`BinOp` (all operate on 64-bit unsigned values)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    ALL = frozenset(
        {ADD, SUB, MUL, UDIV, UREM, AND, OR, XOR, SHL, LSHR, EQ, NE, ULT, ULE, UGT, UGE}
    )
    COMPARISONS = frozenset({EQ, NE, ULT, ULE, UGT, UGE})
    #: Operators whose symbolic execution may introduce a crash branch.
    MAY_TRAP = frozenset({UDIV, UREM})


class UnaryOperator:
    """Operator names for :class:`UnOp`."""

    NOT = "not"        # bitwise complement
    NEG = "neg"        # two's complement negation
    LOGNOT = "lognot"  # 1 if operand is zero else 0

    ALL = frozenset({NOT, NEG, LOGNOT})


def as_expr(value: ExprLike) -> "Expr":
    """Coerce an int literal into a :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as an IR expression")


class Expr:
    """Base class for IR expressions (immutable)."""

    __slots__ = ()

    # -- operator sugar ----------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.ADD, self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.ADD, as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.SUB, self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.SUB, as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.MUL, self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.MUL, as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.UDIV, self, as_expr(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.UREM, self, as_expr(other))

    def __and__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.AND, self, as_expr(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.AND, as_expr(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.OR, self, as_expr(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.OR, as_expr(other), self)

    def __xor__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.XOR, self, as_expr(other))

    def __rxor__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.XOR, as_expr(other), self)

    def __lshift__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.SHL, self, as_expr(other))

    def __rshift__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.LSHR, self, as_expr(other))

    def __invert__(self) -> "Expr":
        return UnOp(UnaryOperator.NOT, self)

    def __neg__(self) -> "Expr":
        return UnOp(UnaryOperator.NEG, self)

    # Comparisons build comparison expressions (0/1-valued).
    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp(BinaryOperator.EQ, self, as_expr(other))  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp(BinaryOperator.NE, self, as_expr(other))  # type: ignore[arg-type]

    def __lt__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.ULT, self, as_expr(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.ULE, self, as_expr(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.UGT, self, as_expr(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return BinOp(BinaryOperator.UGE, self, as_expr(other))

    def __hash__(self) -> int:
        return id(self)

    def logical_not(self) -> "Expr":
        """1 if this expression is zero, else 0."""
        return UnOp(UnaryOperator.LOGNOT, self)

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def node_count(self) -> int:
        """Number of expression nodes (used for instruction accounting)."""
        return 1 + sum(child.node_count() for child in self.children())


class Const(Expr):
    """A 64-bit unsigned constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value & VALUE_MASK

    def __repr__(self) -> str:
        return f"Const({self.value:#x})" if self.value > 9 else f"Const({self.value})"


class Reg(Expr):
    """A read of a named local register."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Reg({self.name!r})"


class LoadField(Expr):
    """Big-endian read of ``nbytes`` bytes from the packet at ``offset``.

    Reading past the end of the packet is a crash (out-of-bounds access),
    which is exactly what the crash-freedom property hunts for.
    """

    __slots__ = ("offset", "nbytes")

    def __init__(self, offset: ExprLike, nbytes: int) -> None:
        if not isinstance(nbytes, int) or not 1 <= nbytes <= 8:
            raise ValueError(f"LoadField supports 1..8 bytes, got {nbytes}")
        self.offset = as_expr(offset)
        self.nbytes = nbytes

    def children(self) -> Tuple[Expr, ...]:
        return (self.offset,)

    def __repr__(self) -> str:
        return f"LoadField({self.offset!r}, {self.nbytes})"


class PacketLength(Expr):
    """The current length of the packet in bytes."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "PacketLength()"


class LoadMeta(Expr):
    """Read a metadata annotation (64-bit; 0 when the key was never set)."""

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key

    def __repr__(self) -> str:
        return f"LoadMeta({self.key!r})"


class BinOp(Expr):
    """A binary operation over two 64-bit values."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: ExprLike, right: ExprLike) -> None:
        if op not in BinaryOperator.ALL:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = as_expr(left)
        self.right = as_expr(right)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnOp(Expr):
    """A unary operation over a 64-bit value."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: ExprLike) -> None:
        if op not in UnaryOperator.ALL:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnOp({self.op!r}, {self.operand!r})"
