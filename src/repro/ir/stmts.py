"""Statements of the element IR.

A statement list is the body of an element program.  Control flow is
structured (``If`` / bounded ``While``), which keeps both the concrete
interpreter and the symbolic executor simple: there are no joins to
reason about, and loop bodies are directly available to the loop
decomposer (§3 "Element Verification" of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .exprs import Expr, ExprLike, as_expr


class Stmt:
    """Base class for IR statements (immutable after construction)."""

    __slots__ = ()

    def children_blocks(self) -> Tuple[Sequence["Stmt"], ...]:
        """Nested statement blocks (for If / While)."""
        return ()

    def statement_count(self) -> int:
        """Total number of statements including nested blocks (static size metric)."""
        total = 1
        for block in self.children_blocks():
            total += sum(stmt.statement_count() for stmt in block)
        return total


class Assign(Stmt):
    """``dst := expr`` — write a local register."""

    __slots__ = ("dst", "expr")

    def __init__(self, dst: str, expr: ExprLike) -> None:
        self.dst = dst
        self.expr = as_expr(expr)

    def __repr__(self) -> str:
        return f"Assign({self.dst!r}, {self.expr!r})"


class StoreField(Stmt):
    """Big-endian write of the low ``nbytes`` bytes of ``value`` into the packet."""

    __slots__ = ("offset", "nbytes", "value")

    def __init__(self, offset: ExprLike, nbytes: int, value: ExprLike) -> None:
        if not isinstance(nbytes, int) or not 1 <= nbytes <= 8:
            raise ValueError(f"StoreField supports 1..8 bytes, got {nbytes}")
        self.offset = as_expr(offset)
        self.nbytes = nbytes
        self.value = as_expr(value)

    def __repr__(self) -> str:
        return f"StoreField({self.offset!r}, {self.nbytes}, {self.value!r})"


class SetMeta(Stmt):
    """Write a metadata annotation on the packet."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: ExprLike) -> None:
        self.key = key
        self.value = as_expr(value)

    def __repr__(self) -> str:
        return f"SetMeta({self.key!r}, {self.value!r})"


class If(Stmt):
    """Structured conditional: executes ``then`` when cond is non-zero, else ``orelse``."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(
        self, cond: ExprLike, then: Sequence[Stmt], orelse: Sequence[Stmt] = ()
    ) -> None:
        self.cond = as_expr(cond)
        self.then: Tuple[Stmt, ...] = tuple(then)
        self.orelse: Tuple[Stmt, ...] = tuple(orelse)

    def children_blocks(self) -> Tuple[Sequence[Stmt], ...]:
        return (self.then, self.orelse)

    def __repr__(self) -> str:
        return f"If({self.cond!r}, then={len(self.then)} stmts, else={len(self.orelse)} stmts)"


class While(Stmt):
    """Bounded loop: executes ``body`` while cond is non-zero, at most ``max_iterations`` times.

    Exceeding ``max_iterations`` is reported as a crash ("runaway loop") —
    the bounded-latency property the paper targets cannot hold for a loop
    without a static bound, so the bound is part of the program.
    """

    __slots__ = ("cond", "body", "max_iterations", "loop_id")

    def __init__(
        self,
        cond: ExprLike,
        body: Sequence[Stmt],
        max_iterations: int,
        loop_id: Optional[str] = None,
    ) -> None:
        if max_iterations <= 0:
            raise ValueError("While.max_iterations must be positive")
        self.cond = as_expr(cond)
        self.body: Tuple[Stmt, ...] = tuple(body)
        self.max_iterations = max_iterations
        self.loop_id = loop_id or f"loop@{id(self):x}"

    def children_blocks(self) -> Tuple[Sequence[Stmt], ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return (
            f"While({self.cond!r}, body={len(self.body)} stmts, "
            f"max_iterations={self.max_iterations})"
        )


class Assert(Stmt):
    """Crash with ``message`` when the condition evaluates to zero."""

    __slots__ = ("cond", "message")

    def __init__(self, cond: ExprLike, message: str = "assertion failed") -> None:
        self.cond = as_expr(cond)
        self.message = message

    def __repr__(self) -> str:
        return f"Assert({self.cond!r}, {self.message!r})"


class Emit(Stmt):
    """Terminate processing and hand the packet to output port ``port``."""

    __slots__ = ("port",)

    def __init__(self, port: int = 0) -> None:
        if port < 0:
            raise ValueError("output port must be non-negative")
        self.port = port

    def __repr__(self) -> str:
        return f"Emit({self.port})"


class Drop(Stmt):
    """Terminate processing and discard the packet."""

    __slots__ = ("reason",)

    def __init__(self, reason: str = "") -> None:
        self.reason = reason

    def __repr__(self) -> str:
        return f"Drop({self.reason!r})"


class PushHead(Stmt):
    """Prepend ``nbytes`` zero bytes to the packet (e.g. encapsulation)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("PushHead needs a positive byte count")
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return f"PushHead({self.nbytes})"


class PullHead(Stmt):
    """Remove the first ``nbytes`` bytes of the packet (e.g. decapsulation).

    Pulling more bytes than the packet holds is a crash.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("PullHead needs a positive byte count")
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return f"PullHead({self.nbytes})"


class TableRead(Stmt):
    """Read ``table[key]`` into registers ``dst_value`` and ``dst_found`` (0/1)."""

    __slots__ = ("table", "key", "dst_value", "dst_found")

    def __init__(self, table: str, key: ExprLike, dst_value: str, dst_found: str) -> None:
        self.table = table
        self.key = as_expr(key)
        self.dst_value = dst_value
        self.dst_found = dst_found

    def __repr__(self) -> str:
        return (
            f"TableRead({self.table!r}, {self.key!r}, value->{self.dst_value!r}, "
            f"found->{self.dst_found!r})"
        )


class TableWrite(Stmt):
    """Write ``table[key] := value`` in the element's private state."""

    __slots__ = ("table", "key", "value")

    def __init__(self, table: str, key: ExprLike, value: ExprLike) -> None:
        self.table = table
        self.key = as_expr(key)
        self.value = as_expr(value)

    def __repr__(self) -> str:
        return f"TableWrite({self.table!r}, {self.key!r}, {self.value!r})"


class Nop(Stmt):
    """Does nothing (placeholder produced by some rewrites; still counted as executed)."""

    __slots__ = ("comment",)

    def __init__(self, comment: str = "") -> None:
        self.comment = comment

    def __repr__(self) -> str:
        return f"Nop({self.comment!r})"


def block_statement_count(block: Sequence[Stmt]) -> int:
    """Static statement count of a block, including nested blocks."""
    return sum(stmt.statement_count() for stmt in block)


def collect_statements(block: Sequence[Stmt]) -> List[Stmt]:
    """Flatten a block into a list of all statements (pre-order, including nested)."""
    result: List[Stmt] = []
    for stmt in block:
        result.append(stmt)
        for child in stmt.children_blocks():
            result.extend(collect_statements(child))
    return result
