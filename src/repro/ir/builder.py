"""A fluent builder DSL for element programs.

Element implementations use this to write their per-packet code in a
readable, structured style::

    p = ProgramBuilder("DecIPTTL")
    ttl = p.let("ttl", p.load(8, 1))
    with p.if_(ttl <= 1):
        p.drop("ttl expired")
    p.store(8, 1, ttl - 1)
    p.emit(0)
    program = p.build()

Control-flow context managers (``if_``/``else_``/``while_``) push and pop
statement sinks so nested blocks end up in the right place.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .errors import BuilderError
from .exprs import Const, Expr, ExprLike, LoadField, LoadMeta, PacketLength, Reg
from .program import ElementProgram, TableDeclaration
from .stmts import (
    Assert,
    Assign,
    Drop,
    Emit,
    If,
    Nop,
    PullHead,
    PushHead,
    SetMeta,
    Stmt,
    StoreField,
    TableRead,
    TableWrite,
    While,
)


class ProgramBuilder:
    """Accumulates statements for one element program."""

    def __init__(self, name: str, num_output_ports: int = 1, description: str = "") -> None:
        self.name = name
        self.num_output_ports = num_output_ports
        self.description = description
        self._tables: Dict[str, TableDeclaration] = {}
        self._blocks: List[List[Stmt]] = [[]]
        self._register_counter = 0
        self._loop_counter = 0
        self._last_if: Optional[If] = None

    # -- state declarations ---------------------------------------------------------

    def declare_table(self, name: str, kind: str = "private", description: str = "") -> str:
        """Declare a private or static table used by the program."""
        if name in self._tables:
            raise BuilderError(f"table {name!r} declared twice")
        self._tables[name] = TableDeclaration(name=name, kind=kind, description=description)
        return name

    # -- expressions -----------------------------------------------------------------

    def load(self, offset: ExprLike, nbytes: int) -> Expr:
        """Big-endian packet-field read."""
        return LoadField(offset, nbytes)

    def packet_length(self) -> Expr:
        return PacketLength()

    def meta(self, key: str) -> Expr:
        """Read a metadata annotation."""
        return LoadMeta(key)

    def const(self, value: int) -> Expr:
        return Const(value)

    def reg(self, name: str) -> Expr:
        """Reference an already-assigned register."""
        return Reg(name)

    # -- simple statements ------------------------------------------------------------

    def _emit_stmt(self, stmt: Stmt) -> Stmt:
        self._blocks[-1].append(stmt)
        return stmt

    def let(self, name: str, expr: ExprLike) -> Expr:
        """Assign a named register and return a reference to it."""
        self._emit_stmt(Assign(name, expr))
        return Reg(name)

    def temp(self, expr: ExprLike, hint: str = "t") -> Expr:
        """Assign a fresh temporary register and return a reference to it."""
        self._register_counter += 1
        name = f"_{hint}{self._register_counter}"
        return self.let(name, expr)

    def assign(self, name: str, expr: ExprLike) -> None:
        """Re-assign an existing register (or create it) without returning a reference."""
        self._emit_stmt(Assign(name, expr))

    def store(self, offset: ExprLike, nbytes: int, value: ExprLike) -> None:
        """Big-endian packet-field write."""
        self._emit_stmt(StoreField(offset, nbytes, value))

    def set_meta(self, key: str, value: ExprLike) -> None:
        self._emit_stmt(SetMeta(key, value))

    def assert_(self, cond: ExprLike, message: str = "assertion failed") -> None:
        self._emit_stmt(Assert(cond, message))

    def emit(self, port: int = 0) -> None:
        if port >= self.num_output_ports:
            raise BuilderError(
                f"element {self.name!r} declares {self.num_output_ports} output ports; "
                f"cannot emit on port {port}"
            )
        self._emit_stmt(Emit(port))

    def drop(self, reason: str = "") -> None:
        self._emit_stmt(Drop(reason))

    def nop(self, comment: str = "") -> None:
        self._emit_stmt(Nop(comment))

    def push_head(self, nbytes: int) -> None:
        self._emit_stmt(PushHead(nbytes))

    def pull_head(self, nbytes: int) -> None:
        self._emit_stmt(PullHead(nbytes))

    def table_read(self, table: str, key: ExprLike, value_reg: str, found_reg: str) -> tuple[Expr, Expr]:
        """Read a table; returns (value, found) register references."""
        self._require_table(table)
        self._emit_stmt(TableRead(table, key, value_reg, found_reg))
        return Reg(value_reg), Reg(found_reg)

    def table_write(self, table: str, key: ExprLike, value: ExprLike) -> None:
        declaration = self._require_table(table)
        if declaration.kind == "static":
            raise BuilderError(f"table {table!r} is static (read-only); cannot write to it")
        self._emit_stmt(TableWrite(table, key, value))

    def _require_table(self, table: str) -> TableDeclaration:
        declaration = self._tables.get(table)
        if declaration is None:
            raise BuilderError(f"table {table!r} was not declared (declare_table first)")
        return declaration

    # -- control flow -----------------------------------------------------------------

    @contextmanager
    def if_(self, cond: ExprLike) -> Iterator[None]:
        """Open a conditional block; use ``with p.if_(cond): ...``."""
        then_block: List[Stmt] = []
        self._blocks.append(then_block)
        try:
            yield
        finally:
            self._blocks.pop()
        statement = If(cond, then_block, ())
        self._emit_stmt(statement)
        self._last_if = statement

    @contextmanager
    def else_(self) -> Iterator[None]:
        """Open the else-branch of the most recent ``if_`` block at this level."""
        if self._last_if is None or not self._blocks[-1] or self._blocks[-1][-1] is not self._last_if:
            raise BuilderError("else_() must immediately follow an if_() block")
        previous = self._last_if
        else_block: List[Stmt] = []
        self._blocks.append(else_block)
        try:
            yield
        finally:
            self._blocks.pop()
        replacement = If(previous.cond, previous.then, else_block)
        self._blocks[-1][-1] = replacement
        self._last_if = None

    @contextmanager
    def while_(self, cond: ExprLike, max_iterations: int, loop_id: Optional[str] = None) -> Iterator[None]:
        """Open a bounded loop block."""
        if loop_id is None:
            self._loop_counter += 1
            loop_id = f"{self.name}.loop{self._loop_counter}"
        body: List[Stmt] = []
        self._blocks.append(body)
        try:
            yield
        finally:
            self._blocks.pop()
        self._emit_stmt(While(cond, body, max_iterations=max_iterations, loop_id=loop_id))

    # -- finalisation ------------------------------------------------------------------

    def build(self) -> ElementProgram:
        """Produce the immutable :class:`ElementProgram`."""
        if len(self._blocks) != 1:
            raise BuilderError("unbalanced control-flow blocks: a with-block did not close")
        return ElementProgram(
            name=self.name,
            body=tuple(self._blocks[0]),
            tables=dict(self._tables),
            num_output_ports=self.num_output_ports,
            description=self.description,
        )
