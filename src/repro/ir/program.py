"""Element programs: the unit of code the dataplane runs and the verifier analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from .exprs import Expr, LoadField, LoadMeta, PacketLength
from .stmts import (
    Assign,
    Stmt,
    TableRead,
    TableWrite,
    While,
    block_statement_count,
    collect_statements,
)


@dataclass(frozen=True)
class TableDeclaration:
    """Declaration of a table the program may access.

    ``kind`` is one of:

    * ``"private"`` — mutable per-element state (NetFlow cache, NAT map);
      reads and writes are allowed.  In symbolic execution these are the
      tables modelled as key/value stores with havoc'd reads.
    * ``"static"`` — read-only configuration state (forwarding table,
      filter rules); writes are rejected by validation.
    """

    name: str
    kind: str = "private"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("private", "static"):
            raise ValueError(f"unknown table kind {self.kind!r}")


@dataclass
class ElementProgram:
    """An element's per-packet program plus its state declarations."""

    name: str
    body: Tuple[Stmt, ...]
    tables: Dict[str, TableDeclaration] = field(default_factory=dict)
    num_output_ports: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        self.body = tuple(self.body)

    # -- introspection -------------------------------------------------------------

    def statement_count(self) -> int:
        """Static statement count (not the dynamic instruction count)."""
        return block_statement_count(self.body)

    def all_statements(self) -> List[Stmt]:
        return collect_statements(self.body)

    def loops(self) -> List[While]:
        """All (possibly nested) loops in the program."""
        return [stmt for stmt in self.all_statements() if isinstance(stmt, While)]

    def registers(self) -> Set[str]:
        """Names of all registers the program assigns."""
        names: Set[str] = set()
        for stmt in self.all_statements():
            if isinstance(stmt, Assign):
                names.add(stmt.dst)
            elif isinstance(stmt, TableRead):
                names.add(stmt.dst_value)
                names.add(stmt.dst_found)
        return names

    def referenced_tables(self) -> Set[str]:
        names: Set[str] = set()
        for stmt in self.all_statements():
            if isinstance(stmt, (TableRead, TableWrite)):
                names.add(stmt.table)
        return names

    def written_tables(self) -> Set[str]:
        return {
            stmt.table for stmt in self.all_statements() if isinstance(stmt, TableWrite)
        }

    def branch_count(self) -> int:
        """Number of branching points (If statements plus loop conditions).

        The paper's path-count argument (roughly ``2^n`` paths for ``n``
        branches per element, ``2^(k*n)`` for a k-element pipeline) is in
        terms of this quantity.
        """
        from .stmts import If  # local import to avoid a cycle in type checkers

        count = 0
        for stmt in self.all_statements():
            if isinstance(stmt, If):
                count += 1
            elif isinstance(stmt, While):
                count += 1
        return count

    def reads_packet(self) -> bool:
        return any(isinstance(expr, (LoadField, PacketLength)) for expr in self._all_exprs())

    def reads_metadata(self) -> Iterator[str]:
        for expr in self._all_exprs():
            if isinstance(expr, LoadMeta):
                yield expr.key

    def _all_exprs(self) -> Iterator[Expr]:
        for stmt in self.all_statements():
            for attr in ("expr", "cond", "offset", "value", "key"):
                candidate = getattr(stmt, attr, None)
                if isinstance(candidate, Expr):
                    yield from _walk_expr(candidate)

    def __repr__(self) -> str:
        return (
            f"ElementProgram({self.name!r}, {self.statement_count()} statements, "
            f"{self.branch_count()} branches, {len(self.tables)} tables)"
        )


def _walk_expr(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)
