"""Exception types for the element IR and its interpreter."""

from __future__ import annotations


class IRError(Exception):
    """Base class for IR-related errors."""


class ProgramValidationError(IRError):
    """Raised when a program fails structural validation (see :mod:`repro.ir.validate`)."""


class InterpreterError(IRError):
    """Raised when the concrete interpreter is used incorrectly.

    Note: *packet-triggered* failures (failed assertions, out-of-bounds
    accesses, division by zero) are not exceptions — they are reported as
    ``CRASH`` outcomes, because they are exactly the behaviours the
    verifier reasons about.  This exception is reserved for misuse of the
    interpreter itself (unknown registers, missing tables, and so on).
    """


class BuilderError(IRError):
    """Raised when the program builder DSL is used incorrectly."""
