"""Structural validation of element programs.

Run before a program is admitted into a pipeline (and before
verification), this pass rejects programs that violate the dataplane
programming model of §3 of the paper: undeclared or read-only table
writes, reads of never-assigned registers, unreachable statements after a
terminator, and out-of-range output ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from .errors import ProgramValidationError
from .exprs import BinOp, Const, Expr, LoadField, LoadMeta, PacketLength, Reg, UnOp
from .program import ElementProgram
from .stmts import (
    Assert,
    Assign,
    Drop,
    Emit,
    If,
    Nop,
    PullHead,
    PushHead,
    SetMeta,
    Stmt,
    StoreField,
    TableRead,
    TableWrite,
    While,
)


@dataclass
class ValidationReport:
    """Outcome of validating a program."""

    program_name: str
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            summary = "; ".join(self.errors)
            raise ProgramValidationError(f"program {self.program_name!r} is invalid: {summary}")


def validate_program(program: ElementProgram) -> ValidationReport:
    """Validate a program and return a report (does not raise)."""
    report = ValidationReport(program_name=program.name)
    _check_tables(program, report)
    _check_block(program.body, program, report, assigned=set(), top_level=True)
    return report


def _check_tables(program: ElementProgram, report: ValidationReport) -> None:
    declared = set(program.tables)
    referenced = program.referenced_tables()
    for name in sorted(referenced - declared):
        report.errors.append(f"table {name!r} is used but not declared")
    for name in sorted(declared - referenced):
        report.warnings.append(f"table {name!r} is declared but never used")
    for name in sorted(program.written_tables()):
        declaration = program.tables.get(name)
        if declaration is not None and declaration.kind == "static":
            report.errors.append(f"static table {name!r} is written (static state is read-only)")


def _check_block(
    block: Sequence[Stmt],
    program: ElementProgram,
    report: ValidationReport,
    assigned: Set[str],
    top_level: bool,
) -> Set[str]:
    """Walk a block, tracking assigned registers.  Returns registers assigned on all paths."""
    terminated = False
    for stmt in block:
        if terminated:
            report.warnings.append(
                f"unreachable statement after a terminator: {stmt!r}"
            )
            break
        terminated = _check_stmt(stmt, program, report, assigned)
    return assigned


def _check_stmt(
    stmt: Stmt, program: ElementProgram, report: ValidationReport, assigned: Set[str]
) -> bool:
    """Check one statement.  Returns True if the statement always terminates the program."""
    if isinstance(stmt, Assign):
        _check_expr(stmt.expr, report, assigned)
        assigned.add(stmt.dst)
        return False
    if isinstance(stmt, StoreField):
        _check_expr(stmt.offset, report, assigned)
        _check_expr(stmt.value, report, assigned)
        return False
    if isinstance(stmt, SetMeta):
        _check_expr(stmt.value, report, assigned)
        return False
    if isinstance(stmt, Assert):
        _check_expr(stmt.cond, report, assigned)
        return False
    if isinstance(stmt, (PushHead, PullHead, Nop)):
        return False
    if isinstance(stmt, Emit):
        if stmt.port >= program.num_output_ports:
            report.errors.append(
                f"emit on port {stmt.port} but the element declares "
                f"{program.num_output_ports} output ports"
            )
        return True
    if isinstance(stmt, Drop):
        return True
    if isinstance(stmt, TableRead):
        _check_expr(stmt.key, report, assigned)
        assigned.add(stmt.dst_value)
        assigned.add(stmt.dst_found)
        return False
    if isinstance(stmt, TableWrite):
        _check_expr(stmt.key, report, assigned)
        _check_expr(stmt.value, report, assigned)
        return False
    if isinstance(stmt, If):
        _check_expr(stmt.cond, report, assigned)
        then_assigned = set(assigned)
        else_assigned = set(assigned)
        _check_block(stmt.then, program, report, then_assigned, top_level=False)
        _check_block(stmt.orelse, program, report, else_assigned, top_level=False)
        # Only registers assigned on both branches are definitely assigned afterwards.
        assigned |= then_assigned & else_assigned
        then_terminates = _block_terminates(stmt.then)
        else_terminates = _block_terminates(stmt.orelse)
        if then_terminates and not else_terminates:
            assigned |= else_assigned
        if else_terminates and not then_terminates:
            assigned |= then_assigned
        return then_terminates and else_terminates
    if isinstance(stmt, While):
        _check_expr(stmt.cond, report, assigned)
        loop_assigned = set(assigned)
        _check_block(stmt.body, program, report, loop_assigned, top_level=False)
        # The loop body may not execute, so its assignments are not guaranteed.
        return False
    report.errors.append(f"unknown statement type {type(stmt).__name__}")
    return False


def _block_terminates(block: Sequence[Stmt]) -> bool:
    """True if every path through the block ends in Emit/Drop."""
    for stmt in block:
        if isinstance(stmt, (Emit, Drop)):
            return True
        if isinstance(stmt, If) and _block_terminates(stmt.then) and _block_terminates(stmt.orelse):
            return True
    return False


def _check_expr(expr: Expr, report: ValidationReport, assigned: Set[str]) -> None:
    if isinstance(expr, Reg):
        if expr.name not in assigned:
            report.errors.append(f"register {expr.name!r} may be read before assignment")
        return
    if isinstance(expr, (Const, PacketLength, LoadMeta)):
        return
    if isinstance(expr, LoadField):
        _check_expr(expr.offset, report, assigned)
        return
    if isinstance(expr, BinOp):
        _check_expr(expr.left, report, assigned)
        _check_expr(expr.right, report, assigned)
        return
    if isinstance(expr, UnOp):
        _check_expr(expr.operand, report, assigned)
        return
    report.errors.append(f"unknown expression type {type(expr).__name__}")
