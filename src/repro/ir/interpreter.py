"""Concrete interpreter for element programs.

This is the execution engine of the running dataplane: the dataplane's
``Element.push`` hands the packet bytes, metadata and state handle to
:class:`Interpreter.run`, which executes the element's IR program and
reports the outcome (emit / drop / crash) together with the number of
instructions executed — the latency proxy used by the bounded-latency
property and the paper's "~3600 instructions per packet" result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

from .errors import InterpreterError
from .exprs import (
    VALUE_MASK,
    BinOp,
    BinaryOperator,
    Const,
    Expr,
    LoadField,
    LoadMeta,
    PacketLength,
    Reg,
    UnOp,
    UnaryOperator,
)
from .program import ElementProgram
from .stmts import (
    Assert,
    Assign,
    Drop,
    Emit,
    If,
    Nop,
    PullHead,
    PushHead,
    SetMeta,
    Stmt,
    StoreField,
    TableRead,
    TableWrite,
    While,
)


class Outcome:
    """Possible results of running an element program on a packet."""

    EMIT = "emit"
    DROP = "drop"
    CRASH = "crash"


class StateAccess(Protocol):
    """Table access protocol the interpreter uses for private/static state."""

    def table_read(self, table: str, key: int) -> Tuple[int, bool]:
        """Return (value, found) for ``table[key]``."""
        ...

    def table_write(self, table: str, key: int, value: int) -> None:
        """Store ``table[key] = value``."""
        ...


class DictState:
    """Simple in-memory table store (the default private-state backend)."""

    def __init__(self, tables: Optional[Dict[str, Dict[int, int]]] = None) -> None:
        self.tables: Dict[str, Dict[int, int]] = tables if tables is not None else {}

    def table_read(self, table: str, key: int) -> Tuple[int, bool]:
        store = self.tables.get(table)
        if store is None or key not in store:
            return 0, False
        return store[key] & VALUE_MASK, True

    def table_write(self, table: str, key: int, value: int) -> None:
        self.tables.setdefault(table, {})[key] = value & VALUE_MASK

    def snapshot(self) -> Dict[str, Dict[int, int]]:
        return {name: dict(entries) for name, entries in self.tables.items()}


@dataclass
class ExecutionResult:
    """Outcome of one element execution."""

    outcome: str
    port: Optional[int] = None
    crash_message: str = ""
    drop_reason: str = ""
    instructions: int = 0
    data: bytearray = field(default_factory=bytearray)
    metadata: Dict[str, int] = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.outcome == Outcome.CRASH

    @property
    def emitted(self) -> bool:
        return self.outcome == Outcome.EMIT

    @property
    def dropped(self) -> bool:
        return self.outcome == Outcome.DROP

    def __repr__(self) -> str:
        if self.outcome == Outcome.EMIT:
            detail = f"port={self.port}"
        elif self.outcome == Outcome.DROP:
            detail = f"reason={self.drop_reason!r}"
        else:
            detail = f"message={self.crash_message!r}"
        return f"ExecutionResult({self.outcome}, {detail}, instructions={self.instructions})"


class _Signal(Exception):
    """Internal control-flow signal (never escapes :meth:`Interpreter.run`)."""


class _EmitSignal(_Signal):
    def __init__(self, port: int) -> None:
        self.port = port


class _DropSignal(_Signal):
    def __init__(self, reason: str) -> None:
        self.reason = reason


class _CrashSignal(_Signal):
    def __init__(self, message: str) -> None:
        self.message = message


class Interpreter:
    """Executes element programs over concrete packets."""

    def __init__(self, max_instructions: int = 1_000_000) -> None:
        self.max_instructions = max_instructions

    def run(
        self,
        program: ElementProgram,
        data: bytes | bytearray,
        metadata: Optional[Dict[str, int]] = None,
        state: Optional[StateAccess] = None,
    ) -> ExecutionResult:
        """Run ``program`` on a packet and return the outcome.

        ``data`` is copied; the (possibly modified) packet bytes are
        returned in the result.  ``metadata`` is the packet's annotation
        map, also copied.  ``state`` provides table access (defaults to an
        empty in-memory store).
        """
        context = _RunContext(
            data=bytearray(data),
            metadata=dict(metadata or {}),
            state=state if state is not None else DictState(),
            max_instructions=self.max_instructions,
        )
        try:
            self._run_block(program.body, context)
        except _EmitSignal as signal:
            return self._result(Outcome.EMIT, context, port=signal.port)
        except _DropSignal as signal:
            return self._result(Outcome.DROP, context, drop_reason=signal.reason)
        except _CrashSignal as signal:
            return self._result(Outcome.CRASH, context, crash_message=signal.message)
        # Falling off the end of the program emits on port 0 by convention.
        return self._result(Outcome.EMIT, context, port=0)

    @staticmethod
    def _result(outcome: str, context: "_RunContext", **kwargs) -> ExecutionResult:
        return ExecutionResult(
            outcome=outcome,
            instructions=context.instructions,
            data=context.data,
            metadata=context.metadata,
            **kwargs,
        )

    # -- statement execution --------------------------------------------------------

    def _run_block(self, block: Sequence[Stmt], context: "_RunContext") -> None:
        for stmt in block:
            self._run_stmt(stmt, context)

    def _run_stmt(self, stmt: Stmt, context: "_RunContext") -> None:
        context.count(1)

        if isinstance(stmt, Assign):
            context.registers[stmt.dst] = self._eval(stmt.expr, context)
        elif isinstance(stmt, StoreField):
            offset = self._eval(stmt.offset, context)
            value = self._eval(stmt.value, context)
            self._store_field(context, offset, stmt.nbytes, value)
        elif isinstance(stmt, SetMeta):
            context.metadata[stmt.key] = self._eval(stmt.value, context)
        elif isinstance(stmt, If):
            condition = self._eval(stmt.cond, context)
            self._run_block(stmt.then if condition else stmt.orelse, context)
        elif isinstance(stmt, While):
            iterations = 0
            while self._eval(stmt.cond, context):
                if iterations >= stmt.max_iterations:
                    raise _CrashSignal(
                        f"loop {stmt.loop_id} exceeded its bound of {stmt.max_iterations} iterations"
                    )
                iterations += 1
                self._run_block(stmt.body, context)
        elif isinstance(stmt, Assert):
            if not self._eval(stmt.cond, context):
                raise _CrashSignal(stmt.message)
        elif isinstance(stmt, Emit):
            raise _EmitSignal(stmt.port)
        elif isinstance(stmt, Drop):
            raise _DropSignal(stmt.reason)
        elif isinstance(stmt, PushHead):
            context.data[:0] = bytes(stmt.nbytes)
        elif isinstance(stmt, PullHead):
            if stmt.nbytes > len(context.data):
                raise _CrashSignal(
                    f"pull of {stmt.nbytes} bytes from a {len(context.data)}-byte packet"
                )
            del context.data[: stmt.nbytes]
        elif isinstance(stmt, TableRead):
            key = self._eval(stmt.key, context)
            value, found = context.state.table_read(stmt.table, key)
            context.registers[stmt.dst_value] = value & VALUE_MASK
            context.registers[stmt.dst_found] = 1 if found else 0
        elif isinstance(stmt, TableWrite):
            key = self._eval(stmt.key, context)
            value = self._eval(stmt.value, context)
            context.state.table_write(stmt.table, key, value)
        elif isinstance(stmt, Nop):
            pass
        else:
            raise InterpreterError(f"unknown statement type {type(stmt).__name__}")

    # -- expression evaluation --------------------------------------------------------

    def _eval(self, expr: Expr, context: "_RunContext") -> int:
        context.count(1)

        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Reg):
            if expr.name not in context.registers:
                raise InterpreterError(f"read of unassigned register {expr.name!r}")
            return context.registers[expr.name]
        if isinstance(expr, LoadField):
            offset = self._eval(expr.offset, context)
            return self._load_field(context, offset, expr.nbytes)
        if isinstance(expr, PacketLength):
            return len(context.data)
        if isinstance(expr, LoadMeta):
            return context.metadata.get(expr.key, 0) & VALUE_MASK
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, context)
            right = self._eval(expr.right, context)
            return self._binop(expr.op, left, right)
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand, context)
            if expr.op == UnaryOperator.NOT:
                return (~operand) & VALUE_MASK
            if expr.op == UnaryOperator.NEG:
                return (-operand) & VALUE_MASK
            if expr.op == UnaryOperator.LOGNOT:
                return 0 if operand else 1
        raise InterpreterError(f"unknown expression type {type(expr).__name__}")

    @staticmethod
    def _binop(op: str, left: int, right: int) -> int:
        if op == BinaryOperator.ADD:
            return (left + right) & VALUE_MASK
        if op == BinaryOperator.SUB:
            return (left - right) & VALUE_MASK
        if op == BinaryOperator.MUL:
            return (left * right) & VALUE_MASK
        if op == BinaryOperator.UDIV:
            if right == 0:
                raise _CrashSignal("division by zero")
            return (left // right) & VALUE_MASK
        if op == BinaryOperator.UREM:
            if right == 0:
                raise _CrashSignal("remainder by zero")
            return (left % right) & VALUE_MASK
        if op == BinaryOperator.AND:
            return left & right
        if op == BinaryOperator.OR:
            return left | right
        if op == BinaryOperator.XOR:
            return left ^ right
        if op == BinaryOperator.SHL:
            return 0 if right >= 64 else (left << right) & VALUE_MASK
        if op == BinaryOperator.LSHR:
            return 0 if right >= 64 else left >> right
        if op == BinaryOperator.EQ:
            return 1 if left == right else 0
        if op == BinaryOperator.NE:
            return 1 if left != right else 0
        if op == BinaryOperator.ULT:
            return 1 if left < right else 0
        if op == BinaryOperator.ULE:
            return 1 if left <= right else 0
        if op == BinaryOperator.UGT:
            return 1 if left > right else 0
        if op == BinaryOperator.UGE:
            return 1 if left >= right else 0
        raise InterpreterError(f"unknown binary operator {op!r}")

    # -- packet access -----------------------------------------------------------------

    @staticmethod
    def _load_field(context: "_RunContext", offset: int, nbytes: int) -> int:
        end = offset + nbytes
        if end > len(context.data):
            raise _CrashSignal(
                f"out-of-bounds read of {nbytes} bytes at offset {offset} "
                f"(packet length {len(context.data)})"
            )
        return int.from_bytes(context.data[offset:end], "big")

    @staticmethod
    def _store_field(context: "_RunContext", offset: int, nbytes: int, value: int) -> None:
        end = offset + nbytes
        if end > len(context.data):
            raise _CrashSignal(
                f"out-of-bounds write of {nbytes} bytes at offset {offset} "
                f"(packet length {len(context.data)})"
            )
        context.data[offset:end] = (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "big")


@dataclass
class _RunContext:
    """Mutable state of one program execution."""

    data: bytearray
    metadata: Dict[str, int]
    state: StateAccess
    max_instructions: int
    registers: Dict[str, int] = field(default_factory=dict)
    instructions: int = 0

    def count(self, amount: int) -> None:
        self.instructions += amount
        if self.instructions > self.max_instructions:
            raise _CrashSignal(
                f"instruction budget of {self.max_instructions} exceeded"
            )
