"""``repro.ir`` — the packet-processing element IR.

Elements express their per-packet behaviour as small structured programs
in this IR.  The same program is executed concretely by
:class:`Interpreter` inside the running dataplane and symbolically by
:mod:`repro.symbex` inside the verifier, so there is no gap between the
code that runs and the code that is proven about.
"""

from .builder import ProgramBuilder
from .errors import BuilderError, InterpreterError, IRError, ProgramValidationError
from .exprs import (
    VALUE_MASK,
    VALUE_WIDTH,
    BinaryOperator,
    BinOp,
    Const,
    Expr,
    LoadField,
    LoadMeta,
    PacketLength,
    Reg,
    UnaryOperator,
    UnOp,
    as_expr,
)
from .interpreter import (
    DictState,
    ExecutionResult,
    Interpreter,
    Outcome,
    StateAccess,
)
from .program import ElementProgram, TableDeclaration
from .stmts import (
    Assert,
    Assign,
    Drop,
    Emit,
    If,
    Nop,
    PullHead,
    PushHead,
    SetMeta,
    Stmt,
    StoreField,
    TableRead,
    TableWrite,
    While,
)
from .validate import ValidationReport, validate_program

__all__ = [
    "Assert",
    "Assign",
    "BinOp",
    "BinaryOperator",
    "BuilderError",
    "Const",
    "DictState",
    "Drop",
    "ElementProgram",
    "Emit",
    "ExecutionResult",
    "Expr",
    "IRError",
    "If",
    "Interpreter",
    "InterpreterError",
    "LoadField",
    "LoadMeta",
    "Nop",
    "Outcome",
    "PacketLength",
    "ProgramBuilder",
    "ProgramValidationError",
    "PullHead",
    "PushHead",
    "Reg",
    "SetMeta",
    "StateAccess",
    "Stmt",
    "StoreField",
    "TableDeclaration",
    "TableRead",
    "TableWrite",
    "UnOp",
    "UnaryOperator",
    "VALUE_MASK",
    "VALUE_WIDTH",
    "ValidationReport",
    "While",
    "as_expr",
    "validate_program",
]
