"""repro — reproduction of "Toward a Verifiable Software Dataplane" (HotNets 2013).

The package bundles four layers:

* :mod:`repro.smt` — a from-scratch QF_BV constraint solver,
* :mod:`repro.ir` / :mod:`repro.dataplane` — a Click-like software
  dataplane whose elements are written in a small packet-processing IR,
* :mod:`repro.symbex` — a symbolic execution engine over that IR,
* :mod:`repro.verify` — the paper's contribution: decomposed, two-step
  pipeline verification (plus the monolithic whole-pipeline baseline).

See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md for the
experiment-by-experiment reproduction notes.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
