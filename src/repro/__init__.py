"""repro — reproduction of "Toward a Verifiable Software Dataplane" (HotNets 2013).

The package bundles the layers:

* :mod:`repro.smt` — a from-scratch QF_BV constraint solver,
* :mod:`repro.ir` / :mod:`repro.dataplane` — a Click-like software
  dataplane whose elements are written in a small packet-processing IR,
* :mod:`repro.symbex` — a symbolic execution engine over that IR,
* :mod:`repro.verify` — the paper's contribution: decomposed, two-step
  pipeline verification (plus the monolithic whole-pipeline baseline),
* :mod:`repro.orchestrator` — fleet-scale certification: a persistent
  content-addressed summary store plus multiprocessing workers that shard
  Step 1 and Step 2 across cores with deterministic merging.

See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md for the
experiment-by-experiment reproduction notes.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
