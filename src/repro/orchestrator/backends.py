"""Pluggable entry backends for the content-addressed store tiers.

Every persistent tier (:class:`~repro.orchestrator.store.SummaryStore`,
:class:`~repro.orchestrator.verdicts.VerdictStore`,
:class:`~repro.orchestrator.store.QueryStore`) speaks one small raw-entry
protocol — ``read`` / ``write`` / ``quarantine`` / ``gc`` over
``digest -> text`` pairs plus a cumulative metrics sidecar — and this
module provides the two interchangeable implementations behind it,
mirroring the SAT-backend seam in :mod:`repro.smt.backend`:

* :class:`JsonFileBackend` — one file per entry under a two-level digest
  fan-out, atomic temp-file + rename writes.  Simple, debuggable with
  ``ls``, safe for any number of concurrent writers — and priced at one
  filesystem round trip per entry, which is exactly what stops scaling
  at fleet size.
* :class:`SqliteBackend` — one ``store.sqlite`` per store root: WAL
  journal, one connection per process, writes buffered and flushed as
  ``INSERT OR REPLACE`` batches, lock contention absorbed by a
  busy-timeout plus jittered-backoff retry.  Worker processes never
  write the main database at all: a *shard view* reads the main file
  and appends to a private ``shards/<tag>.sqlite``, which the parent
  bulk-merges (``ATTACH`` + ``INSERT OR REPLACE ... SELECT``) after the
  pool joins — merge-on-join costs one statement per shard, not one
  rename per entry.

Backends are selected per store root and **auto-detected from the disk
layout** (a ``store.sqlite`` means SQLite, a digest fan-out means JSON
files), so worker processes handed a bare root path always open the
right implementation.  The SQLite schema is versioned in the database
itself; opening a database from a *newer* repro fails loudly, an *older*
one points at ``python -m repro store migrate``, and a file that is not
a store at all (torn write, truncation) is quarantined aside exactly
like a corrupt JSON entry.  :func:`migrate_store` performs the explicit
migrations: JSON layout -> SQLite, and SQLite v(N) -> v(N+1) in place.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs.trace import wall_clock
from .errors import StoreError

__all__ = [
    "GcResult",
    "JSON_BACKEND",
    "JsonFileBackend",
    "MigrationResult",
    "SQLITE_BACKEND",
    "SQLITE_FILENAME",
    "STORE_SCHEMA_VERSION",
    "SqliteBackend",
    "default_backend_name",
    "detect_backend_name",
    "make_backend",
    "migrate_store",
]

JSON_BACKEND = "json"
SQLITE_BACKEND = "sqlite"

#: The single-file SQLite database holding every entry of a store root.
SQLITE_FILENAME = "store.sqlite"

#: Current SQLite store schema.  v1 was the initial prototype layout
#: (no per-entry mtime, so ``gc --older-than-days`` could not tell warm
#: entries from cold ones); v2 added the ``mtime`` column and moved the
#: cumulative metrics sidecar into the ``meta`` table.  Bump on layout
#: changes and register an upgrade in :data:`_SQLITE_MIGRATIONS`.
STORE_SCHEMA_VERSION = 2

#: Suffix given to quarantined (corrupt) entries and databases; never
#: matches the entry glob, so quarantined garbage is invisible to reads.
QUARANTINE_SUFFIX = ".corrupt"

#: Writes buffered before an automatic flush (one INSERT OR REPLACE batch).
DEFAULT_BATCH_SIZE = 256

#: Read-touch granularity: a SQLite entry's mtime is only refreshed when
#: it is staler than this.  Gc age horizons are measured in days, so
#: hour-level precision loses nothing — and it keeps warm re-reads of
#: recently-touched entries from queueing mtime UPDATEs at all, which
#: would otherwise cost more than the reads themselves.
_TOUCH_GRANULARITY_SECONDS = 3600.0

#: Seconds SQLite itself blocks on a locked database before returning
#: SQLITE_BUSY; the jittered retry loop sits on top of this.
_BUSY_TIMEOUT_SECONDS = 5.0
_BUSY_RETRIES = 6
_BUSY_BACKOFF_SECONDS = 0.05

T = TypeVar("T")


@dataclass
class GcResult:
    """What one store ``gc`` sweep did."""

    removed_entries: int = 0
    removed_debris: int = 0
    kept_entries: int = 0
    bytes_freed: int = 0

    def summary(self) -> str:
        return (
            f"removed {self.removed_entries} entries and {self.removed_debris} debris files "
            f"({self.bytes_freed} bytes), kept {self.kept_entries} entries"
        )


def _size_of(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:  # racing removal: a concurrent writer/gc got there first
        return 0


def _mtime_of(path: Path) -> Optional[float]:
    """The file's mtime, or ``None`` when it vanished under us.

    Entries listed by a directory scan can be unlinked by a concurrent
    writer (or another gc) before we stat them; a vanished entry is
    nobody's bug and must never abort the sweep.
    """
    try:
        return path.stat().st_mtime
    except OSError:
        return None


def _fold_metrics(totals: dict, counters: dict) -> dict:
    """Key-sum one run's numeric counters into the cumulative totals."""
    for key, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        totals[key] = totals.get(key, 0) + value
    totals["runs"] = int(totals.get("runs", 0)) + 1
    return totals


# -- JSON-file backend ----------------------------------------------------------------


class JsonFileBackend:
    """One file per entry: ``<root>/<digest[:2]>/<digest>.json``.

    The two-level fan-out keeps directories small for fleet-sized stores;
    writes are atomic (temp file + rename), so any number of processes
    can share one root without locks — the worst case under a racing
    write is one redundant computation, never a torn read.
    """

    name = JSON_BACKEND

    #: Cumulative-counters sidecar (see :meth:`record_metrics`).
    METRICS_NAME = "metrics.json"

    def __init__(self, root: Path, kind: str = "store") -> None:
        self.root = root
        self.kind = kind

    def entry_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw entry I/O ---------------------------------------------------------------

    def read(self, digest: str) -> Optional[str]:
        path = self.entry_path(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read {self.kind} entry {path}: {exc}") from exc
        try:
            # A successful read refreshes the entry's mtime, so gc's age
            # horizon means "not *touched* for N days".
            os.utime(path, None)
        except OSError:  # pragma: no cover - racing removal: entry already gone
            pass
        return text

    def write(self, digest: str, text: str) -> None:
        path = self.entry_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.parent / f".{digest}.{os.getpid()}.tmp"
            temp.write_text(text)
            os.replace(temp, path)
        except OSError as exc:
            raise StoreError(f"cannot write {self.kind} entry {path}: {exc}") from exc

    def write_many(self, rows: Iterable[Tuple[str, str, float]]) -> int:
        """Bulk insert ``(digest, text, mtime)`` rows (used by migration)."""
        written = 0
        for digest, text, mtime in rows:
            self.write(digest, text)
            try:
                os.utime(self.entry_path(digest), (mtime, mtime))
            except OSError:  # pragma: no cover - racing removal
                pass
            written += 1
        return written

    def read_many(self, digests: Sequence[str]) -> Dict[str, str]:
        """Bulk read: present entries by digest (files offer no batching win)."""
        found: Dict[str, str] = {}
        for digest in digests:
            text = self.read(digest)
            if text is not None:
                found[digest] = text
        return found

    def quarantine(self, digest: str) -> None:
        path = self.entry_path(digest)
        try:
            os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink: entry already gone
                pass

    def contains(self, digest: str) -> bool:
        return self.entry_path(digest).is_file()

    # -- maintenance -----------------------------------------------------------------

    def count(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        # _size_of (not a bare stat): entries may vanish between the
        # directory scan and the stat — see the gc race note below.
        return sum(_size_of(path) for path in self.root.glob("??/*.json"))

    def clear(self) -> int:
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def gc(self, older_than_seconds: Optional[float] = None) -> GcResult:
        result = GcResult()
        # The one legitimate wall-clock read in the store layer: the age
        # horizon compares against file *mtimes*, which are wall-clock
        # timestamps — perf_counter has no defined epoch to compare them to.
        now = wall_clock()
        for path in self.root.glob(f"??/*{QUARANTINE_SUFFIX}"):
            result.bytes_freed += _size_of(path)
            path.unlink(missing_ok=True)
            result.removed_debris += 1
        for path in self.root.glob("??/.*.tmp"):
            mtime = _mtime_of(path)
            if mtime is not None and now - mtime > 60:
                result.bytes_freed += _size_of(path)
                path.unlink(missing_ok=True)
                result.removed_debris += 1
        for path in self.root.glob("??/*.json"):
            # A concurrent writer may unlink an entry between the listing
            # and the stat; a vanished entry is neither kept nor removed.
            mtime = _mtime_of(path)
            if mtime is None:
                continue
            if older_than_seconds is not None and now - mtime > older_than_seconds:
                result.bytes_freed += _size_of(path)
                path.unlink(missing_ok=True)
                result.removed_entries += 1
            else:
                result.kept_entries += 1
        return result

    # -- metrics sidecar -------------------------------------------------------------

    def load_metrics(self) -> dict:
        try:
            payload = json.loads((self.root / self.METRICS_NAME).read_text())
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def record_metrics(self, counters: dict) -> dict:
        """Fold one run's counters into the sidecar; returns the new totals.

        The write is atomic like every entry write, so concurrent
        recorders lose at worst one run's increment, never the file.
        """
        totals = _fold_metrics(self.load_metrics(), counters)
        path = self.root / self.METRICS_NAME
        temp = self.root / f".{self.METRICS_NAME}.{os.getpid()}.tmp"
        try:
            temp.write_text(json.dumps(totals, sort_keys=True))
            os.replace(temp, path)
        except OSError as exc:
            raise StoreError(f"cannot write {self.kind} metrics {path}: {exc}") from exc
        return totals

    # -- lifecycle / sharding (trivial for files) ------------------------------------

    def flush(self) -> None:
        """Atomic per-entry writes have nothing buffered."""

    def close(self) -> None:
        pass

    def merge_shards(self, only=None) -> int:
        """File stores never shard: workers write entries atomically in place."""
        return 0


# -- SQLite backend -------------------------------------------------------------------

_SCHEMA_STATEMENTS = (
    "CREATE TABLE IF NOT EXISTS entries ("
    " digest TEXT PRIMARY KEY,"
    " payload TEXT NOT NULL,"
    " mtime REAL NOT NULL)",
    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
)


class SqliteBackend:
    """Single-file batched SQLite store (see the module docstring).

    ``shard`` switches the backend into its worker view: reads come from
    the main database, writes land in ``shards/<shard>.sqlite`` for the
    parent's :meth:`merge_shards` to fold in after the pool joins.  The
    connection is process-private; a backend inherited through ``fork``
    transparently reopens on first use in the child.
    """

    name = SQLITE_BACKEND

    def __init__(
        self,
        root: Path,
        kind: str = "store",
        statistics: Optional[object] = None,
        shard: Optional[str] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.root = root
        self.kind = kind
        self.statistics = statistics
        self.shard = shard
        self.batch_size = max(1, batch_size)
        self.path = root / SQLITE_FILENAME
        self._pid = os.getpid()
        self._pending: Dict[str, str] = {}
        self._touched: Dict[str, float] = {}
        self._read_conn: Optional[sqlite3.Connection] = None
        self._write_conn: Optional[sqlite3.Connection] = None
        self._open()

    # -- connection management -------------------------------------------------------

    @property
    def shard_path(self) -> Optional[Path]:
        if self.shard is None:
            return None
        return self.root / "shards" / f"{self.shard}.sqlite"

    def _connect(self, path: Path) -> sqlite3.Connection:
        connection = sqlite3.connect(
            str(path), timeout=_BUSY_TIMEOUT_SECONDS, isolation_level=None
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        return connection

    def _open(self) -> None:
        try:
            self._read_conn = self._connect(self.path)
            self._validate_main()
        except sqlite3.DatabaseError:
            # Not a SQLite file at all (torn write, truncation, random
            # garbage): quarantine the database exactly like a corrupt
            # JSON entry and start fresh — the store is a cache, so the
            # price is recomputation, never a wrong answer.
            self._quarantine_database()
            self._read_conn = self._connect(self.path)
            self._initialize(self._read_conn)
        if self.shard is None:
            self._write_conn = self._read_conn
        else:
            shard_path = self.shard_path
            assert shard_path is not None
            shard_path.parent.mkdir(parents=True, exist_ok=True)
            self._write_conn = self._connect(shard_path)
            self._initialize(self._write_conn)

    def _initialize(self, connection: sqlite3.Connection) -> None:
        for statement in _SCHEMA_STATEMENTS:
            self._retry(lambda s=statement: connection.execute(s))
        self._retry(
            lambda: connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
        )
        self._retry(
            lambda: connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('kind', ?)", (self.kind,)
            )
        )

    def _validate_main(self) -> None:
        """Create a fresh schema, or police the version of an existing one."""
        assert self._read_conn is not None
        tables = {
            row[0]
            for row in self._read_conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if not tables:
            self._initialize(self._read_conn)
            return
        if "meta" not in tables or "entries" not in tables:
            # A SQLite file, but not one of ours: treat as corruption.
            raise sqlite3.DatabaseError("not a repro store database")
        row = self._read_conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        try:
            version = int(row[0]) if row is not None else None
        except (TypeError, ValueError):
            version = None
        if version is None:
            raise sqlite3.DatabaseError("store database has no readable schema version")
        if version > STORE_SCHEMA_VERSION:
            # Never quarantine data from the future: refusing loudly is
            # the only safe answer to a database a newer repro wrote.
            raise StoreError(
                f"{self.kind} at {self.path} has schema v{version}, newer than this "
                f"repro's v{STORE_SCHEMA_VERSION}; refusing to open it"
            )
        if version < STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{self.kind} at {self.path} has schema v{version} "
                f"(current is v{STORE_SCHEMA_VERSION}); "
                "run `python -m repro store migrate` to upgrade it in place"
            )

    def _quarantine_database(self) -> None:
        if self._read_conn is not None:
            try:
                self._read_conn.close()
            except sqlite3.Error:  # pragma: no cover - close of a broken handle
                pass
            self._read_conn = None
        target = self.path.with_name(self.path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
        for suffix in ("-wal", "-shm"):
            sidecar = self.path.with_name(self.path.name + suffix)
            try:
                sidecar.unlink()
            except OSError:
                pass
        if self.statistics is not None:
            self.statistics.corrupt_entries += 1
            self.statistics.quarantined += 1

    def _ensure_process(self) -> None:
        """Reopen after a fork: SQLite connections must not cross processes.

        The forked child drops the parent's buffered writes — the parent
        still holds (and will flush) its own copy, and replaying them from
        the child would at best be redundant ``INSERT OR REPLACE`` traffic.
        """
        if os.getpid() == self._pid:
            return
        self._pid = os.getpid()
        self._pending.clear()
        self._touched.clear()
        self._read_conn = None
        self._write_conn = None
        self._open()

    def _retry(self, operation: Callable[[], T]) -> T:
        """Run one statement, absorbing SQLITE_BUSY with jittered backoff.

        The built-in busy timeout already blocks for
        :data:`_BUSY_TIMEOUT_SECONDS`; the loop on top spreads N
        colliding writers out instead of letting them re-stampede the
        lock in sync.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise StoreError(f"{self.kind} at {self.path}: {exc}") from exc
                if attempt >= _BUSY_RETRIES:
                    raise StoreError(
                        f"{self.kind} at {self.path} is locked after "
                        f"{attempt} retries: {exc}"
                    ) from exc
                if self.statistics is not None:
                    self.statistics.busy_retries += 1
                delay = _BUSY_BACKOFF_SECONDS * (2**attempt) * (0.5 + random.random())
                time.sleep(delay)
                attempt += 1

    # -- raw entry I/O ---------------------------------------------------------------

    def read(self, digest: str) -> Optional[str]:
        pending = self._pending.get(digest)
        if pending is not None:
            return pending
        if os.getpid() != self._pid:
            self._ensure_process()
        # Happy path first, no retry-closure allocation: warm fleet runs
        # are read-dominated, and WAL readers essentially never block.
        try:
            row = self._read_conn.execute(  # type: ignore[union-attr]
                "SELECT payload, mtime FROM entries WHERE digest=?", (digest,)
            ).fetchone()
        except sqlite3.OperationalError:
            row = self._retry(
                lambda: self._read_conn.execute(
                    "SELECT payload, mtime FROM entries WHERE digest=?", (digest,)
                ).fetchone()
            )
        if row is None:
            return None
        # Touches batch with the writes: gc's age horizon only needs the
        # mtime eventually, and a per-read UPDATE would turn every warm
        # read into a write lock.  Fresh entries skip the queue entirely
        # (see _TOUCH_GRANULARITY_SECONDS).
        now = wall_clock()
        if now - row[1] > _TOUCH_GRANULARITY_SECONDS:
            self._touched[digest] = now
            if len(self._touched) >= self.batch_size:
                self.flush()
        return row[0]

    def write(self, digest: str, text: str) -> None:
        if os.getpid() != self._pid:
            self._ensure_process()
        self._pending[digest] = text
        self._touched.pop(digest, None)
        if len(self._pending) >= self.batch_size:
            self.flush()

    def write_many(self, rows: Iterable[Tuple[str, str, float]]) -> int:
        """Bulk insert ``(digest, text, mtime)`` rows in one batch."""
        self._ensure_process()
        assert self._write_conn is not None
        materialized = list(rows)
        self._retry(
            lambda: self._write_conn.executemany(
                "INSERT OR REPLACE INTO entries (digest, payload, mtime) VALUES (?, ?, ?)",
                materialized,
            )
        )
        return len(materialized)

    def read_many(self, digests: Sequence[str]) -> Dict[str, str]:
        """Bulk read: one chunked ``SELECT ... IN`` instead of N round trips.

        This is where the batched backend earns warm fleet runs: a delta
        re-certification probes one verdict record per pipeline, and
        fetching them hundreds at a time costs one statement per chunk,
        not one per pipeline.
        """
        found: Dict[str, str] = {}
        remaining: List[str] = []
        for digest in digests:
            pending = self._pending.get(digest)
            if pending is not None:
                found[digest] = pending
            else:
                remaining.append(digest)
        if not remaining:
            return found
        if os.getpid() != self._pid:
            self._ensure_process()
        now = wall_clock()
        # Stay well under SQLite's default 999-parameter limit per statement.
        for start in range(0, len(remaining), 400):
            chunk = remaining[start:start + 400]
            marks = ",".join("?" * len(chunk))
            rows = self._retry(
                lambda c=chunk, m=marks: self._read_conn.execute(
                    f"SELECT digest, payload, mtime FROM entries "
                    f"WHERE digest IN ({m})",
                    c,
                ).fetchall()
            )
            for digest, payload, mtime in rows:
                found[digest] = payload
                if now - mtime > _TOUCH_GRANULARITY_SECONDS:
                    self._touched[digest] = now
        if len(self._touched) >= self.batch_size:
            self.flush()
        return found

    def quarantine(self, digest: str) -> None:
        """Drop a corrupt entry (row removal *is* the quarantine for rows).

        Unlike files there is no rename-aside for a single row; the
        payload is garbage JSON inside a healthy database, so deletion
        loses nothing worth a post-mortem.
        """
        self._pending.pop(digest, None)
        self._touched.pop(digest, None)
        self._ensure_process()
        assert self._write_conn is not None
        self._retry(
            lambda: self._write_conn.execute(
                "DELETE FROM entries WHERE digest=?", (digest,)
            )
        )

    def contains(self, digest: str) -> bool:
        if digest in self._pending:
            return True
        if os.getpid() != self._pid:
            self._ensure_process()
        try:
            row = self._read_conn.execute(  # type: ignore[union-attr]
                "SELECT 1 FROM entries WHERE digest=?", (digest,)
            ).fetchone()
        except sqlite3.OperationalError:
            row = self._retry(
                lambda: self._read_conn.execute(
                    "SELECT 1 FROM entries WHERE digest=?", (digest,)
                ).fetchone()
            )
        return row is not None

    # -- maintenance -----------------------------------------------------------------

    def count(self) -> int:
        self.flush()
        assert self._read_conn is not None
        return self._retry(
            lambda: self._read_conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        )[0]

    def size_bytes(self) -> int:
        """Bytes held by live payloads (debris and index overhead excluded)."""
        self.flush()
        assert self._read_conn is not None
        return self._retry(
            lambda: self._read_conn.execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM entries"
            ).fetchone()
        )[0]

    def clear(self) -> int:
        self._pending.clear()
        self._touched.clear()
        self._ensure_process()
        assert self._write_conn is not None
        removed = self.count()
        self._retry(lambda: self._write_conn.execute("DELETE FROM entries"))
        return removed

    def gc(self, older_than_seconds: Optional[float] = None) -> GcResult:
        self.flush()
        assert self._write_conn is not None
        result = GcResult()
        now = wall_clock()
        for path in self.root.glob(f"*{QUARANTINE_SUFFIX}"):
            result.bytes_freed += _size_of(path)
            path.unlink(missing_ok=True)
            result.removed_debris += 1
        # Orphaned shard databases: crashed workers whose shards were
        # never merged.  Anything older than a minute cannot belong to a
        # live pool (merge-on-join runs the moment the pool exits).
        for path in self.root.glob("shards/*"):
            mtime = _mtime_of(path)
            if mtime is not None and now - mtime > 60:
                result.bytes_freed += _size_of(path)
                path.unlink(missing_ok=True)
                result.removed_debris += 1
        if older_than_seconds is not None:
            horizon = now - older_than_seconds
            freed = self._retry(
                lambda: self._write_conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                    "FROM entries WHERE mtime < ?",
                    (horizon,),
                ).fetchone()
            )
            result.removed_entries = freed[0]
            result.bytes_freed += freed[1]
            self._retry(
                lambda: self._write_conn.execute(
                    "DELETE FROM entries WHERE mtime < ?", (horizon,)
                )
            )
        result.kept_entries = self.count()
        if result.removed_entries:
            # Return the space to the filesystem; safe here because gc is
            # an explicit maintenance call, not a hot-path operation.
            self._retry(lambda: self._write_conn.execute("VACUUM"))
        return result

    # -- metrics ---------------------------------------------------------------------

    def load_metrics(self) -> dict:
        self._ensure_process()
        assert self._read_conn is not None
        row = self._retry(
            lambda: self._read_conn.execute(
                "SELECT value FROM meta WHERE key='metrics'"
            ).fetchone()
        )
        if row is None:
            return {}
        try:
            payload = json.loads(row[0])
        except ValueError:
            return {}
        return payload if isinstance(payload, dict) else {}

    def record_metrics(self, counters: dict) -> dict:
        """Fold one run's counters into the totals, atomically.

        The read-fold-write runs inside one ``BEGIN IMMEDIATE``
        transaction, so concurrent recorders serialize instead of losing
        increments — strictly better than the JSON sidecar's
        last-writer-wins.
        """
        self._ensure_process()
        assert self._write_conn is not None

        def _transact() -> dict:
            self._write_conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._write_conn.execute(
                    "SELECT value FROM meta WHERE key='metrics'"
                ).fetchone()
                try:
                    totals = json.loads(row[0]) if row is not None else {}
                except ValueError:
                    totals = {}
                if not isinstance(totals, dict):
                    totals = {}
                totals = _fold_metrics(totals, counters)
                self._write_conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('metrics', ?)",
                    (json.dumps(totals, sort_keys=True),),
                )
                self._write_conn.execute("COMMIT")
                return totals
            except BaseException:
                self._write_conn.execute("ROLLBACK")
                raise

        return self._retry(_transact)

    # -- lifecycle / sharding --------------------------------------------------------

    def flush(self) -> None:
        """Push buffered writes and mtime touches in two batched statements."""
        self._ensure_process()
        if self._pending:
            assert self._write_conn is not None
            now = wall_clock()
            rows = [(digest, text, now) for digest, text in self._pending.items()]
            self._retry(
                lambda: self._write_conn.executemany(
                    "INSERT OR REPLACE INTO entries (digest, payload, mtime) "
                    "VALUES (?, ?, ?)",
                    rows,
                )
            )
            self._pending.clear()
        if self._touched and self.shard is None:
            # Touch refreshes only make sense against the main database
            # (a shard view's reads came from main, which it must not
            # write); shard-view touches are simply dropped.
            assert self._write_conn is not None
            rows = [(mtime, digest) for digest, mtime in self._touched.items()]
            self._retry(
                lambda: self._write_conn.executemany(
                    "UPDATE entries SET mtime=? WHERE digest=?", rows
                )
            )
        self._touched.clear()

    def close(self) -> None:
        try:
            self.flush()
        finally:
            for connection in {id(self._read_conn): self._read_conn,
                               id(self._write_conn): self._write_conn}.values():
                if connection is not None:
                    try:
                        connection.close()
                    except sqlite3.Error:  # pragma: no cover - already broken
                        pass
            self._read_conn = None
            self._write_conn = None

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            if os.getpid() == self._pid:
                self.close()
        except Exception:
            pass

    def merge_shards(self, only=None) -> int:
        """Fold ``shards/*.sqlite`` into the main database, then delete them.

        One ``ATTACH`` + ``INSERT OR REPLACE ... SELECT`` per shard — the
        whole shard lands in a single statement, which is the point of
        sharding: merge-on-join scales with the number of *workers*, not
        the number of entries.  ``only`` restricts the fold to the named
        shard tags (the scheduler's incremental per-task merge); missing
        shards — a task that wrote nothing never creates its file — are
        silently skipped.
        """
        if self.shard is not None:
            raise StoreError("merge_shards must run on the main store, not a shard view")
        self.flush()
        assert self._write_conn is not None
        merged = 0
        if only is None:
            shard_paths = sorted(self.root.glob("shards/*.sqlite"))
        else:
            shard_paths = [
                path
                for tag in only
                if (path := self.root / "shards" / f"{tag}.sqlite").exists()
            ]
        for shard_path in shard_paths:
            try:
                self._retry(
                    lambda p=shard_path: self._write_conn.execute(
                        "ATTACH DATABASE ? AS shard", (str(p),)
                    )
                )
            except (StoreError, sqlite3.DatabaseError):
                continue  # torn shard from a crashed worker: gc sweeps it
            try:
                cursor = self._retry(
                    lambda: self._write_conn.execute(
                        "INSERT OR REPLACE INTO entries "
                        "SELECT digest, payload, mtime FROM shard.entries"
                    )
                )
                merged += max(cursor.rowcount, 0)
            except (StoreError, sqlite3.DatabaseError):
                continue  # not a store shard: leave it for gc
            finally:
                self._retry(lambda: self._write_conn.execute("DETACH DATABASE shard"))
            for suffix in ("", "-wal", "-shm"):
                try:
                    shard_path.with_name(shard_path.name + suffix).unlink()
                except OSError:
                    pass
        return merged


# -- selection and migration ----------------------------------------------------------


def default_backend_name() -> str:
    """The backend used for brand-new store roots.

    JSON files unless ``REPRO_STORE_BACKEND`` says otherwise — existing
    deployments keep their inspectable one-file-per-entry layout until
    they opt in (``--store-backend sqlite`` / the env var / migration).
    """
    name = os.environ.get("REPRO_STORE_BACKEND", JSON_BACKEND)
    if name not in (JSON_BACKEND, SQLITE_BACKEND):
        raise StoreError(
            f"unknown REPRO_STORE_BACKEND {name!r} (expected {JSON_BACKEND} or {SQLITE_BACKEND})"
        )
    return name


def detect_backend_name(root: Path) -> Optional[str]:
    """What backend already lives at ``root``, or ``None`` for a fresh root."""
    if (root / SQLITE_FILENAME).exists():
        return SQLITE_BACKEND
    if (root / JsonFileBackend.METRICS_NAME).exists():
        return JSON_BACKEND
    try:
        next(root.glob("??/*.json*"))
        return JSON_BACKEND
    except (StopIteration, OSError):
        return None


def make_backend(
    root: Path,
    requested: Optional[str] = None,
    kind: str = "store",
    statistics: Optional[object] = None,
    shard: Optional[str] = None,
):
    """Open the backend for a store root.

    ``requested`` pins the implementation; ``None`` auto-detects from the
    disk layout and falls back to :func:`default_backend_name` for fresh
    roots.  Requesting a backend *different* from what is on disk is a
    loud error pointing at migration — two half-populated layouts in one
    root would silently split the cache.
    """
    detected = detect_backend_name(root)
    name = requested or detected or default_backend_name()
    if requested is not None and detected is not None and requested != detected:
        raise StoreError(
            f"{kind} at {root} holds a {detected} layout but backend {requested!r} was "
            "requested; run `python -m repro store migrate` instead of mixing layouts"
        )
    if name == SQLITE_BACKEND:
        return SqliteBackend(root, kind=kind, statistics=statistics, shard=shard)
    if name == JSON_BACKEND:
        return JsonFileBackend(root, kind=kind)
    raise StoreError(f"unknown store backend {name!r}")


@dataclass
class MigrationResult:
    """What :func:`migrate_store` did to one store root."""

    root: str
    action: str  # "json-to-sqlite" | "upgraded" | "up-to-date" | "initialized"
    from_version: Optional[int] = None
    to_version: int = STORE_SCHEMA_VERSION
    entries: int = 0

    def summary(self) -> str:
        if self.action == "json-to-sqlite":
            return f"migrated {self.entries} JSON entries to SQLite v{self.to_version}"
        if self.action == "upgraded":
            return (
                f"upgraded SQLite schema v{self.from_version} -> v{self.to_version} "
                f"({self.entries} entries)"
            )
        if self.action == "initialized":
            return f"initialized empty SQLite store (schema v{self.to_version})"
        return f"already SQLite v{self.to_version} ({self.entries} entries)"


def _migrate_v1_to_v2(connection: sqlite3.Connection) -> None:
    """v1 -> v2: per-entry mtimes (age-horizon gc) + in-database metrics.

    Existing entries are stamped with the migration time — the most
    conservative age (nothing becomes instantly evictable), matching how
    a restored-from-backup JSON store would look.
    """
    columns = {row[1] for row in connection.execute("PRAGMA table_info(entries)")}
    if "mtime" not in columns:
        connection.execute("ALTER TABLE entries ADD COLUMN mtime REAL NOT NULL DEFAULT 0")
    connection.execute("UPDATE entries SET mtime=? WHERE mtime=0", (wall_clock(),))


#: Registered in-place upgrades: version N -> N+1.
_SQLITE_MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_v1_to_v2,
}


def _collect_json_entries(root: Path) -> List[Tuple[str, str, float]]:
    rows: List[Tuple[str, str, float]] = []
    for path in sorted(root.glob("??/*.json")):
        mtime = _mtime_of(path)
        if mtime is None:
            continue  # vanished under a concurrent writer
        try:
            rows.append((path.stem, path.read_text(), mtime))
        except OSError:
            continue
    return rows


def migrate_store(root, kind: str = "store") -> MigrationResult:
    """Migrate one store root to the current SQLite schema, in place.

    * JSON layout -> SQLite: every entry is bulk-inserted (mtimes
      preserved, so gc age horizons survive), the metrics sidecar moves
      into the ``meta`` table, and the JSON files are removed only after
      the SQLite database is fully written.
    * SQLite v(N) -> v(N+1): registered upgrades run stepwise inside one
      transaction per step.
    * A schema from a *newer* repro raises :class:`StoreError` — refusing
      unknown future versions loudly beats guessing at their layout.
    """
    root = Path(root).expanduser()
    root.mkdir(parents=True, exist_ok=True)
    detected = detect_backend_name(root)

    if detected == JSON_BACKEND:
        json_backend = JsonFileBackend(root, kind=kind)
        rows = _collect_json_entries(root)
        metrics = json_backend.load_metrics()
        sqlite_backend = SqliteBackend(root, kind=kind)
        entries = sqlite_backend.write_many(rows)
        if metrics:
            # Seed the totals verbatim (record_metrics would add a run).
            sqlite_backend._retry(
                lambda: sqlite_backend._write_conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('metrics', ?)",
                    (json.dumps(metrics, sort_keys=True),),
                )
            )
        sqlite_backend.close()
        # The SQLite file is durable; now (and only now) drop the JSON
        # layout so auto-detection can never see both.
        for path in root.glob("??/*"):
            path.unlink(missing_ok=True)
        for bucket in root.glob("??"):
            try:
                bucket.rmdir()
            except OSError:  # pragma: no cover - non-empty: a racing writer refilled it
                pass
        (root / JsonFileBackend.METRICS_NAME).unlink(missing_ok=True)
        return MigrationResult(str(root), "json-to-sqlite", entries=entries)

    if detected is None:
        backend = SqliteBackend(root, kind=kind)
        backend.close()
        return MigrationResult(str(root), "initialized")

    # SQLite already: inspect the version with a raw connection (the
    # backend class itself refuses to open old versions).
    path = root / SQLITE_FILENAME
    connection = sqlite3.connect(str(path), timeout=_BUSY_TIMEOUT_SECONDS)
    try:
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"{kind} at {path} is not a readable store database ({exc}); "
                "quarantine it by opening the store, then re-run migration"
            ) from exc
        try:
            version = int(row[0]) if row is not None else None
        except (TypeError, ValueError):
            version = None
        if version is None:
            raise StoreError(
                f"{kind} at {path} has no readable schema version; "
                "quarantine it by opening the store, then re-run migration"
            )
        if version > STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{kind} at {path} has schema v{version}, newer than this repro's "
                f"v{STORE_SCHEMA_VERSION}; refusing to touch it"
            )
        from_version = version
        while version < STORE_SCHEMA_VERSION:
            upgrade = _SQLITE_MIGRATIONS.get(version)
            if upgrade is None:  # pragma: no cover - would be a registration bug
                raise StoreError(f"no registered migration from schema v{version}")
            connection.execute("BEGIN IMMEDIATE")
            try:
                upgrade(connection)
                version += 1
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('schema_version', ?)",
                    (str(version),),
                )
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        entries = connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        action = "up-to-date" if from_version == STORE_SCHEMA_VERSION else "upgraded"
        return MigrationResult(
            str(root), action, from_version=from_version, entries=entries
        )
    finally:
        connection.close()
