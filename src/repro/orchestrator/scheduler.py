"""Persistent dependency-aware fleet scheduler: no wave barriers, no pool churn.

The wave-synchronous path in :mod:`repro.orchestrator.fleet` runs Step-1
discovery in lock-step frontiers (a full join barrier per wave, a fresh
``multiprocessing.Pool`` per :func:`~repro.orchestrator.workers.run_tasks`
call) and gates every Step-2 verification on the *last* Step-1 summary of
the whole catalog.  At 1,000-pipeline scale the wall clock is dominated by
barrier idle and fork churn, not solver work.

This module replaces the waves with a job graph over one long-lived pool:

* :class:`JobGraph` — Step-1 summary jobs are nodes keyed by store digest;
  when a summary lands, exactly the pipelines waiting on that digest
  extend their worklists *immediately*, and the moment a pipeline's
  summary set is complete its Step-2 verification job becomes ready.
  Symbolic execution and verification overlap instead of phase-gating.
* :class:`PersistentPool` — ``workers`` fork-context processes spawned
  once per run, fed task-by-task over private queues (the parent holds
  the full priority heap, so priorities are honored exactly), with
  crashed-worker detection: a task whose process dies is re-queued under
  a fresh attempt tag and a replacement worker is forked.
* **Incremental shard merge** — each task writes its store entries into a
  private per-attempt shard (``t<id>a<attempt>``) and flushes it before
  reporting, so the parent folds that one shard into the main store the
  moment the result arrives (``merge_shards(only=...)``) instead of
  blocking on a straggler at pool join.
* A priority seam (:data:`SCHEDULES`): ``fifo`` preserves catalog order,
  ``largest-first`` fronts the widest pipelines, and ``risk`` ranks
  pipelines by the persisted churn/verdict history of
  :mod:`repro.orchestrator.risk` — under delta mode the likely-violating
  few reach a verdict while bulk reuse trails.

Differential guarantee: verdicts, work counters and the worker-span
multiset equal the serial and wave-parallel paths exactly — the scheduler
reorders work, it never changes it.  Observability: per-task
``scheduler.task`` spans, plus ``scheduler.queue_depth`` and
``scheduler.worker_idle_ms`` gauges in the process metrics registry.
"""

from __future__ import annotations

import heapq
import os
import queue as queue_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..dataplane.element import Element
from ..dataplane.pipeline import Pipeline
from ..obs.metrics import metrics
from ..obs.stats import StatisticsMixin
from ..obs.trace import clock, tracer
from ..smt.qcache import QueryCacheStatistics
from ..symbex.engine import SymbexOptions
from .errors import OrchestratorError
from .serialize import loads_summary
from .store import SummaryStore
from .workers import (
    EXPLODED,
    LOADED,
    _pool_context,
    _summarize_worker,
    job_digest,
    merge_observability,
    set_worker_shard_tag,
)

__all__ = [
    "FIFO",
    "LARGEST_FIRST",
    "OFF",
    "RISK",
    "SCHEDULES",
    "JobGraph",
    "PersistentPool",
    "ScheduledRun",
    "SchedulerStatistics",
    "pipeline_ranks",
    "run_scheduled",
]

#: Priority policies accepted by ``certify_fleet(schedule=...)`` / ``--schedule``.
OFF = "off"
FIFO = "fifo"
RISK = "risk"
LARGEST_FIRST = "largest-first"
SCHEDULES = (OFF, FIFO, RISK, LARGEST_FIRST)

#: Task kinds (also the ``kind`` arg on ``scheduler.task`` spans).
SUMMARY = "summary"
VERIFY = "verify"


@dataclass
class SchedulerStatistics(StatisticsMixin):
    """Work accounting for one scheduled run."""

    MERGE_MAX = ("max_queue_depth", "workers")

    workers: int = 0
    tasks_dispatched: int = 0
    summary_tasks: int = 0
    verify_tasks: int = 0
    #: Pools forked for the run — the whole point is that this is 1.
    pools_forked: int = 0
    workers_spawned: int = 0
    workers_crashed: int = 0
    tasks_retried: int = 0
    #: Incremental per-task shard merges performed on result arrival.
    incremental_merges: int = 0
    max_queue_depth: int = 0
    #: Child-measured task execution time, summed across workers.
    worker_busy_seconds: float = 0.0
    #: Parent-measured time workers sat without an assigned task.
    worker_idle_seconds: float = 0.0
    pool_lifetime_seconds: float = 0.0


# -- priority policies ----------------------------------------------------------------


def pipeline_ranks(
    pipelines: Sequence[Pipeline],
    schedule: str = FIFO,
    risk_history=None,
) -> List[int]:
    """Per-pipeline priority ranks (0 = most urgent) under a policy.

    ``fifo`` is catalog order; ``largest-first`` fronts pipelines with the
    most element instances (they gate the most Step-1 work); ``risk``
    delegates to a :class:`repro.orchestrator.risk.RiskHistory` and falls
    back to fifo when no history is available.  Ties always break on
    catalog index, so every policy is deterministic.
    """
    if schedule not in SCHEDULES:
        raise OrchestratorError(
            f"unknown schedule {schedule!r} (expected one of {', '.join(SCHEDULES)})"
        )
    indices = list(range(len(pipelines)))
    if schedule == LARGEST_FIRST:
        order = sorted(indices, key=lambda i: (-len(pipelines[i].elements), i))
    elif schedule == RISK and risk_history is not None:
        order = risk_history.rank(pipelines)
    else:
        order = indices
    ranks = [0] * len(pipelines)
    for position, index in enumerate(order):
        ranks[index] = position
    return ranks


# -- the dependency graph -------------------------------------------------------------


class JobGraph:
    """Dependency-aware Step-1/Step-2 job graph over a catalog.

    Summary jobs are keyed by store digest (the fleet-wide dedupe unit);
    each pipeline tracks the set of digests it still needs.  Resolving a
    digest expands exactly the waiting pipelines' downstream jobs — the
    per-pipeline BFS of the wave path, without the cross-pipeline
    barrier — and a pipeline whose need-set empties becomes
    verify-ready.  A digest that blew its budget (:meth:`explode`) stops
    expanding, and its pipelines still verify: their own Step-2 pass hits
    the same budget and reports ``unknown``, exactly like the serial and
    wave paths.

    The graph is pure bookkeeping (no processes, no store): drive it in
    any completion order — the reachable job set, the summary dict and
    the verify-ready set are order-independent, which is what makes the
    scheduler differentially testable.
    """

    def __init__(
        self,
        pipelines: Sequence[Pipeline],
        input_lengths: Sequence[int],
        options: SymbexOptions,
    ) -> None:
        self.pipelines = list(pipelines)
        self.options = options
        self.summaries: Dict[str, object] = {}
        self.exploded: Set[str] = set()
        #: Pipelines each unresolved digest expands on arrival.
        self._waiters: Dict[str, List[Tuple[int, Element]]] = {}
        #: Unresolved digests gating each pipeline's verification.
        self._needs: List[Set[str]] = [set() for _ in pipelines]
        self._visited: List[Set[Tuple[str, int]]] = [set() for _ in pipelines]
        self._new_jobs: List[Tuple[str, Element, int]] = []
        self._joined: List[Tuple[str, int]] = []
        self._verify_ready: List[int] = []
        self._verify_emitted: Set[int] = set()
        for index, pipeline in enumerate(self.pipelines):
            entries = pipeline.entry_elements()
            if len(entries) != 1:
                raise OrchestratorError(
                    f"pipeline {pipeline.name!r} has {len(entries)} entry elements; "
                    "fleet certification needs exactly one"
                )
            for length in input_lengths:
                self._enqueue(index, entries[0], length)
            self._check_ready(index)

    # -- internal transitions --------------------------------------------------------

    def _enqueue(self, index: int, element: Element, length: int) -> None:
        key = (element.name, length)
        if key in self._visited[index]:
            return
        self._visited[index].add(key)
        digest = job_digest(element, length, self.options)
        summary = self.summaries.get(digest)
        if summary is not None:
            self._expand(index, element, summary)
            return
        if digest in self.exploded:
            return  # the branch is dead; verification reports the budget
        waiters = self._waiters.get(digest)
        if waiters is None:
            self._waiters[digest] = [(index, element)]
            self._new_jobs.append((digest, element, length))
        else:
            waiters.append((index, element))
            self._joined.append((digest, index))
        self._needs[index].add(digest)

    def _expand(self, index: int, element: Element, summary) -> None:
        for segment in summary.emit_segments:  # type: ignore[attr-defined]
            downstream = self.pipelines[index].downstream(element, segment.port or 0)
            if downstream is not None:
                self._enqueue(index, downstream[0], len(segment.output_bytes))

    def _check_ready(self, index: int) -> None:
        if not self._needs[index] and index not in self._verify_emitted:
            self._verify_emitted.add(index)
            self._verify_ready.append(index)

    # -- driver interface ------------------------------------------------------------

    def resolve(self, digest: str, summary) -> None:
        """A summary landed: expand every waiting pipeline immediately."""
        self.summaries[digest] = summary
        for index, element in self._waiters.pop(digest, ()):
            self._expand(index, element, summary)
            self._needs[index].discard(digest)
            self._check_ready(index)

    def explode(self, digest: str) -> None:
        """The job blew its budget: stop expanding, unblock its pipelines."""
        self.exploded.add(digest)
        for index, _element in self._waiters.pop(digest, ()):
            self._needs[index].discard(digest)
            self._check_ready(index)

    def waiting_on(self, digest: str) -> List[int]:
        """Pipeline indices currently blocked on a digest (for priorities)."""
        return [index for index, _element in self._waiters.get(digest, ())]

    def take_new_jobs(self) -> List[Tuple[str, Element, int]]:
        """Drain summary jobs discovered since the last call."""
        jobs, self._new_jobs = self._new_jobs, []
        return jobs

    def take_joined(self) -> List[Tuple[str, int]]:
        """Drain ``(digest, pipeline index)`` late joins to pending jobs.

        A pipeline that starts waiting on a digest whose job already
        exists may carry a better (lower) rank than the job was queued
        with — the driver uses these events to re-prioritize, or a
        high-priority pipeline would inherit the bulk catalog's patience
        for its shared elements.
        """
        joined, self._joined = self._joined, []
        return joined

    def take_verify_ready(self) -> List[int]:
        """Drain pipelines whose summary set completed since the last call."""
        ready, self._verify_ready = self._verify_ready, []
        return ready

    @property
    def settled(self) -> bool:
        """Every discovered job resolved or exploded, every pipeline unblocked."""
        return not self._waiters and all(not needs for needs in self._needs)


# -- the persistent pool --------------------------------------------------------------


@dataclass
class _Task:
    """One unit of pool work (a Step-1 summary or a Step-2 verification)."""

    task_id: int
    kind: str
    key: object  # digest (summary) or pipeline index (verify)
    fn: Callable
    payload: object
    priority: Tuple
    label: str
    attempt: int = 1

    @property
    def shard_tag(self) -> str:
        return f"t{self.task_id}a{self.attempt}"


def _pool_worker_loop(tasks, results) -> None:
    """Worker body: run tasks until the ``None`` sentinel arrives.

    Each task runs under its per-attempt shard tag and reports
    ``(pid, task_id, shard_tag, ok, started, ended, payload)``; the
    shard tag travels back so the parent merges exactly the shard this
    attempt flushed, even if the task was retried meanwhile.  Failures
    ship as data — one bad task must not tear the worker down.
    """
    pid = os.getpid()
    while True:
        item = tasks.get()
        if item is None:
            break
        task_id, shard_tag, fn, payload = item
        set_worker_shard_tag(shard_tag)
        started = clock()
        try:
            result = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - shipped as data, see docstring
            results.put(
                (pid, task_id, shard_tag, False, started, clock(),
                 f"{type(exc).__name__}: {exc}")
            )
        else:
            results.put((pid, task_id, shard_tag, True, started, clock(), result))
        finally:
            set_worker_shard_tag(None)


class _WorkerHandle:
    """Parent-side record of one pool process."""

    __slots__ = ("process", "tasks", "current", "idle_since")

    def __init__(self, process, tasks) -> None:
        self.process = process
        self.tasks = tasks
        self.current: Optional[_Task] = None
        self.idle_since: Optional[float] = clock()


class PersistentPool:
    """``workers`` fork-context processes, spawned once, fed task-by-task.

    Each worker owns a private task queue (the parent dispatches exactly
    one task to exactly one idle worker, so the parent-side priority heap
    is honored precisely) and reports on one shared result queue.  A
    worker that dies mid-task is detected on the next poll: its task is
    surfaced as a ``("crashed", task)`` event for the driver to re-queue,
    and a replacement process is forked so capacity never decays.
    """

    def __init__(self, workers: int, statistics: SchedulerStatistics) -> None:
        self.statistics = statistics
        self._context = _pool_context()
        self._results = self._context.Queue()
        self._workers: List[_WorkerHandle] = []
        self._in_flight: Dict[int, _Task] = {}
        self._closed = False
        self._started = clock()
        statistics.workers = workers
        statistics.pools_forked += 1
        for _ in range(max(1, workers)):
            self._spawn()

    def _spawn(self) -> _WorkerHandle:
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_pool_worker_loop, args=(tasks, self._results), daemon=True
        )
        process.start()
        handle = _WorkerHandle(process, tasks)
        self._workers.append(handle)
        self.statistics.workers_spawned += 1
        return handle

    # -- capacity --------------------------------------------------------------------

    def _idle_worker(self) -> Optional[_WorkerHandle]:
        for handle in self._workers:
            if handle.current is None and handle.process.is_alive():
                return handle
        return None

    @property
    def has_idle(self) -> bool:
        return self._idle_worker() is not None

    @property
    def busy_count(self) -> int:
        return len(self._in_flight)

    # -- dispatch / events -----------------------------------------------------------

    def dispatch(self, task: _Task) -> None:
        handle = self._idle_worker()
        if handle is None:  # caller checked has_idle; defensive
            raise OrchestratorError("dispatch with no idle worker")
        if handle.idle_since is not None:
            self.statistics.worker_idle_seconds += clock() - handle.idle_since
            handle.idle_since = None
        handle.current = task
        self._in_flight[task.task_id] = task
        self.statistics.tasks_dispatched += 1
        handle.tasks.put((task.task_id, task.shard_tag, task.fn, task.payload))

    def _reap_crashed(self) -> Optional[_Task]:
        """Find one dead worker; respawn it and surface its lost task (if any)."""
        for handle in list(self._workers):
            if handle.process.is_alive():
                continue
            self._workers.remove(handle)
            self.statistics.workers_crashed += 1
            lost = handle.current
            if lost is not None:
                self._in_flight.pop(lost.task_id, None)
            if not self._closed:
                self._spawn()
            if lost is not None:
                return lost
        return None

    def next_event(self, timeout: float = 0.1):
        """Block until something happens; returns one of two event tuples.

        ``("result", pid, task, shard_tag, ok, started, ended, payload)``
        for a completed attempt — ``task`` is ``None`` when the attempt
        is stale (its task already finished via a retry); ``("crashed",
        task)`` when a worker died holding a task (a replacement is
        already forked; the driver re-queues the task).
        """
        while True:
            try:
                pid, task_id, shard_tag, ok, started, ended, payload = (
                    self._results.get(timeout=timeout)
                )
            except queue_module.Empty:
                lost = self._reap_crashed()
                if lost is not None:
                    return ("crashed", lost)
                continue
            task = self._in_flight.pop(task_id, None)
            for handle in self._workers:
                if handle.process.pid == pid and handle.current is not None:
                    handle.current = None
                    handle.idle_since = clock()
                    break
            if task is not None and shard_tag != task.shard_tag:
                # A late result from a retried attempt: the retry is still
                # in flight, so put the task back and report this attempt
                # as stale — first completion wins, exactly once.
                self._in_flight[task_id] = task
                task = None
            return ("result", pid, task, shard_tag, ok, started, ended, payload)

    # -- teardown --------------------------------------------------------------------

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        now = clock()
        for handle in self._workers:
            if handle.idle_since is not None:
                self.statistics.worker_idle_seconds += now - handle.idle_since
                handle.idle_since = None
            try:
                handle.tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - broken pipe on crash
                pass
        for handle in self._workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - wedged worker
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.tasks.cancel_join_thread()
            handle.tasks.close()
        self._results.cancel_join_thread()
        self._results.close()
        self._workers.clear()
        self.statistics.pool_lifetime_seconds = clock() - self._started

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- the driver -----------------------------------------------------------------------


@dataclass
class ScheduledRun:
    """What a scheduled pass produced, in the shape the fleet layer folds."""

    #: Resolved summaries by digest (exploded digests excluded) — the
    #: ``distinct_summary_jobs`` population, with Step-1 work counters
    #: restored on computed entries.
    summaries: Dict[str, object] = field(default_factory=dict)
    computed: int = 0
    loaded: int = 0
    #: Step-2 worker results by catalog index:
    #: ``(certification, misses, l2_hits, query_entries, extras)`` with the
    #: entries/extras already consumed (merged) by the scheduler.
    step2: Dict[int, tuple] = field(default_factory=dict)
    #: Catalog indices in verification *completion* order — what the risk
    #: policy reorders, and what the bench asserts on.
    verify_order: List[int] = field(default_factory=list)
    #: L3 query-cache entries shipped by all tasks, for one parent merge.
    query_entries: List[tuple] = field(default_factory=list)
    statistics: SchedulerStatistics = field(default_factory=SchedulerStatistics)


def run_scheduled(
    pipelines: Sequence[Pipeline],
    properties: Sequence,
    input_lengths: Sequence[int],
    options: SymbexOptions,
    workers: int,
    store: SummaryStore,
    max_counterexamples: int = 3,
    confirm_by_replay: bool = True,
    instruction_bounds: bool = False,
    schedule: str = FIFO,
    risk_history=None,
    qstats: Optional[QueryCacheStatistics] = None,
    summary_worker: Optional[Callable] = None,
    verify_worker: Optional[Callable] = None,
) -> ScheduledRun:
    """Drive the whole catalog through one persistent pool.

    The public entry is ``certify_fleet(schedule=...)``; this function is
    the scheduler itself, exposed so tests and benches can run it with a
    worker count the fleet layer's cpu clamp would refuse.  ``summary_worker``
    and ``verify_worker`` override the task callables (module-level,
    picklable) — the crash tests inject a self-killing wrapper this way.

    Priority: tasks carry ``(rank, stage, seq)`` keys — a summary job
    inherits the best rank among the pipelines waiting on it at admission
    time, a verification job its pipeline's rank — so under ``risk`` the
    highest-risk pipeline's entire dependency chain, then its verdict,
    preempt the bulk of the catalog.
    """
    from .fleet import _certify_worker  # deferred: fleet imports this module

    if schedule == OFF:
        raise OrchestratorError("run_scheduled called with schedule='off'")
    summary_fn = summary_worker or _summarize_worker
    verify_fn = verify_worker or _certify_worker
    ranks = pipeline_ranks(pipelines, schedule, risk_history)
    graph = JobGraph(pipelines, input_lengths, options)
    run = ScheduledRun()
    stats = run.statistics
    trace = tracer()
    registry = metrics()
    depth_gauge = registry.gauge("scheduler.queue_depth")
    idle_gauge = registry.gauge("scheduler.worker_idle_ms")
    store_root = str(store.root)

    heap: List[Tuple[Tuple, int, _Task]] = []
    #: Summary tasks still queued, by digest — late joiners re-prioritize
    #: these (a stale heap entry is skipped at pop time, lazy-deletion
    #: style: an entry is live only while its key equals task.priority).
    pending_summaries: Dict[str, _Task] = {}
    dispatched_ids: Set[int] = set()
    queued = 0
    seq = 0
    task_ids = iter(range(1, 1 << 30))
    started = clock()
    last_summary_end = started

    def _push(task: _Task, requeue: bool = False) -> None:
        nonlocal seq, queued
        seq += 1
        heapq.heappush(heap, (task.priority, seq, task))
        if not requeue:
            queued += 1
            stats.max_queue_depth = max(stats.max_queue_depth, queued)

    def _admit() -> None:
        """Turn graph progress into heap entries until discovery quiesces."""
        while True:
            jobs = graph.take_new_jobs()
            if not jobs:
                break
            # Satellite of the same disease the scheduler cures: probe the
            # warm store once per admission batch, not once per job.
            stored = store.load_digests([digest for digest, _e, _l in jobs])
            for digest, element, length in jobs:
                summary = stored.get(digest)
                if summary is not None:
                    run.loaded += 1
                    graph.resolve(digest, summary)  # may surface more jobs
                    continue
                rank = min(
                    (ranks[index] for index in graph.waiting_on(digest)),
                    default=len(ranks),
                )
                task = _Task(
                    task_id=next(task_ids),
                    kind=SUMMARY,
                    key=digest,
                    fn=summary_fn,
                    payload=(element, length, options, store_root),
                    priority=(rank, 0),
                    label=f"{element.name}@{length}",
                )
                pending_summaries[digest] = task
                _push(task)
        # A later discovery can hang a better-ranked pipeline on a job
        # queued under a worse rank; hoist the still-pending task.
        for digest, index in graph.take_joined():
            task = pending_summaries.get(digest)
            if task is not None and ranks[index] < task.priority[0]:
                task.priority = (ranks[index], 0)
                _push(task, requeue=True)
        for index in graph.take_verify_ready():
            _push(
                _Task(
                    task_id=next(task_ids),
                    kind=VERIFY,
                    key=index,
                    fn=verify_fn,
                    payload=(
                        pipelines[index],
                        list(properties),
                        tuple(input_lengths),
                        options,
                        store_root,
                        max_counterexamples,
                        confirm_by_replay,
                        instruction_bounds,
                    ),
                    priority=(ranks[index], 1),
                    label=pipelines[index].name,
                )
            )

    def _finish_summary(task: _Task, payload) -> None:
        nonlocal last_summary_end
        status, text, entries, work, extras = payload
        merge_observability(extras, qstats)
        run.query_entries.extend(entries)
        last_summary_end = clock()
        if status == EXPLODED:
            graph.explode(task.key)
            return
        summary = loads_summary(text)
        if status == LOADED:
            run.loaded += 1
        else:
            summary.sat_core_calls, summary.qcache_hits = work
            run.computed += 1
        graph.resolve(task.key, summary)

    def _finish_verify(task: _Task, payload) -> None:
        certification, misses, l2_hits, entries, extras = payload
        merge_observability(extras, qstats)
        run.query_entries.extend(entries)
        run.step2[task.key] = (certification, misses, l2_hits)
        run.verify_order.append(task.key)

    _admit()
    with PersistentPool(workers, stats) as pool:
        while heap or pool.busy_count:
            while heap and pool.has_idle:
                priority, _seq, task = heapq.heappop(heap)
                if task.task_id in dispatched_ids or priority != task.priority:
                    continue  # stale heap entry: dispatched, or re-prioritized
                dispatched_ids.add(task.task_id)
                queued -= 1
                if task.kind == SUMMARY:
                    pending_summaries.pop(task.key, None)
                    stats.summary_tasks += 1
                else:
                    stats.verify_tasks += 1
                pool.dispatch(task)
            depth_gauge.set(queued)
            if not pool.busy_count:
                if queued:  # pragma: no cover - every worker died and respawn failed
                    raise OrchestratorError("scheduler has queued tasks but no workers")
                break
            event = pool.next_event()
            if event[0] == "crashed":
                lost = event[1]
                stats.tasks_retried += 1
                for suffix in ("", "-wal", "-shm"):
                    # Best-effort: the dead attempt's shard is debris now.
                    try:
                        (store.root / "shards" / f"{lost.shard_tag}.sqlite{suffix}").unlink()
                    except OSError:
                        pass
                lost.attempt += 1
                dispatched_ids.discard(lost.task_id)
                if lost.kind == SUMMARY:
                    pending_summaries[lost.key] = lost
                _push(lost)
                continue
            _event, pid, task, shard_tag, ok, task_started, ended, payload = event
            # Fold this attempt's flushed shard before acting on the result,
            # so anything the graph unblocks can read it from the main store.
            stats.incremental_merges += 1
            store.merge_shards(only=[shard_tag])
            if task is None:
                continue  # stale attempt of a retried task: shard folded, done
            if not ok:
                raise OrchestratorError(
                    f"scheduler {task.kind} task {task.label!r} failed: {payload}"
                )
            stats.worker_busy_seconds += ended - task_started
            if trace.enabled:
                trace.record_span(
                    "scheduler.task",
                    "scheduler",
                    task_started,
                    ended,
                    kind=task.kind,
                    label=task.label,
                    pid=pid,
                    attempt=task.attempt,
                )
            if task.kind == SUMMARY:
                _finish_summary(task, payload)
            else:
                _finish_verify(task, payload)
            _admit()
    if not graph.settled or len(run.step2) != len(pipelines):  # pragma: no cover
        raise OrchestratorError("scheduler finished with unresolved work")
    run.summaries = graph.summaries
    idle_gauge.set(stats.worker_idle_seconds * 1000.0)
    depth_gauge.set(0)
    if trace.enabled and (run.computed or run.loaded):
        # The wave path records one fleet.summarize span over Step 1; keep
        # the phase comparable by spanning admission to the last Step-1
        # resolution (Step 2 overlaps it — that is the point).
        trace.record_span(
            "fleet.summarize",
            "fleet",
            started,
            last_summary_end,
            jobs=len(run.summaries),
            computed=run.computed,
            loaded=run.loaded,
        )
    return run
