"""Change-impact analysis: make re-certification proportional to the diff.

The paper's pitch is that decomposed verification is cheap enough to run
*continuously* as configurations evolve.  PR 2 made the unchanged-catalog
case free (warm :class:`SummaryStore`); this module handles the realistic
case — an operator edits one routing table, rewires one pipeline, renames
an element — by computing exactly **what** a change can affect and
re-verifying only that.

The raw material is :mod:`repro.dataplane.fingerprint`'s decomposition:
per-element parts (configuration key, IR program, per-static-table
contents) and per-pipeline wiring/compound digests, all with instance
names normalized out.  A **catalog manifest** snapshots those digests as
a plain-JSON document an operator (or CI job) can keep next to the
configuration; :func:`diff_manifests` compares two snapshots and
classifies every pipeline's changes:

* element program changed / configuration key changed,
* static-table *contents* changed (named per table),
* pipeline wiring changed,
* pipeline (or element) added / removed / renamed.

:func:`recertify` drives :func:`~repro.orchestrator.fleet.certify_fleet`
in delta mode over the new catalog and attaches the classification to
each certification as human-readable impact provenance.  The actual
reuse decision is content-addressed (the verdict store key covers
everything a verdict depends on), so the diff can never *unsoundly* skip
work — it explains the delta, it does not gatekeep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..dataplane.fingerprint import (
    canonical_elements,
    element_fingerprint_parts,
    pipeline_fingerprint,
    wiring_fingerprint,
)
from ..dataplane.pipeline import Pipeline
from ..obs.trace import NullTracer, Tracer
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..verify.properties import Property
from .errors import OrchestratorError
from .fleet import FleetReport, certify_fleet
from .risk import RiskHistory, RiskStore
from .scheduler import FIFO
from .store import QueryStore, SummaryStore
from .verdicts import VerdictStore

__all__ = [
    "MANIFEST_VERSION",
    "CatalogImpact",
    "PipelineImpact",
    "RecertificationReport",
    "catalog_manifest",
    "diff_catalogs",
    "diff_manifests",
    "recertify",
]

#: Bump when the manifest layout changes; a mismatched baseline is rejected
#: loudly (a silently mis-read baseline could hide real impact).
MANIFEST_VERSION = 1


# -- manifests: the diffable snapshot of a catalog ------------------------------------


def catalog_manifest(
    pipelines: Sequence[Pipeline], options: Optional[SymbexOptions] = None
) -> dict:
    """Snapshot a catalog's verification identity as a plain-JSON document.

    The manifest holds, per pipeline, the compound fingerprint (the
    verdict-store address component), the wiring digest, and each
    element's decomposed parts in canonical (name-independent) order —
    everything :func:`diff_manifests` needs to classify a change, nothing
    it does not (no programs, no table contents, just digests).
    """
    options = options or SymbexOptions()
    include_tables = options.static_table_mode == StaticTableMode.CONCRETE
    document: dict = {
        "version": MANIFEST_VERSION,
        "static_table_mode": options.static_table_mode,
        "pipelines": {},
    }
    for pipeline in pipelines:
        if pipeline.name in document["pipelines"]:
            raise OrchestratorError(
                f"catalog has two pipelines named {pipeline.name!r}; "
                "manifests (and delta re-certification) need unique names"
            )
        # Canonical (name-independent) order: the element *sequence* is part
        # of the identity — the differ uses it to spot reconnections that
        # keep both the element set and the abstract graph shape.
        elements = []
        for element in canonical_elements(pipeline):
            parts = element_fingerprint_parts(element, include_static_tables=include_tables)
            elements.append(
                {
                    "name": element.name,
                    "configuration_key": parts.configuration_key,
                    "program": parts.program,
                    "static_tables": dict(parts.static_tables),
                    "combined": parts.combined,
                }
            )
        document["pipelines"][pipeline.name] = {
            "fingerprint": pipeline_fingerprint(pipeline, include_static_tables=include_tables),
            "wiring": wiring_fingerprint(pipeline),
            "elements": elements,
        }
    return document


# -- impact classification ------------------------------------------------------------


@dataclass
class PipelineImpact:
    """Why one pipeline of the new catalog is (or is not) affected."""

    name: str
    impacted: bool
    causes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"name": self.name, "impacted": self.impacted, "causes": list(self.causes)}


@dataclass
class CatalogImpact:
    """The classified diff between two catalog manifests."""

    #: One entry per pipeline of the *new* catalog, in catalog order.
    pipelines: List[PipelineImpact] = field(default_factory=list)
    #: Pipelines present in the baseline but gone from the new catalog.
    removed: List[str] = field(default_factory=list)

    @property
    def impacted(self) -> List[PipelineImpact]:
        return [impact for impact in self.pipelines if impact.impacted]

    @property
    def unimpacted(self) -> List[PipelineImpact]:
        return [impact for impact in self.pipelines if not impact.impacted]

    def by_name(self, name: str) -> Optional[PipelineImpact]:
        for impact in self.pipelines:
            if impact.name == name:
                return impact
        return None

    def to_dict(self) -> dict:
        return {
            "pipelines": [impact.to_dict() for impact in self.pipelines],
            "removed": list(self.removed),
        }

    def summary(self) -> str:
        lines = [
            f"impact     : {len(self.impacted)} impacted / "
            f"{len(self.unimpacted)} unimpacted pipelines"
            + (f", {len(self.removed)} removed" if self.removed else "")
        ]
        for impact in self.impacted:
            for cause in impact.causes:
                lines.append(f"  {impact.name}: {cause}")
        for name in self.removed:
            lines.append(f"  {name}: removed from the catalog")
        return "\n".join(lines)


def _check_manifest(manifest: dict, label: str) -> dict:
    if not isinstance(manifest, dict) or "pipelines" not in manifest:
        raise OrchestratorError(f"{label} manifest is not a catalog manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise OrchestratorError(
            f"{label} manifest has version {manifest.get('version')!r}; "
            f"this build reads version {MANIFEST_VERSION}"
        )
    return manifest["pipelines"]


def _diff_tables(name: str, old: dict, new: dict, causes: List[str]) -> None:
    for table in sorted(set(old) | set(new)):
        if table not in old:
            causes.append(f"element {name}: static table {table!r} added")
        elif table not in new:
            causes.append(f"element {name}: static table {table!r} removed")
        elif old[table] != new[table]:
            causes.append(f"element {name}: contents of static table {table!r} changed")


def _diff_elements(old_elements: List[dict], new_elements: List[dict], causes: List[str]) -> None:
    old_by_name = {entry["name"]: entry for entry in old_elements}
    new_by_name = {entry["name"]: entry for entry in new_elements}
    unmatched_old = {
        name: entry for name, entry in old_by_name.items() if name not in new_by_name
    }
    for name, entry in new_by_name.items():
        old_entry = old_by_name.get(name)
        if old_entry is None:
            # Try rename detection: an identically configured leftover.
            renamed_from = next(
                (
                    old_name
                    for old_name, candidate in unmatched_old.items()
                    if candidate["combined"] == entry["combined"]
                ),
                None,
            )
            if renamed_from is not None:
                del unmatched_old[renamed_from]
                causes.append(
                    f"element {renamed_from} renamed to {name} (configuration unchanged)"
                )
            else:
                causes.append(f"element {name} added")
            continue
        if old_entry["combined"] == entry["combined"]:
            continue
        if old_entry["program"] != entry["program"]:
            causes.append(f"element {name}: IR program changed")
        if old_entry["configuration_key"] != entry["configuration_key"]:
            causes.append(f"element {name}: configuration key changed")
        _diff_tables(
            name,
            old_entry.get("static_tables", {}),
            entry.get("static_tables", {}),
            causes,
        )
    for name in unmatched_old:
        causes.append(f"element {name} removed")


def diff_manifests(old_manifest: dict, new_manifest: dict) -> CatalogImpact:
    """Classify what changed between two catalog snapshots.

    Returns one :class:`PipelineImpact` per pipeline of the new catalog:
    unimpacted pipelines have equal compound fingerprints (verdicts are
    reusable by construction); impacted ones carry the per-part causes.
    A baseline taken under a different static-table mode impacts
    everything — the modes observe different facts, so no verdict carries
    over.
    """
    old_pipelines = _check_manifest(old_manifest, "baseline")
    new_pipelines = _check_manifest(new_manifest, "new")
    impact = CatalogImpact()
    mode_changed = old_manifest.get("static_table_mode") != new_manifest.get("static_table_mode")
    for name, entry in new_pipelines.items():
        if mode_changed:
            impact.pipelines.append(
                PipelineImpact(name, True, ["static-table mode changed (full re-verification)"])
            )
            continue
        old_entry = old_pipelines.get(name)
        if old_entry is None:
            impact.pipelines.append(PipelineImpact(name, True, ["pipeline added to the catalog"]))
            continue
        if old_entry["fingerprint"] == entry["fingerprint"]:
            impact.pipelines.append(PipelineImpact(name, False, ["unchanged configuration"]))
            continue
        causes: List[str] = []
        old_sequence = [element["combined"] for element in old_entry["elements"]]
        new_sequence = [element["combined"] for element in entry["elements"]]
        if old_entry["wiring"] != entry["wiring"]:
            causes.append("pipeline wiring changed")
        elif old_sequence != new_sequence and sorted(old_sequence) == sorted(new_sequence):
            # Same element set, same abstract graph shape, different
            # assignment of configurations to graph positions — elements
            # were reconnected in a different order.
            causes.append("pipeline wiring changed (same elements, reconnected)")
        _diff_elements(old_entry["elements"], entry["elements"], causes)
        if not causes:  # fingerprint moved but no part did: be loud, not silent
            causes.append("configuration changed (unclassified)")
        impact.pipelines.append(PipelineImpact(name, True, causes))
    impact.removed = sorted(name for name in old_pipelines if name not in new_pipelines)
    return impact


def diff_catalogs(
    old_pipelines: Sequence[Pipeline],
    new_pipelines: Sequence[Pipeline],
    options: Optional[SymbexOptions] = None,
) -> CatalogImpact:
    """Convenience wrapper: diff two in-memory catalogs."""
    return diff_manifests(
        catalog_manifest(old_pipelines, options), catalog_manifest(new_pipelines, options)
    )


# -- delta re-certification -----------------------------------------------------------


@dataclass
class RecertificationReport:
    """A delta-mode fleet run plus the diff that explains it."""

    report: FleetReport
    impact: Optional[CatalogImpact]
    #: The new catalog's manifest — persist it as the next run's baseline.
    manifest: dict

    def summary(self) -> str:
        parts = []
        if self.impact is not None:
            parts.append(self.impact.summary())
        parts.append(self.report.summary())
        return "\n".join(parts)


def recertify(
    pipelines: Sequence[Pipeline],
    properties: Sequence[Property],
    baseline: Optional[dict] = None,
    input_lengths: Sequence[int] = (64,),
    workers: int = 1,
    store: Optional[SummaryStore] = None,
    verdict_store: Optional[VerdictStore] = None,
    options: Optional[SymbexOptions] = None,
    max_counterexamples: int = 3,
    confirm_by_replay: bool = True,
    instruction_bounds: bool = False,
    query_store: Optional[Union[QueryStore, str]] = None,
    trace: Union[bool, Tracer, NullTracer, None] = None,
    schedule: str = FIFO,
    risk_store: Optional[Union[RiskStore, str]] = None,
) -> RecertificationReport:
    """Re-certify a catalog, doing work proportional to what changed.

    ``baseline`` is a previous run's :func:`catalog_manifest`; when given,
    the classified diff is attached to each certification as impact
    provenance.  The reuse decision itself is the verdict store's
    content-addressed lookup (see :func:`certify_fleet`), so running
    without a baseline still reuses every unchanged pipeline — it just
    cannot explain *why* the changed ones changed.  ``query_store``
    persists the solver-level L3 query-cache tier, exactly as in
    :func:`certify_fleet`.

    ``schedule`` is forwarded to the fleet scheduler; a ``risk_store``
    (path or :class:`~repro.orchestrator.risk.RiskStore`) both feeds
    ``schedule="risk"`` — pipelines with churny or violating history are
    certified first — and is updated from this run's manifest and
    verdicts, so the history accumulates as a side effect of the normal
    delta workflow.
    """
    options = options or SymbexOptions()
    manifest = catalog_manifest(pipelines, options)
    impact = diff_manifests(baseline, manifest) if baseline is not None else None
    history: Optional[RiskHistory] = None
    if risk_store is not None:
        history = RiskHistory(
            risk_store if isinstance(risk_store, RiskStore) else RiskStore(risk_store)
        )
    report = certify_fleet(
        pipelines,
        properties,
        input_lengths=input_lengths,
        workers=workers,
        store=store,
        options=options,
        max_counterexamples=max_counterexamples,
        confirm_by_replay=confirm_by_replay,
        instruction_bounds=instruction_bounds,
        verdict_store=verdict_store,
        query_store=query_store,
        trace=trace,
        schedule=schedule,
        risk_history=history,
    )
    if history is not None:
        # Fold this run back into the history the next run ranks with.
        history.record(manifest, report.verdicts())
    for certification in report.certifications:
        pipeline_impact = impact.by_name(certification.pipeline_name) if impact else None
        if certification.reused:
            certification.impact_causes = (
                list(pipeline_impact.causes) if pipeline_impact else ["unchanged configuration"]
            )
        elif pipeline_impact is not None and pipeline_impact.impacted:
            certification.impact_causes = list(pipeline_impact.causes)
        elif pipeline_impact is not None:
            # Unimpacted but not served from the store: no record existed
            # (first run against this property set / request, or the prior
            # verdict was unknown and deliberately not recorded).
            certification.impact_causes = [
                "unchanged configuration, but no stored verdict for this request"
            ]
        else:
            certification.impact_causes = ["full pass (no baseline manifest)"]
    return RecertificationReport(report=report, impact=impact, manifest=manifest)
