"""Per-pipeline verdict records: the second store tier, above summaries.

The :class:`~repro.orchestrator.store.SummaryStore` amortizes **Step 1**
across runs — a warm store re-executes nothing symbolically, but Step 2
(suspect composition, solver checks) still runs for every pipeline on
every pass.  The :class:`VerdictStore` amortizes the *whole verification*:
a pipeline's certification against a property set is persisted under a
content address covering everything the verdict depends on, so
re-certifying an unchanged pipeline is one JSON read — zero symbolic
execution **and** zero solver checks.

Keys are ``pipeline fingerprint x property set``: the pipeline fingerprint
(:func:`repro.dataplane.fingerprint.pipeline_fingerprint`) covers element
programs, static-table contents and wiring with instance names normalized
out, and :func:`property_set_fingerprint` renders the property objects
structurally (dataclass fields, not ``repr`` — function defaults would
otherwise embed memory addresses).  Any change that could alter a verdict
changes the key; a no-op rename does not.

Records whose verdicts include ``unknown`` are never stored: an unknown is
a budget artifact, not a fact about the pipeline, and a bigger budget on
the next run should get the chance to resolve it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
from typing import TYPE_CHECKING, Optional, Sequence

from ..symbex.engine import SymbexOptions
from ..verify.properties import Property
from ..verify.report import Verdict
from .store import Store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports this module)
    from .fleet import PipelineCertification

__all__ = [
    "RECORD_VERSION",
    "VerdictStore",
    "property_fingerprint",
    "property_set_fingerprint",
    "verdict_key",
]

#: Bump when the record layout changes; a version mismatch reads as a miss.
RECORD_VERSION = 1


def _render_value(value: object) -> str:
    """A stable structural render of a property (or any of its field values).

    ``repr`` alone is not enough: function-typed fields (reachability
    predicates) repr with their memory address, which would make every
    process compute a different key.  Dataclasses render field-by-field,
    callables by qualified name, containers element-wise; anything else
    falls back to ``repr`` — for objects without a stable repr that yields
    a key no other run can reproduce, trading reuse for soundness.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_render_value(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    if isinstance(value, types.MethodType):
        # The bound object is part of the identity: two methods of
        # differently configured instances must not collide.
        return (
            f"callable:{getattr(value, '__module__', '?')}.{value.__qualname__}"
            f"[self={_render_value(value.__self__)}]"
        )
    if isinstance(value, (types.FunctionType, types.BuiltinFunctionType)):
        # Captured state is part of the identity: a factory-made closure
        # differing only in a captured variable must not collide with its
        # siblings.  Cells holding objects without a stable render yield a
        # key no other run reproduces — lost reuse, never a wrong verdict.
        rendered = f"callable:{getattr(value, '__module__', '?')}.{value.__qualname__}"
        closure = getattr(value, "__closure__", None)
        if closure:
            cells = ",".join(_render_value(cell.cell_contents) for cell in closure)
            rendered += f"[closure={cells}]"
        defaults = getattr(value, "__defaults__", None)
        if defaults:
            rendered += f"[defaults={_render_value(list(defaults))}]"
        return rendered
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_render_value(item) for item in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_render_value(item) for item in value) + "]"
    if isinstance(value, dict):
        rendered = ",".join(
            f"{_render_value(key)}:{_render_value(val)}" for key, val in sorted(value.items())
        )
        return "{" + rendered + "}"
    return repr(value)


def property_fingerprint(target_property: Property) -> str:
    """A stable digest of one property's configuration."""
    material = f"{type(target_property).__qualname__}|{_render_value(target_property)}"
    return hashlib.sha256(material.encode()).hexdigest()


def property_set_fingerprint(properties: Sequence[Property]) -> str:
    """Digest of an ordered property set.

    Order-sensitive on purpose: a record's results list in property order,
    so reordering the set is a (cheap, correct) re-verification rather
    than a remapping puzzle.
    """
    material = "\x1f".join(property_fingerprint(p) for p in properties)
    return hashlib.sha256(material.encode()).hexdigest()


def verdict_key(
    pipeline_fingerprint: str,
    properties: Sequence[Property],
    input_lengths: Sequence[int],
    options: SymbexOptions,
    max_counterexamples: int,
    confirm_by_replay: bool,
    instruction_bounds: bool,
) -> str:
    """The store digest for one (pipeline configuration, verification request) pair.

    Covers the request knobs that shape record *content*
    (counterexample budget, replay confirmation, the instruction-bound
    extra) and the summary-shaping engine options, mirroring
    :func:`repro.orchestrator.store.summary_key`.  Path/time budgets are
    excluded: a starved budget yields ``unknown``, and unknown records are
    never stored, so budgets cannot poison the tier — while a stored
    proof obtained under a generous budget stays a proof under any budget.
    """
    material = "\x1f".join(
        (
            f"r{RECORD_VERSION}",
            pipeline_fingerprint,
            property_set_fingerprint(properties),
            ",".join(str(length) for length in input_lengths),
            options.static_table_mode,
            f"prune={options.prune_infeasible_branches}",
            f"conflicts={options.solver_max_conflicts}",
            f"cex={max_counterexamples}",
            f"replay={confirm_by_replay}",
            f"bounds={instruction_bounds}",
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


class VerdictStore(Store):
    """Content-addressed persistence for per-pipeline certification records."""

    kind = "verdict store"

    def load_record(self, digest: str) -> Optional["PipelineCertification"]:
        """Return the stored certification, or ``None`` on a miss.

        Corrupt or stale-format entries are quarantined and read as
        misses, exactly like summary-store entries.
        """
        from .fleet import PipelineCertification

        text = self.read_entry(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
            if payload.get("version") != RECORD_VERSION:
                raise ValueError(f"unsupported record version {payload.get('version')!r}")
            certification = PipelineCertification.from_dict(payload["certification"])
        except Exception:
            self.quarantine_entry(digest)
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return certification

    def load_records(self, digests: Sequence[str]) -> dict:
        """Bulk :meth:`load_record`: ``{digest: certification}`` for every hit.

        One chunked query on the SQLite backend instead of one round trip
        per pipeline — at fleet scale (1,000+ records) the per-call
        overhead is the warm run.  Statistics (hits, misses, quarantines)
        are counted per entry exactly as the one-at-a-time path would, so
        differential backend comparisons stay exact.
        """
        from .fleet import PipelineCertification

        records = {}
        for digest, text in self.read_entries(digests).items():
            try:
                payload = json.loads(text)
                if payload.get("version") != RECORD_VERSION:
                    raise ValueError(f"unsupported record version {payload.get('version')!r}")
                records[digest] = PipelineCertification.from_dict(payload["certification"])
            except Exception:
                self.quarantine_entry(digest)
                self.statistics.misses += 1
                continue
            self.statistics.hits += 1
        return records

    def save_record(self, digest: str, certification: "PipelineCertification") -> bool:
        """Persist a certification record; refuses (returns False) on ``unknown``.

        An unknown verdict is a budget artifact: storing it would pin the
        failure and rob a future (possibly better-budgeted) run of the
        chance to resolve it.
        """
        if any(result.verdict == Verdict.UNKNOWN for result in certification.results):
            return False
        payload = {"version": RECORD_VERSION, "certification": certification.to_dict()}
        self.write_entry(digest, json.dumps(payload, separators=(",", ":")))
        return True
