"""Churn/verdict history: which pipelines should reach a verdict first?

The ROADMAP's churn-hotspot item (and the O&M hotspot-localization line
of work in PAPERS.md: rank *where* trouble will land from passively
collected history) applied to scheduling: under delta mode almost every
pipeline is served whole from the verdict store, so the interesting
wall-clock question is how fast the few *changed* — and historically
troublesome — pipelines reach a verdict.  The ``risk`` schedule policy
(:mod:`repro.orchestrator.scheduler`) answers it by ranking the catalog
with the history this module persists.

The history rides the existing :class:`~repro.orchestrator.store.Store`
facade (same backends, same quarantine/gc semantics): one entry per
pipeline *name*, keyed by a versioned digest of the name, holding how
often its fingerprint changed between observed runs (churn), how many
property violations it has produced, and how many runs observed it.
Names — not fingerprints — key the history on purpose: churn is a fact
about the *slot* in the catalog ("the edge NAT keeps changing"), and the
fingerprint is exactly what changes.  Profiles are fed from the same
catalog manifests the change-impact engine diffs
(:func:`repro.orchestrator.impact.catalog_manifest`), so ``recertify``
records history as a side effect of the delta workflow.

Scoring is deliberately simple and monotone: violations outweigh churn,
churn outweighs bulk, never-seen pipelines sit between (new code is risk,
but evidence beats novelty).  The policy only *reorders* work — a wrong
rank costs latency-to-verdict, never a verdict.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..dataplane.pipeline import Pipeline
from .store import Store

__all__ = [
    "RISK_VERSION",
    "RiskHistory",
    "RiskProfile",
    "RiskStore",
    "risk_key",
]

#: Bump when the profile layout changes; a mismatch reads as a miss.
RISK_VERSION = 1


def risk_key(pipeline_name: str) -> str:
    """The store digest for one pipeline's history entry."""
    return hashlib.sha256(f"risk{RISK_VERSION}\x1f{pipeline_name}".encode()).hexdigest()


@dataclass
class RiskProfile:
    """What history knows about one pipeline name."""

    churn: int = 0
    violations: int = 0
    runs: int = 0
    last_fingerprint: str = ""

    def score(self) -> float:
        """Higher = certify earlier.  Violations dominate, then churn."""
        return self.violations * 4.0 + self.churn * 2.0

    def to_dict(self) -> dict:
        return {
            "churn": self.churn,
            "violations": self.violations,
            "runs": self.runs,
            "last_fingerprint": self.last_fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RiskProfile":
        return cls(
            churn=int(payload.get("churn", 0)),
            violations=int(payload.get("violations", 0)),
            runs=int(payload.get("runs", 0)),
            last_fingerprint=str(payload.get("last_fingerprint", "")),
        )


class RiskStore(Store):
    """Content-addressed persistence for per-pipeline risk profiles."""

    kind = "risk store"

    def load_profiles(self, names: Sequence[str]) -> Dict[str, RiskProfile]:
        """Bulk-load profiles by pipeline name; absent names are omitted."""
        keys = {risk_key(name): name for name in names}
        profiles: Dict[str, RiskProfile] = {}
        for digest, text in self.read_entries(list(keys)).items():
            try:
                payload = json.loads(text)
                if payload.get("version") != RISK_VERSION:
                    raise ValueError(f"unsupported risk version {payload.get('version')!r}")
                profiles[keys[digest]] = RiskProfile.from_dict(payload["profile"])
            except Exception:
                self.quarantine_entry(digest)
                self.statistics.misses += 1
                continue
            self.statistics.hits += 1
        return profiles

    def save_profile(self, name: str, profile: RiskProfile) -> None:
        payload = {"version": RISK_VERSION, "name": name, "profile": profile.to_dict()}
        self.write_entry(risk_key(name), json.dumps(payload, separators=(",", ":")))


class RiskHistory:
    """The in-memory view the scheduler ranks with and runs feed.

    Construct it over a :class:`RiskStore` (or a bare directory) and it
    lazily bulk-loads the profiles a catalog needs.  After a run,
    :meth:`record` folds the run's manifest and verdicts back in: a
    fingerprint that moved since the last observation is one unit of
    churn, each violated property is one violation.
    """

    def __init__(self, store: RiskStore) -> None:
        self.store = store if isinstance(store, RiskStore) else RiskStore(store)
        self._profiles: Dict[str, RiskProfile] = {}

    def profile(self, name: str) -> RiskProfile:
        if name not in self._profiles:
            self._profiles.update(self.store.load_profiles([name]))
        return self._profiles.setdefault(name, RiskProfile())

    def preload(self, names: Sequence[str]) -> None:
        missing = [name for name in names if name not in self._profiles]
        if missing:
            self._profiles.update(self.store.load_profiles(missing))
            for name in missing:
                self._profiles.setdefault(name, RiskProfile())

    def rank(self, pipelines: Sequence[Pipeline]) -> List[int]:
        """Catalog indices, most-urgent first (ties break on catalog order).

        Never-observed pipelines score 1.0 — above a long quiet history,
        below anything with real churn or a violation on record.
        """
        names = [pipeline.name for pipeline in pipelines]
        self.preload(names)

        def urgency(index: int) -> float:
            profile = self._profiles[names[index]]
            if profile.runs == 0:
                return 1.0
            return profile.score()

        return sorted(range(len(pipelines)), key=lambda i: (-urgency(i), i))

    def record(
        self,
        manifest: dict,
        verdicts: Sequence[tuple],
        violated: str = "violated",
    ) -> None:
        """Fold one run into the history and persist it.

        ``manifest`` is :func:`repro.orchestrator.impact.catalog_manifest`
        output (name -> fingerprint); ``verdicts`` are the flat
        ``(pipeline, property, verdict)`` rows of
        :meth:`repro.orchestrator.fleet.FleetReport.verdicts`.
        """
        violations: Dict[str, int] = {}
        for pipeline_name, _property_name, verdict in verdicts:
            if verdict == violated:
                violations[pipeline_name] = violations.get(pipeline_name, 0) + 1
        entries = manifest.get("pipelines", {})
        self.preload(list(entries))
        for name, entry in entries.items():
            profile = self._profiles[name]
            fingerprint = entry.get("fingerprint", "")
            if profile.runs > 0 and profile.last_fingerprint != fingerprint:
                profile.churn += 1
            profile.last_fingerprint = fingerprint
            profile.violations += violations.get(name, 0)
            profile.runs += 1
            self.store.save_profile(name, profile)
        self.store.flush()

    def seed(self, name: str, churn: int = 0, violations: int = 0) -> None:
        """Mark a pipeline risky by fiat (tests, operator overrides)."""
        profile = self.profile(name)
        profile.churn += churn
        profile.violations += violations
        profile.runs = max(profile.runs, 1)
        self.store.save_profile(name, profile)
        self.store.flush()
