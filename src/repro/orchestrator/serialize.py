"""Stable DAG serialization for hash-consed terms and element summaries.

The solver's terms are hash-consed: structurally equal terms are one
shared instance identified by a process-unique ``uid``.  A summary's
segments share large subterms (the same packet-byte expressions appear in
many path constraints), so serializing each segment independently would
blow the shared DAG up into a tree.  The encoder here walks the DAG in
topological order (:func:`repro.smt.iter_dag`) and emits **each interned
term once**, as a flat node list whose edges are slot indices; segments
then refer to their terms by slot.

Decoding replays the node list through :func:`repro.smt.mk_term`, so every
loaded term is re-interned into the live process: sharing is restored,
structural equality is again an ``is`` check, and the memoized simplifier
and uid-keyed solver caches work on loaded summaries exactly as they do on
freshly computed ones.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .. import smt
from ..smt import Term
from ..symbex.segment import ElementSummary
from .errors import SerializationError

#: Bump when the node or summary layout changes; stored payloads carry the
#: version and the store treats a mismatch as a miss, not an error.
FORMAT_VERSION = 1

#: Sort encoding: booleans are 0, bitvectors are their (positive) width.
_BOOL_SORT = 0


class TermTable:
    """Encoder: assigns each distinct interned term one slot in a node list.

    Nodes are emitted children-first, so ``nodes[i]`` only references slots
    ``< i`` — decoding is a single forward pass.
    """

    def __init__(self) -> None:
        self.nodes: List[list] = []
        self._slots: Dict[int, int] = {}  # term uid -> slot index
        self._seen: set = set()  # threads iter_dag's pruning across ref() calls

    def ref(self, term: Term) -> int:
        """Return the slot of ``term``, emitting any missing DAG nodes first.

        The shared ``seen`` set prunes the walk at subgraphs emitted by
        earlier ``ref`` calls, so encoding a whole summary is one pass
        over its DAG however many segment fields reference it.
        """
        term = smt.intern_term(term)
        slot = self._slots.get(term.uid)
        if slot is not None:
            return slot
        for node in smt.iter_dag([term], seen=self._seen):
            self._slots[node.uid] = len(self.nodes)
            self.nodes.append(self._encode_node(node))
        return self._slots[term.uid]

    def _encode_node(self, term: Term) -> list:
        sort = _BOOL_SORT if term.sort.is_bool() else term.sort.width
        value = term.value
        if isinstance(value, bool):
            # JSON keeps bool/int distinct, but be explicit: booleans travel
            # as 0/1 tagged by the sort so decoding never guesses.
            value = int(value)
        return [
            term.op,
            sort,
            [self._slots[arg.uid] for arg in term.args],
            value,
            term.name,
            list(term.params),
        ]


class TermLoader:
    """Decoder: rebuilds the node list through ``mk_term`` (re-interning)."""

    def __init__(self, nodes: Sequence[Sequence]) -> None:
        self._terms: List[Term] = []
        for index, node in enumerate(nodes):
            try:
                op, sort, args, value, name, params = node
            except ValueError as exc:
                raise SerializationError(f"malformed term node {index}: {node!r}") from exc
            if any(not isinstance(arg, int) or not 0 <= arg < index for arg in args):
                raise SerializationError(f"term node {index} references an invalid slot")
            if op in (smt.Op.BOOL_CONST,):
                decoded_value = bool(value)
            else:
                decoded_value = value
            self._terms.append(
                smt.mk_term(
                    op,
                    tuple(self._terms[arg] for arg in args),
                    smt.BOOL if sort == _BOOL_SORT else smt.bitvec(sort),
                    value=decoded_value,
                    name=name,
                    params=tuple(params),
                )
            )

    def term(self, slot: int) -> Term:
        if not isinstance(slot, int) or not 0 <= slot < len(self._terms):
            raise SerializationError(f"term reference {slot!r} is out of range")
        return self._terms[slot]


def encode_terms(roots: Sequence[Term]) -> dict:
    """Encode a list of terms as ``{"nodes": [...], "roots": [slots...]}``."""
    table = TermTable()
    refs = [table.ref(root) for root in roots]
    return {"version": FORMAT_VERSION, "nodes": table.nodes, "roots": refs}


def decode_terms(payload: dict) -> List[Term]:
    """Decode :func:`encode_terms` output back into (re-interned) terms."""
    if payload.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported term payload version {payload.get('version')!r}")
    loader = TermLoader(payload["nodes"])
    return [loader.term(slot) for slot in payload["roots"]]


def summary_to_payload(summary: ElementSummary) -> dict:
    """Encode an element summary plus its shared term table as one dict."""
    table = TermTable()
    encoded = summary.to_dict(table)
    return {"version": FORMAT_VERSION, "terms": table.nodes, "summary": encoded}


def summary_from_payload(payload: dict) -> ElementSummary:
    """Decode :func:`summary_to_payload` output; terms are re-interned."""
    if payload.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported summary payload version {payload.get('version')!r}"
        )
    loader = TermLoader(payload["terms"])
    return ElementSummary.from_dict(payload["summary"], loader)


def dumps_summary(summary: ElementSummary) -> str:
    """Serialize an element summary to a JSON string."""
    return json.dumps(summary_to_payload(summary), separators=(",", ":"))


def loads_summary(text: str) -> ElementSummary:
    """Deserialize a summary produced by :func:`dumps_summary`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"summary payload is not valid JSON: {exc}") from exc
    return summary_from_payload(payload)
