"""Fleet-scale certification: verify a catalog of pipelines as one batch.

The paper's app-store use case (§2) certifies one candidate element
against one pipeline.  At fleet scale an operator holds a *catalog* of
pipelines that share most of their elements (every variant starts with the
same CheckIPHeader, routes through the same IPLookup configuration, …).
:func:`certify_fleet` exploits that sharing the same way the verifier
exploits sharing within one pipeline:

1. **Step 1, deduplicated and sharded** — the catalog's (element
   configuration, input length) jobs are discovered breadth-first across
   *all* pipelines at once, deduplicated by store digest, and summarized
   in parallel worker processes backed by one shared
   :class:`~repro.orchestrator.store.SummaryStore`.  An element appearing
   in twenty pipelines is symbolically executed once — and zero times on a
   warm store.
2. **Step 2, sharded by pipeline** — per-pipeline suspect-composition
   checks are independent, so each worker certifies its pipelines against
   every property, hydrating summaries from the store (L2 hits, no
   symbolic execution).

Merging is deterministic: certifications come back in catalog order, and
parallel runs produce the same verdicts and counterexamples as serial
runs.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..dataplane.element import Element
from ..dataplane.fingerprint import pipeline_fingerprint
from ..dataplane.pipeline import Pipeline
from ..obs.stats import StatisticsMixin
from ..obs.trace import NullTracer, Tracer, active, clock, enable, tracer
from ..smt.qcache import QueryCacheStatistics
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..verify.cache import SummaryCache
from ..verify.pipeline_verifier import PipelineVerifier
from ..verify.properties import Property
from ..verify.report import InstructionBoundResult, VerificationResult
from .errors import OrchestratorError
from .scheduler import FIFO, OFF, SCHEDULES, SchedulerStatistics, run_scheduled
from .store import QueryStore, SummaryStore
from .verdicts import VerdictStore, verdict_key
from .workers import (
    COMPUTED,
    EXPLODED,
    WorkerPool,
    drain_observability,
    job_digest,
    merge_observability,
    merge_query_entries,
    run_tasks,
    summarize_jobs,
    worker_query_cache,
    worker_summary_store,
)

#: Provenance labels: the certification was verified on this run, ...
FRESH = "fresh"
#: ... or reused from the verdict store because the pipeline's fingerprint
#: (and the whole verification request) was unchanged.
DELTA_REUSED = "delta-reused"


@dataclass
class PipelineCertification:
    """One pipeline's verdicts against every requested property."""

    pipeline_name: str
    results: List[VerificationResult] = field(default_factory=list)
    instruction_bound: Optional[InstructionBoundResult] = None
    #: :data:`FRESH` when verified on this run, :data:`DELTA_REUSED` when
    #: served from the verdict store.  Reused certifications' statistics
    #: describe the run that originally computed them, so the fleet-level
    #: counters deliberately exclude them.
    provenance: str = FRESH
    #: Why this pipeline was (or was not) re-verified, as human-readable
    #: impact provenance ("element lookup: contents of static table
    #: 'routes' changed", "unchanged configuration", ...).  Filled by the
    #: change-impact engine; plain ``certify_fleet`` leaves it empty.
    impact_causes: List[str] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        return all(result.proved for result in self.results)

    @property
    def reused(self) -> bool:
        return self.provenance == DELTA_REUSED

    def __repr__(self) -> str:
        verdicts = ", ".join(f"{r.property_name}={r.verdict}" for r in self.results)
        return f"PipelineCertification({self.pipeline_name!r}, {verdicts})"

    def to_dict(self) -> dict:
        return {
            "pipeline_name": self.pipeline_name,
            "results": [result.to_dict() for result in self.results],
            "instruction_bound": (
                self.instruction_bound.to_dict() if self.instruction_bound else None
            ),
            "provenance": self.provenance,
            "impact_causes": list(self.impact_causes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineCertification":
        bound = payload.get("instruction_bound")
        return cls(
            pipeline_name=payload["pipeline_name"],
            results=[VerificationResult.from_dict(r) for r in payload.get("results", [])],
            instruction_bound=InstructionBoundResult.from_dict(bound) if bound else None,
            provenance=payload.get("provenance", FRESH),
            impact_causes=list(payload.get("impact_causes", [])),
        )

    def relabel(self, pipeline_name: str) -> None:
        """Adopt the current catalog's name for this pipeline.

        Verdict records are content-addressed by fingerprint, which
        normalizes names out — a renamed-but-identical pipeline hits the
        record stored under its old name.
        """
        self.pipeline_name = pipeline_name
        for result in self.results:
            result.pipeline_name = pipeline_name
        if self.instruction_bound is not None:
            self.instruction_bound.pipeline_name = pipeline_name


@dataclass
class FleetStatistics(StatisticsMixin):
    """Aggregate work accounting for one fleet run."""

    #: Merging two runs keeps the larger pool, not the sum — see
    #: :attr:`repro.obs.stats.StatisticsMixin.MERGE_MAX`.
    MERGE_MAX = ("workers",)

    pipelines: int = 0
    properties_checked: int = 0
    workers: int = 1
    element_instances: int = 0
    distinct_summary_jobs: int = 0
    #: Actual Step-1 symbolic executions performed (0 on a warm store).
    summaries_computed: int = 0
    #: Step-1 discovery jobs served from the on-disk store instead of being
    #: computed — the work a warm store *avoided*.
    store_hits: int = 0
    #: Store loads performed by Step-2 worker processes to rehydrate their
    #: caches.  In parallel mode this is mandatory transport, not avoided
    #: work; serial mode reuses the in-process cache and reports 0.
    step2_store_loads: int = 0
    solver_checks: int = 0
    #: Times a CDCL search actually ran across the whole (fresh) fleet
    #: run — 0 on a warm run backed by the persistent L3 query cache.
    sat_core_calls: int = 0
    #: Slice questions the query-optimization layer answered from cache.
    qcache_hits: int = 0
    #: Step-1 path accounting: terminal states reached, sibling pairs
    #: collapsed by the ite-lifting merge pass, ite terms that lifting
    #: introduced, and candidate pairs the merge policy rejected.
    paths_explored: int = 0
    paths_merged: int = 0
    ites_introduced: int = 0
    merge_rejected: int = 0
    composed_paths_checked: int = 0
    counterexamples: int = 0
    #: Delta-mode split: pipelines verified on this run vs. served whole
    #: from the verdict store.  Reused pipelines contribute *nothing* to
    #: the work counters above — zero symbolic executions, zero solver
    #: checks — which is the whole point of the tier.
    verdicts_fresh: int = 0
    verdicts_reused: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class FleetReport:
    """The merged result of certifying a catalog."""

    certifications: List[PipelineCertification] = field(default_factory=list)
    statistics: FleetStatistics = field(default_factory=FleetStatistics)
    #: Scheduler-side accounting (pool forks, idle time, retries) when the
    #: run went through the persistent scheduler; ``None`` on the serial
    #: and wave-synchronous paths.
    scheduler: Optional[SchedulerStatistics] = None

    @property
    def certified(self) -> List[PipelineCertification]:
        return [c for c in self.certifications if c.certified]

    @property
    def rejected(self) -> List[PipelineCertification]:
        return [c for c in self.certifications if not c.certified]

    def verdicts(self) -> List[Tuple[str, str, str]]:
        """Flat (pipeline, property, verdict) rows — the comparable core of a run."""
        return [
            (certification.pipeline_name, result.property_name, result.verdict)
            for certification in self.certifications
            for result in certification.results
        ]

    def summary(self) -> str:
        stats = self.statistics
        lines = [
            f"fleet      : {stats.pipelines} pipelines x {stats.properties_checked} properties "
            f"({stats.workers} workers)"
            + (
                f", {stats.verdicts_reused} reused / {stats.verdicts_fresh} fresh"
                if stats.verdicts_reused
                else ""
            ),
            f"step 1     : {stats.element_instances} element instances -> "
            f"{stats.distinct_summary_jobs} distinct jobs, "
            f"{stats.summaries_computed} computed, {stats.store_hits} from store",
            f"merge      : {stats.paths_explored} paths explored, "
            f"{stats.paths_merged} merged "
            f"({stats.ites_introduced} ites, {stats.merge_rejected} rejected)",
            f"step 2     : {stats.composed_paths_checked} composed paths, "
            f"{stats.solver_checks} solver checks, "
            f"{stats.sat_core_calls} SAT-core calls "
            f"({stats.qcache_hits} query-cache hits)"
            + (
                f", {stats.step2_store_loads} store rehydrations"
                if stats.step2_store_loads
                else ""
            ),
            f"verdict    : {len(self.certified)} certified / {len(self.rejected)} rejected, "
            f"{stats.counterexamples} counterexamples",
            f"time       : {stats.elapsed_seconds:.2f}s",
        ]
        for certification in self.rejected:
            failing = [r for r in certification.results if not r.proved]
            for result in failing:
                lines.append(
                    f"  rejected {certification.pipeline_name}: {result.property_name} "
                    f"is {result.verdict}"
                )
        return "\n".join(lines)


def _entry_of(pipeline: Pipeline) -> Element:
    entries = pipeline.entry_elements()
    if len(entries) != 1:
        raise OrchestratorError(
            f"pipeline {pipeline.name!r} has {len(entries)} entry elements; "
            "fleet certification needs exactly one"
        )
    return entries[0]


def _discover_jobs(
    pipelines: Sequence[Pipeline],
    input_lengths: Sequence[int],
    options: SymbexOptions,
    workers: int,
    store: SummaryStore,
    qstats: Optional[QueryCacheStatistics] = None,
    pool: Optional[WorkerPool] = None,
) -> Tuple[Dict[str, object], int, int]:
    """Breadth-first Step-1 over the whole catalog, deduplicated by digest.

    Downstream packet lengths are only known once the upstream summary
    exists, so discovery proceeds in waves: summarize the current frontier
    of distinct jobs in parallel, expand each pipeline's worklist through
    the new summaries, repeat.  A job that blows its path/time budget is
    simply not prefetched — the owning pipeline's own verification hits
    the same budget and reports ``unknown``, exactly as a serial run
    would.  Each frontier's warm-store probes go through one bulk read
    (:meth:`SummaryStore.load_digests`) instead of a round trip per job,
    and ``pool`` reuses one set of worker processes across every wave.
    Returns (summaries by digest, computed count, store-hit count).
    """
    summaries: Dict[str, object] = {}
    exploded: Set[str] = set()  # budget-blown digests: never re-batched
    computed_count = 0
    loaded_count = 0
    # Per-pipeline BFS state, mirroring PipelineVerifier.element_summaries.
    visited: List[Set[Tuple[str, int]]] = [set() for _ in pipelines]
    worklists: List[List[Tuple[Element, int]]] = []
    for pipeline in pipelines:
        entry = _entry_of(pipeline)
        worklists.append([(entry, length) for length in input_lengths])

    while True:
        wave: List[Tuple[int, Element, int, str]] = []
        frontier: List[Tuple[Element, int, str]] = []
        frontier_digests: Set[str] = set()
        for index, worklist in enumerate(worklists):
            while worklist:
                element, length = worklist.pop()
                key = (element.name, length)
                if key in visited[index]:
                    continue
                visited[index].add(key)
                digest = job_digest(element, length, options)
                wave.append((index, element, length, digest))
                if digest in summaries or digest in exploded or digest in frontier_digests:
                    continue
                frontier.append((element, length, digest))
                frontier_digests.add(digest)
        if not wave:
            break
        # Warm-store entries load in-process — no reason to ship the job to
        # a worker only to parse the same JSON twice — and the whole
        # frontier probes in one bulk read, not one round trip per job.
        stored = store.load_digests([digest for _element, _length, digest in frontier])
        batch: List[Tuple[Element, int]] = []
        batch_digests: List[str] = []
        for element, length, digest in frontier:
            summary = stored.get(digest)
            if summary is not None:
                summaries[digest] = summary
                loaded_count += 1
                continue
            batch.append((element, length))
            batch_digests.append(digest)
        if batch:
            results = summarize_jobs(
                batch, options, workers=workers, store=store, qstats=qstats, pool=pool
            )
            for digest, (status, summary, _detail) in zip(batch_digests, results):
                if status == EXPLODED:
                    exploded.add(digest)
                    continue
                summaries[digest] = summary
                if status == COMPUTED:
                    computed_count += 1
                else:
                    loaded_count += 1
        for index, element, _length, digest in wave:
            summary = summaries.get(digest)
            if summary is None:  # exploded job: stop expanding this branch
                continue
            for segment in summary.emit_segments:  # type: ignore[attr-defined]
                downstream = pipelines[index].downstream(element, segment.port or 0)
                if downstream is not None:
                    worklists[index].append((downstream[0], len(segment.output_bytes)))
    return summaries, computed_count, loaded_count


def _certify_one(
    pipeline: Pipeline,
    properties: Sequence[Property],
    input_lengths: Sequence[int],
    cache: SummaryCache,
    max_counterexamples: int,
    confirm_by_replay: bool,
    with_instruction_bound: bool,
) -> PipelineCertification:
    verifier = PipelineVerifier(pipeline, options=cache.options, cache=cache)
    certification = PipelineCertification(pipeline_name=pipeline.name)
    with tracer().span("fleet.pipeline", "fleet", pipeline=pipeline.name) as span:
        for target_property in properties:
            certification.results.append(
                verifier.verify(
                    target_property,
                    input_lengths=list(input_lengths),
                    max_counterexamples=max_counterexamples,
                    confirm_by_replay=confirm_by_replay,
                )
            )
        if with_instruction_bound:
            certification.instruction_bound = verifier.instruction_bound(
                input_lengths=list(input_lengths), find_witness=False
            )
        span.set(certified=certification.certified)
    return certification


def _certify_worker(payload) -> Tuple[PipelineCertification, int, int, list, dict]:
    """Per-pipeline Step-2 task: certify one pipeline from the shared store.

    The query cache is opened read-only (see
    :func:`repro.orchestrator.workers.worker_query_cache`); newly solved
    slice entries ride back with the result for the parent to merge, and
    observability output (spans, slow-solve records, query-tier counters)
    travels the same way as a fifth tuple member.
    """
    (
        pipeline,
        properties,
        input_lengths,
        options,
        store_root,
        max_counterexamples,
        confirm_by_replay,
        with_instruction_bound,
    ) = payload
    if options.trace:
        enable()
    query_cache = worker_query_cache(options)
    store = worker_summary_store(store_root)
    cache = SummaryCache(options, store=store, query_cache=query_cache)
    try:
        certification = _certify_one(
            pipeline,
            properties,
            input_lengths,
            cache,
            max_counterexamples,
            confirm_by_replay,
            with_instruction_bound,
        )
    finally:
        if store is not None:
            # Push worker-side miss writes into this worker's shard before
            # the pool can recycle the process (see _summarize_worker).
            store.close()
    return (
        certification,
        cache.statistics.misses,
        cache.statistics.l2_hits,
        query_cache.new_entries if query_cache is not None else [],
        drain_observability(query_cache),
    )


def certify_fleet(
    pipelines: Sequence[Pipeline],
    properties: Sequence[Property],
    input_lengths: Sequence[int] = (64,),
    workers: int = 1,
    store: Optional[Union[SummaryStore, str]] = None,
    options: Optional[SymbexOptions] = None,
    max_counterexamples: int = 3,
    confirm_by_replay: bool = True,
    instruction_bounds: bool = False,
    verdict_store: Optional[Union[VerdictStore, str]] = None,
    query_store: Optional[Union[QueryStore, str]] = None,
    trace: Union[bool, Tracer, NullTracer, None] = None,
    schedule: str = FIFO,
    risk_history=None,
) -> FleetReport:
    """Certify every pipeline in the catalog against every property.

    ``workers`` > 1 shards both steps across processes; the effective
    pool size is ``min(requested, os.cpu_count())`` — forking a pool on
    a host without the cores to run it is strictly slower than serial,
    so one effective worker falls back to in-process execution.  A
    ``store`` (path or :class:`SummaryStore`) persists summaries across
    runs — pass the same store twice and the second run performs no
    symbolic execution for an unchanged catalog.  Parallel mode requires
    the shared store as its transport; an ephemeral one is created when
    none is given.

    ``schedule`` picks how parallel work is ordered.  The default
    (``fifo``, also ``risk`` / ``largest-first``) drives both steps
    through the persistent dependency-aware scheduler
    (:mod:`repro.orchestrator.scheduler`): one pool for the whole run,
    no wave barriers, Step-2 verification overlapping Step-1 symbex, and
    pipelines prioritized by the policy — ``risk`` ranks them by the
    churn/verdict history in ``risk_history`` (a
    :class:`repro.orchestrator.risk.RiskHistory`).  ``schedule="off"``
    keeps the wave-synchronous path (frontier barriers, Step 2 strictly
    after Step 1) — now over a single reused pool rather than one fork
    per wave.  Every schedule produces identical verdicts, counters and
    worker spans; only the order (and the wall clock) moves.

    A ``query_store`` (path or :class:`QueryStore`) persists the query
    cache's L3 tier: sliced solver verdicts, models and unsat cores
    survive across runs, so a warm re-certification performs **zero
    SAT-core calls** for unchanged pipelines — the solver-level analogue
    of the summary store's zero-symbex warm path.  Workers open it
    read-only and ship new entries back for the parent to merge.

    A ``verdict_store`` (path or :class:`VerdictStore`) turns the run into
    **delta mode**: pipelines whose fingerprint x property-set record
    exists are served whole from the store (labelled
    :data:`DELTA_REUSED`; zero symbolic executions, zero solver checks)
    and only the remainder — changed or never-seen pipelines — is
    verified (labelled :data:`FRESH`) and written back.  Verdicts are
    identical to a cold full pass: the record key covers everything a
    verdict depends on.

    ``trace`` turns on span tracing (:mod:`repro.obs`) for the run:
    ``True`` installs a fresh :class:`~repro.obs.trace.Tracer` scoped to
    this call, or pass your own tracer to accumulate across calls.  Fork
    workers record onto their own (inherited, pid-cleared) buffers and
    ship their spans back with their results; the merged trace holds
    each span exactly once, on one shared monotonic timeline.  With
    ``trace`` unset the run inherits whatever tracer is already active —
    usually the no-op singleton, which costs nothing.
    """
    if isinstance(trace, (Tracer, NullTracer)):
        scope: contextlib.AbstractContextManager = active(trace)
    elif trace:
        scope = active(Tracer())
    else:
        scope = contextlib.nullcontext()
    with scope:
        return _certify_fleet(
            pipelines,
            properties,
            input_lengths,
            workers,
            store,
            options,
            max_counterexamples,
            confirm_by_replay,
            instruction_bounds,
            verdict_store,
            query_store,
            schedule,
            risk_history,
        )


def _certify_fleet(
    pipelines: Sequence[Pipeline],
    properties: Sequence[Property],
    input_lengths: Sequence[int],
    workers: int,
    store: Optional[Union[SummaryStore, str]],
    options: Optional[SymbexOptions],
    max_counterexamples: int,
    confirm_by_replay: bool,
    instruction_bounds: bool,
    verdict_store: Optional[Union[VerdictStore, str]],
    query_store: Optional[Union[QueryStore, str]],
    schedule: str = FIFO,
    risk_history=None,
) -> FleetReport:
    """The certification body, running under whatever tracer is active."""
    started = clock()
    options = options or SymbexOptions()
    if schedule not in SCHEDULES:
        raise OrchestratorError(
            f"unknown schedule {schedule!r} (expected one of {', '.join(SCHEDULES)})"
        )
    trace = tracer()
    if trace.enabled and not options.trace:
        # Workers learn the parent is tracing through the options they are
        # forked with; summary/verdict store keys deliberately exclude it.
        options = dataclasses.replace(options, trace=True)
    # More workers than cores is pure overhead (fork + store round trips
    # with no parallelism underneath: 0.87x on a 1-CPU host); clamp to
    # the machine, and one effective worker means the serial path.
    workers = max(1, min(workers, os.cpu_count() or 1))
    for pipeline in pipelines:
        pipeline.validate()
        _entry_of(pipeline)  # fail fast on ambiguous catalogs, in any mode
    report = FleetReport()
    report.statistics.pipelines = len(pipelines)
    report.statistics.properties_checked = len(properties)
    report.statistics.workers = workers
    report.statistics.element_instances = sum(len(p.elements) for p in pipelines)

    if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
        store = SummaryStore(store)
    if isinstance(verdict_store, (str,)) or hasattr(verdict_store, "__fspath__"):
        verdict_store = VerdictStore(verdict_store)
    if isinstance(query_store, (str,)) or hasattr(query_store, "__fspath__"):
        query_store = QueryStore(query_store)
    if query_store is not None:
        # The L3 tier travels as an engine option so worker processes and
        # every engine the caches spawn see the same directory.  The key
        # functions (summary_key, verdict_key) deliberately ignore it.
        options = dataclasses.replace(options, query_cache_dir=str(query_store.root))

    # Delta mode: serve unchanged pipelines straight from the verdict store.
    merged: Dict[int, PipelineCertification] = {}
    record_keys: List[Optional[str]] = [None] * len(pipelines)
    if verdict_store is not None:
        include_tables = options.static_table_mode == StaticTableMode.CONCRETE
        for index, pipeline in enumerate(pipelines):
            record_keys[index] = verdict_key(
                pipeline_fingerprint(pipeline, include_static_tables=include_tables),
                properties,
                input_lengths,
                options,
                max_counterexamples,
                confirm_by_replay,
                instruction_bounds,
            )
        # One bulk read instead of a round trip per pipeline: on the
        # batched backend a warm fleet lookup is a handful of chunked
        # queries, not len(pipelines) of them.
        records = verdict_store.load_records(
            [key for key in record_keys if key is not None]
        )
        consumed: Set[str] = set()
        for index, pipeline in enumerate(pipelines):
            record = records.get(record_keys[index])
            if record is not None:
                if record_keys[index] in consumed:
                    # Identical pipelines share a digest; each index still
                    # gets its own record object (relabel mutates it).
                    record = copy.deepcopy(record)
                consumed.add(record_keys[index])
                record.provenance = DELTA_REUSED
                record.impact_causes = []
                record.relabel(pipeline.name)
                merged[index] = record
    fresh_indices = [index for index in range(len(pipelines)) if index not in merged]
    fresh_pipelines = [pipelines[index] for index in fresh_indices]
    report.statistics.verdicts_reused = len(merged)
    report.statistics.verdicts_fresh = len(fresh_pipelines)

    ephemeral: Optional[tempfile.TemporaryDirectory] = None
    if workers > 1 and store is None:
        ephemeral = tempfile.TemporaryDirectory(prefix="repro-fleet-store-")
        store = SummaryStore(ephemeral.name)

    fresh_certifications: List[PipelineCertification] = []
    # Fleet-wide per-tier query-cache counters: serial runs read them off
    # the shared cache, parallel runs fold in what each worker shipped.
    fleet_qstats = QueryCacheStatistics()
    try:
        if workers > 1 and fresh_pipelines and schedule != OFF:
            assert store is not None
            # The persistent scheduler: one pool, no wave barriers, Step-2
            # verification overlapping Step-1 symbex, shards merged
            # incrementally as each task's result arrives.
            scheduled = run_scheduled(
                fresh_pipelines,
                properties,
                input_lengths,
                options,
                workers,
                store,
                max_counterexamples=max_counterexamples,
                confirm_by_replay=confirm_by_replay,
                instruction_bounds=instruction_bounds,
                schedule=schedule,
                risk_history=risk_history,
                qstats=fleet_qstats,
            )
            report.scheduler = scheduled.statistics
            report.statistics.distinct_summary_jobs = len(scheduled.summaries)
            report.statistics.summaries_computed = scheduled.computed
            report.statistics.store_hits = scheduled.loaded
            # Step-1 solver work happened in worker forks; the counters
            # ride back on the computed summaries (store-loaded ones are
            # rightly zero), so scheduled runs account like serial ones.
            for summary in scheduled.summaries.values():
                report.statistics.sat_core_calls += getattr(summary, "sat_core_calls", 0)
                report.statistics.qcache_hits += getattr(summary, "qcache_hits", 0)
            for position in range(len(fresh_pipelines)):
                certification, misses, l2_hits = scheduled.step2[position]
                fresh_certifications.append(certification)
                report.statistics.summaries_computed += misses
                report.statistics.step2_store_loads += l2_hits
            merge_query_entries(options.query_cache_dir, scheduled.query_entries)
        elif workers > 1 and fresh_pipelines:
            assert store is not None
            # Wave-synchronous fallback (schedule="off"): one *shared* pool
            # reused across every discovery wave and Step 2, instead of the
            # historical fork-per-wave churn.
            with WorkerPool(workers) as shared_pool:
                # Step 1: catalog-wide deduplicated summarization into the store.
                step1_started = clock()
                summaries, computed, loaded = _discover_jobs(
                    fresh_pipelines, input_lengths, options, workers, store,
                    qstats=fleet_qstats, pool=shared_pool,
                )
                if trace.enabled:
                    trace.record_span(
                        "fleet.summarize",
                        "fleet",
                        step1_started,
                        clock(),
                        jobs=len(summaries),
                        computed=computed,
                        loaded=loaded,
                    )
                report.statistics.distinct_summary_jobs = len(summaries)
                report.statistics.summaries_computed = computed
                report.statistics.store_hits = loaded
                # Step-1 solver work happened in worker forks; the counters
                # ride back on the computed summaries (store-loaded ones are
                # rightly zero), so parallel runs account like serial ones.
                for summary in summaries.values():
                    report.statistics.sat_core_calls += getattr(summary, "sat_core_calls", 0)
                    report.statistics.qcache_hits += getattr(summary, "qcache_hits", 0)
                # Step 2: per-pipeline composition checks, hydrated from the store.
                payloads = [
                    (
                        pipeline,
                        list(properties),
                        tuple(input_lengths),
                        options,
                        str(store.root),
                        max_counterexamples,
                        confirm_by_replay,
                        instruction_bounds,
                    )
                    for pipeline in fresh_pipelines
                ]
                shipped_entries: List[tuple] = []
                for certification, misses, l2_hits, query_entries, extras in run_tasks(
                    _certify_worker, payloads, workers=workers, pool=shared_pool
                ):
                    fresh_certifications.append(certification)
                    # Worker-side misses are real symbolic executions (lengths
                    # Step 1 could not discover, e.g. past an exploded element);
                    # worker-side store loads are rehydration, tracked apart
                    # from the avoided-work counter.
                    report.statistics.summaries_computed += misses
                    report.statistics.step2_store_loads += l2_hits
                    shipped_entries.extend(query_entries)
                    merge_observability(extras, fleet_qstats)
            # The shared pool is torn down (results all in, shards
            # flushed): fold worker shards (SQLite backend) into the main
            # store before anyone reads it cold.
            store.merge_shards()
            merge_query_entries(options.query_cache_dir, shipped_entries)
        elif fresh_pipelines:
            # Serial: one shared cache dedupes across the catalog in-process
            # (and through the store, when one is provided).
            cache = SummaryCache(options, store=store)
            if query_store is not None and cache.query_cache is not None:
                # Route the L3 tier through the caller's QueryStore object
                # (not the cache's own private instance over the same
                # directory), so its statistics see the traffic and its
                # batched writes are the ones flushed below.
                cache.query_cache.store = query_store
            for pipeline in fresh_pipelines:
                fresh_certifications.append(
                    _certify_one(
                        pipeline,
                        properties,
                        input_lengths,
                        cache,
                        max_counterexamples,
                        confirm_by_replay,
                        instruction_bounds,
                    )
                )
            report.statistics.distinct_summary_jobs = cache.statistics.entries
            report.statistics.summaries_computed = cache.statistics.misses
            report.statistics.store_hits = cache.statistics.l2_hits
            if cache.query_cache is not None:
                fleet_qstats.merge(cache.query_cache.statistics)
    finally:
        if ephemeral is not None:
            ephemeral.cleanup()

    for index, certification in zip(fresh_indices, fresh_certifications):
        certification.provenance = FRESH
        merged[index] = certification
        if verdict_store is not None and record_keys[index] is not None:
            # Unknown verdicts are never recorded (see VerdictStore.save_record).
            verdict_store.save_record(record_keys[index], certification)
    report.certifications = [merged[index] for index in range(len(pipelines))]

    for certification in report.certifications:
        if certification.reused:
            # Reused records' statistics describe the run that computed
            # them; this run did no work for these pipelines.
            continue
        for result in certification.results:
            report.statistics.solver_checks += result.statistics.solver_checks
            report.statistics.sat_core_calls += result.statistics.sat_core_calls
            report.statistics.qcache_hits += result.statistics.qcache_hits
            report.statistics.paths_explored += result.statistics.paths_explored
            report.statistics.paths_merged += result.statistics.paths_merged
            report.statistics.ites_introduced += result.statistics.ites_introduced
            report.statistics.merge_rejected += result.statistics.merge_rejected
            report.statistics.composed_paths_checked += result.statistics.composed_paths_checked
            report.statistics.counterexamples += len(result.counterexamples)
        if certification.instruction_bound is not None:
            report.statistics.sat_core_calls += (
                certification.instruction_bound.statistics.sat_core_calls
            )
            report.statistics.qcache_hits += (
                certification.instruction_bound.statistics.qcache_hits
            )
    if query_store is not None and (fleet_qstats.checks or fleet_qstats.slices):
        # Persist the per-tier counters so hit rates accumulate across
        # runs (`repro store stats` reads them back).  The merge pass's
        # counters ride along so the store surfaces path-merging work too.
        metrics = fleet_qstats.to_dict()
        metrics.update(
            paths_explored=report.statistics.paths_explored,
            paths_merged=report.statistics.paths_merged,
            ites_introduced=report.statistics.ites_introduced,
            merge_rejected=report.statistics.merge_rejected,
        )
        query_store.record_metrics(metrics)
    # Deterministic durability point: push every batched write (SQLite
    # backend) to disk before the report is returned — callers may exit,
    # fork, or re-open the roots immediately.
    for tier in (store, verdict_store, query_store):
        if tier is not None and not isinstance(tier, str):
            tier.flush()
    ended = clock()
    report.statistics.elapsed_seconds = ended - started
    if trace.enabled:
        trace.record_span(
            "fleet.certify",
            "fleet",
            started,
            ended,
            pipelines=len(pipelines),
            properties=len(properties),
            workers=workers,
            fresh=report.statistics.verdicts_fresh,
            reused=report.statistics.verdicts_reused,
        )
    return report
