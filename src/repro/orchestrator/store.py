"""Content-addressed on-disk stores for Step-1 summaries (and friends).

The paper's cost model prices each element's symbolic execution **once**;
the in-process :class:`repro.verify.cache.SummaryCache` already reuses
summaries within one run.  The store extends that amortization across
*processes and runs*: a summary computed by any worker (or any previous
invocation) is persisted under a content hash and reloaded instead of
recomputed.

Keys are derived from everything the summary depends on: the element's
configuration key, a structural fingerprint of its IR program, the
contents of its static tables (in concrete static-table mode, where they
are baked into the summary terms), the input packet length, the
static-table mode, and the serialization format version.

:class:`Store` is the façade every tier shares: digest-keyed entries, a
statistics block, corrupt-entry quarantine, garbage collection.  The
actual bytes live behind a pluggable backend
(:mod:`repro.orchestrator.backends`) — one-file-per-entry JSON (atomic
temp+rename writes, safe for any number of concurrent writers) or a
batched single-file SQLite database (WAL journal, sharded worker writes,
merge-on-join) — selected per store root and auto-detected from the disk
layout, so both layouts behave identically through this interface.

:class:`SummaryStore` specializes the façade for element summaries,
:class:`QueryStore` for sliced solver-query verdicts (the query cache's
L3 tier), and :class:`repro.orchestrator.verdicts.VerdictStore` for
per-pipeline verdict records.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..dataplane.element import Element
from ..obs.stats import StatisticsMixin
from ..obs.trace import clock
from ..dataplane.fingerprint import configuration_fingerprint, program_fingerprint
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..symbex.segment import ElementSummary
from .backends import GcResult, make_backend
from .errors import StoreError
from .serialize import FORMAT_VERSION, dumps_summary, loads_summary

__all__ = [
    "GcResult",
    "JsonFileStore",
    "QueryStore",
    "Store",
    "StoreStatistics",
    "SummaryStore",
    "program_fingerprint",  # re-exported from repro.dataplane.fingerprint
    "summary_key",
]


def summary_key(element: Element, input_length: int, options: SymbexOptions) -> str:
    """The store digest for one (element configuration, input length, options) job.

    Besides the element's configuration fingerprint, the digest covers the
    engine options that shape summary *content*: the static-table mode,
    branch pruning, the solver conflict budget (a starved budget can
    soundly-but-differently prune branches), and the state-merging policy
    (merged summaries carry ite-lifted segments and upper-bound
    instruction counts, so modes must not share entries).  ``incremental``
    and ``sat_backend`` are deliberately excluded — the solving cores and
    SAT backends are differentially tested to produce identical summaries,
    so they may share entries.
    Path/time budgets are also excluded: blowing one raises instead of
    producing a summary, so it can never poison the store.
    """
    material = "\x1f".join(
        (
            f"v{FORMAT_VERSION}",
            configuration_fingerprint(
                element,
                include_static_tables=options.static_table_mode == StaticTableMode.CONCRETE,
            ),
            str(input_length),
            options.static_table_mode,
            f"prune={options.prune_infeasible_branches}",
            f"conflicts={options.solver_max_conflicts}",
            f"merge={options.merge}:{options.merge_max_ites}",
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class StoreStatistics(StatisticsMixin):
    """Disk-tier traffic counters.

    ``io_seconds`` is measured with the monotonic :func:`repro.obs.clock`
    like every other duration in the repo — wall clock appears in the
    store layer only where entry mtimes force it (gc age horizons).
    ``busy_retries`` counts SQLite lock collisions absorbed by the
    jittered-backoff retry loop (always 0 on the JSON backend, whose
    atomic renames never contend).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_entries: int = 0
    quarantined: int = 0
    bytes_written: int = 0
    busy_retries: int = 0
    #: Per-entry round trips a bulk :meth:`Store.read_entries` call avoided
    #: relative to N single reads (``len(digests) - 1`` per call) — the
    #: work batched discovery/delta lookups save over the naive loop.
    round_trips_saved: int = 0
    io_seconds: float = 0.0


class Store:
    """Shared façade for the content-addressed store tiers.

    Subclasses supply the digest computation and the payload
    encode/decode; raw entry bytes go through ``self.backend``
    (see :func:`repro.orchestrator.backends.make_backend` for how the
    implementation is chosen).  ``shard`` opens the SQLite backend in its
    worker view — reads from the main database, writes to a private
    ``shards/<shard>.sqlite`` that the parent folds in via
    :meth:`merge_shards` after the pool joins.  The JSON backend ignores
    ``shard``: its per-entry writes are already atomic in place.
    """

    #: Human label used in error messages ("summary store", "verdict store").
    kind = "store"

    def __init__(
        self,
        root: Union[str, Path],
        backend: Optional[str] = None,
        shard: Optional[str] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create {self.kind} at {self.root}: {exc}") from exc
        self.statistics = StoreStatistics()
        self.backend = make_backend(
            self.root,
            requested=backend,
            kind=self.kind,
            statistics=self.statistics,
            shard=shard,
        )

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def _path(self, digest: str) -> Path:
        """The JSON-layout path of an entry (meaningless under SQLite)."""
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw entry I/O ---------------------------------------------------------------

    def read_entry(self, digest: str) -> Optional[str]:
        """The entry's raw text, or ``None`` (counted as a miss) when absent.

        A successful read refreshes the entry's mtime, so :meth:`gc`'s
        age horizon means "not *touched* for N days" — a store that is
        read every night never loses its warm entries to eviction.
        """
        started = clock()
        text = self.backend.read(digest)
        self.statistics.io_seconds += clock() - started
        if text is None:
            self.statistics.misses += 1
            return None
        return text

    def read_entries(self, digests) -> dict:
        """Bulk read: present entries as ``{digest: text}``; absences count as misses.

        One chunked query on the SQLite backend, a plain loop on JSON
        files — callers holding many digests (delta-mode verdict lookup)
        should prefer this over N :meth:`read_entry` calls.
        """
        digests = list(digests)
        started = clock()
        found = self.backend.read_many(digests)
        self.statistics.io_seconds += clock() - started
        self.statistics.misses += sum(1 for digest in digests if digest not in found)
        self.statistics.round_trips_saved += max(0, len(digests) - 1)
        return found

    def write_entry(self, digest: str, text: str) -> None:
        """Persist an entry (atomically, or batched until the next flush)."""
        started = clock()
        self.backend.write(digest, text)
        self.statistics.io_seconds += clock() - started
        self.statistics.puts += 1
        self.statistics.bytes_written += len(text)

    def quarantine_entry(self, digest: str) -> None:
        """Move a corrupt entry aside so warm runs stop re-parsing garbage.

        JSON entries are renamed to ``<digest>.json.corrupt`` (preserved
        for post-mortem; swept by :meth:`gc`); SQLite rows are deleted —
        the garbage payload sits inside a healthy database, so there is
        nothing worth keeping aside.  Either way the digest reads as a
        plain miss — and parses nothing — from now on.
        """
        self.backend.quarantine(digest)
        self.statistics.corrupt_entries += 1
        self.statistics.quarantined += 1

    # -- lifecycle -------------------------------------------------------------------

    def flush(self) -> None:
        """Push any buffered writes to disk (a no-op on the JSON backend)."""
        started = clock()
        self.backend.flush()
        self.statistics.io_seconds += clock() - started

    def close(self) -> None:
        """Flush and release the backend (file handles, connections)."""
        self.backend.close()

    def merge_shards(self, only=None) -> int:
        """Fold worker shards into the main store; returns entries merged.

        Without ``only``, folds every shard — which must run after the
        worker pool has joined (no live shard writers).  With ``only`` (a
        sequence of shard tags), folds exactly those shards: the
        scheduler's incremental merge path, safe while *other* shards
        still have live writers because each task flushes and closes its
        private shard before its result is reported.  The JSON backend
        has no shards and returns 0 either way.
        """
        started = clock()
        merged = self.backend.merge_shards(only=only)
        self.statistics.io_seconds += clock() - started
        return merged

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.backend.count()

    def size_bytes(self) -> int:
        """Total bytes held by live entries (quarantine/debris excluded)."""
        return self.backend.size_bytes()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        return self.backend.clear()

    def gc(self, older_than_seconds: Optional[float] = None) -> GcResult:
        """Sweep the store root.

        Always removes debris — quarantined ``.corrupt`` files and
        orphaned temp/shard files from crashed writers (only those older
        than a minute, so in-flight writes are never torn).  With
        ``older_than_seconds``, additionally evicts live entries whose
        modification time is older than the horizon — the store is a
        cache, so eviction costs recomputation, never correctness.
        Entries unlinked by a concurrent writer mid-sweep are tolerated
        (neither kept nor removed).
        """
        return self.backend.gc(older_than_seconds)

    # -- persisted tier metrics ------------------------------------------------------

    def load_metrics(self) -> dict:
        """The accumulated cross-run counters, or ``{}`` when none were recorded."""
        return self.backend.load_metrics()

    def record_metrics(self, counters: dict) -> dict:
        """Fold one run's counters into the store's cumulative totals.

        Numeric values key-sum into the stored ones (the totals are
        cumulative across runs).  The JSON backend writes the sidecar
        atomically (concurrent recorders lose at worst one increment);
        the SQLite backend folds inside a transaction and loses none.
        """
        return self.backend.record_metrics(counters)


#: Backward-compatible alias: the pre-seam name of the base class, kept so
#: existing imports (and pickled worker payloads from older runs) resolve.
JsonFileStore = Store


class SummaryStore(Store):
    """Content-addressed persistence for element summaries."""

    kind = "summary store"

    # -- keyed by element ----------------------------------------------------------

    def load(
        self, element: Element, input_length: int, options: SymbexOptions
    ) -> Optional[ElementSummary]:
        """Return the stored summary for the job, or ``None`` on a miss."""
        return self.load_digest(summary_key(element, input_length, options))

    def save(
        self,
        element: Element,
        input_length: int,
        options: SymbexOptions,
        summary: ElementSummary,
    ) -> str:
        """Persist a summary; returns the digest it was stored under."""
        digest = summary_key(element, input_length, options)
        self.save_digest(digest, summary)
        return digest

    # -- keyed by digest (workers compute keys once and ship them around) -----------

    def load_digest(self, digest: str) -> Optional[ElementSummary]:
        text = self.read_entry(digest)
        if text is None:
            return None
        try:
            summary = loads_summary(text)
        except Exception:
            # A half-written or stale-format entry reads as a miss — and is
            # quarantined, so the *next* warm run doesn't re-parse the same
            # garbage; the recompute overwrites the digest with a good entry.
            self.quarantine_entry(digest)
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return summary

    def load_digests(self, digests) -> dict:
        """Bulk :meth:`load_digest`: ``{digest: summary}`` for every loadable entry.

        One chunked backend query instead of a round trip per job — at
        catalog scale the per-call overhead dominates warm discovery.
        Hits, misses and quarantines are counted per entry exactly as the
        one-at-a-time path counts them, so differential comparisons
        between the loops stay exact.
        """
        summaries = {}
        for digest, text in self.read_entries(digests).items():
            try:
                summaries[digest] = loads_summary(text)
            except Exception:
                self.quarantine_entry(digest)
                self.statistics.misses += 1
                continue
            self.statistics.hits += 1
        return summaries

    def save_digest(self, digest: str, summary: ElementSummary) -> None:
        self.write_entry(digest, dumps_summary(summary))


class QueryStore(Store):
    """Content-addressed persistence for sliced solver-query verdicts.

    The **L3 tier** of :class:`repro.smt.qcache.QueryCache`: entries are
    keyed by a *structural* slice fingerprint (term uids are
    process-local; the fingerprint survives any process), and the payload
    carries the verdict plus a SAT model or a minimized unsat core.  A
    warm fleet re-certification answers every solver question from here
    the same way the summary store lets it skip symbolic execution.

    Payload versioning lives in the qcache layer (``PAYLOAD_VERSION``
    inside the payload); this class only guards JSON well-formedness,
    quarantining garbage exactly like the other tiers.
    """

    kind = "query store"

    def contains(self, digest: str) -> bool:
        """Entry-existence probe, without reading or counting a hit.

        The cache uses it to skip re-persisting entries its in-memory
        shortcut tiers re-derived — on a warm run every slice answer is
        already on disk, and an existence probe is far cheaper than a
        rewrite."""
        return self.backend.contains(digest)

    def load_payload(self, digest: str) -> Optional[dict]:
        """The stored payload dict, or ``None`` (a miss) when absent/corrupt."""
        text = self.read_entry(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("query-store entry is not an object")
        except Exception:
            self.quarantine_entry(digest)
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return payload

    def save_payload(self, digest: str, payload: dict) -> None:
        self.write_entry(digest, json.dumps(payload, sort_keys=True, separators=(",", ":")))
