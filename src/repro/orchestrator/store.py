"""A content-addressed on-disk store of Step-1 element summaries.

The paper's cost model prices each element's symbolic execution **once**;
the in-process :class:`repro.verify.cache.SummaryCache` already reuses
summaries within one run.  The store extends that amortization across
*processes and runs*: a summary computed by any worker (or any previous
invocation) is persisted under a content hash and reloaded instead of
recomputed.

Keys are derived from everything the summary depends on: the element's
configuration key, a structural fingerprint of its IR program, the
contents of its static tables (in concrete static-table mode, where they
are baked into the summary terms), the input packet length, the
static-table mode, and the serialization format version.  Writes are
atomic (temp file + rename), so many worker processes can share one
store directory without locks — the worst case under a racing write is
one redundant computation, never a torn read.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..dataplane.element import Element
from ..dataplane.fingerprint import configuration_fingerprint, program_fingerprint
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..symbex.segment import ElementSummary
from .errors import StoreError
from .serialize import FORMAT_VERSION, dumps_summary, loads_summary

__all__ = [
    "StoreStatistics",
    "SummaryStore",
    "program_fingerprint",  # re-exported from repro.dataplane.fingerprint
    "summary_key",
]


def summary_key(element: Element, input_length: int, options: SymbexOptions) -> str:
    """The store digest for one (element configuration, input length, options) job.

    Besides the element's configuration fingerprint, the digest covers the
    engine options that shape summary *content*: the static-table mode,
    branch pruning, and the solver conflict budget (a starved budget can
    soundly-but-differently prune branches).  ``incremental`` is
    deliberately excluded — the two solving cores are differentially
    tested to produce identical summaries, so they may share entries.
    Path/time budgets are also excluded: blowing one raises instead of
    producing a summary, so it can never poison the store.
    """
    material = "\x1f".join(
        (
            f"v{FORMAT_VERSION}",
            configuration_fingerprint(
                element,
                include_static_tables=options.static_table_mode == StaticTableMode.CONCRETE,
            ),
            str(input_length),
            options.static_table_mode,
            f"prune={options.prune_infeasible_branches}",
            f"conflicts={options.solver_max_conflicts}",
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class StoreStatistics:
    """Disk-tier traffic counters."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_entries: int = 0
    bytes_written: int = 0


class SummaryStore:
    """Content-addressed persistence for element summaries.

    Entries live at ``<root>/<digest[:2]>/<digest>.json``; the two-level
    fan-out keeps directories small for fleet-sized stores.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create summary store at {self.root}: {exc}") from exc
        self.statistics = StoreStatistics()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- keyed by element ----------------------------------------------------------

    def load(
        self, element: Element, input_length: int, options: SymbexOptions
    ) -> Optional[ElementSummary]:
        """Return the stored summary for the job, or ``None`` on a miss."""
        return self.load_digest(summary_key(element, input_length, options))

    def save(
        self,
        element: Element,
        input_length: int,
        options: SymbexOptions,
        summary: ElementSummary,
    ) -> str:
        """Persist a summary; returns the digest it was stored under."""
        digest = summary_key(element, input_length, options)
        self.save_digest(digest, summary)
        return digest

    # -- keyed by digest (workers compute keys once and ship them around) -----------

    def load_digest(self, digest: str) -> Optional[ElementSummary]:
        path = self._path(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.statistics.misses += 1
            return None
        except OSError as exc:
            raise StoreError(f"cannot read summary store entry {path}: {exc}") from exc
        try:
            summary = loads_summary(text)
        except Exception:
            # A half-written or stale-format entry is a miss: recompute and
            # overwrite rather than poisoning the run.
            self.statistics.corrupt_entries += 1
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return summary

    def save_digest(self, digest: str, summary: ElementSummary) -> None:
        path = self._path(digest)
        text = dumps_summary(summary)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.parent / f".{digest}.{os.getpid()}.tmp"
            temp.write_text(text)
            os.replace(temp, path)
        except OSError as exc:
            raise StoreError(f"cannot write summary store entry {path}: {exc}") from exc
        self.statistics.puts += 1
        self.statistics.bytes_written += len(text)

    # -- maintenance ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
