"""Content-addressed on-disk stores for Step-1 summaries (and friends).

The paper's cost model prices each element's symbolic execution **once**;
the in-process :class:`repro.verify.cache.SummaryCache` already reuses
summaries within one run.  The store extends that amortization across
*processes and runs*: a summary computed by any worker (or any previous
invocation) is persisted under a content hash and reloaded instead of
recomputed.

Keys are derived from everything the summary depends on: the element's
configuration key, a structural fingerprint of its IR program, the
contents of its static tables (in concrete static-table mode, where they
are baked into the summary terms), the input packet length, the
static-table mode, and the serialization format version.  Writes are
atomic (temp file + rename), so many worker processes can share one
store directory without locks — the worst case under a racing write is
one redundant computation, never a torn read.

:class:`JsonFileStore` is the shared layout and maintenance machinery
(two-level digest fan-out, atomic writes, corrupt-entry quarantine,
garbage collection); :class:`SummaryStore` specializes it for element
summaries, :class:`QueryStore` for sliced solver-query verdicts (the
query cache's L3 tier), and
:class:`repro.orchestrator.verdicts.VerdictStore` for per-pipeline
verdict records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..dataplane.element import Element
from ..obs.stats import StatisticsMixin
from ..obs.trace import clock, wall_clock
from ..dataplane.fingerprint import configuration_fingerprint, program_fingerprint
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..symbex.segment import ElementSummary
from .errors import StoreError
from .serialize import FORMAT_VERSION, dumps_summary, loads_summary

__all__ = [
    "GcResult",
    "JsonFileStore",
    "QueryStore",
    "StoreStatistics",
    "SummaryStore",
    "program_fingerprint",  # re-exported from repro.dataplane.fingerprint
    "summary_key",
]

#: Suffix given to quarantined (corrupt) entries; never matches the entry glob.
_QUARANTINE_SUFFIX = ".corrupt"


def summary_key(element: Element, input_length: int, options: SymbexOptions) -> str:
    """The store digest for one (element configuration, input length, options) job.

    Besides the element's configuration fingerprint, the digest covers the
    engine options that shape summary *content*: the static-table mode,
    branch pruning, and the solver conflict budget (a starved budget can
    soundly-but-differently prune branches).  ``incremental`` and
    ``sat_backend`` are deliberately excluded — the solving cores and SAT
    backends are differentially tested to produce identical summaries, so
    they may share entries.
    Path/time budgets are also excluded: blowing one raises instead of
    producing a summary, so it can never poison the store.
    """
    material = "\x1f".join(
        (
            f"v{FORMAT_VERSION}",
            configuration_fingerprint(
                element,
                include_static_tables=options.static_table_mode == StaticTableMode.CONCRETE,
            ),
            str(input_length),
            options.static_table_mode,
            f"prune={options.prune_infeasible_branches}",
            f"conflicts={options.solver_max_conflicts}",
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class StoreStatistics(StatisticsMixin):
    """Disk-tier traffic counters.

    ``io_seconds`` is measured with the monotonic :func:`repro.obs.clock`
    like every other duration in the repo — wall clock appears in this
    module only where file mtimes force it (:meth:`JsonFileStore.gc`).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_entries: int = 0
    quarantined: int = 0
    bytes_written: int = 0
    io_seconds: float = 0.0


@dataclass
class GcResult:
    """What one :meth:`JsonFileStore.gc` sweep did."""

    removed_entries: int = 0
    removed_debris: int = 0
    kept_entries: int = 0
    bytes_freed: int = 0

    def summary(self) -> str:
        return (
            f"removed {self.removed_entries} entries and {self.removed_debris} debris files "
            f"({self.bytes_freed} bytes), kept {self.kept_entries} entries"
        )


class JsonFileStore:
    """Shared machinery for content-addressed JSON stores.

    Entries live at ``<root>/<digest[:2]>/<digest>.json``; the two-level
    fan-out keeps directories small for fleet-sized stores.  Subclasses
    supply the digest computation and the payload encode/decode.
    """

    #: Human label used in error messages ("summary store", "verdict store").
    kind = "store"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create {self.kind} at {self.root}: {exc}") from exc
        self.statistics = StoreStatistics()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw entry I/O ---------------------------------------------------------------

    def read_entry(self, digest: str) -> Optional[str]:
        """The entry's raw text, or ``None`` (counted as a miss) when absent.

        A successful read refreshes the entry's mtime, so :meth:`gc`'s
        age horizon means "not *touched* for N days" — a store that is
        read every night never loses its warm entries to eviction.
        """
        path = self._path(digest)
        started = clock()
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.statistics.misses += 1
            return None
        except OSError as exc:
            raise StoreError(f"cannot read {self.kind} entry {path}: {exc}") from exc
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - racing removal: entry already gone
            pass
        self.statistics.io_seconds += clock() - started
        return text

    def write_entry(self, digest: str, text: str) -> None:
        """Atomically persist an entry (temp file + rename; safe across processes)."""
        path = self._path(digest)
        started = clock()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.parent / f".{digest}.{os.getpid()}.tmp"
            temp.write_text(text)
            os.replace(temp, path)
        except OSError as exc:
            raise StoreError(f"cannot write {self.kind} entry {path}: {exc}") from exc
        self.statistics.puts += 1
        self.statistics.bytes_written += len(text)
        self.statistics.io_seconds += clock() - started

    def quarantine_entry(self, digest: str) -> None:
        """Move a corrupt entry aside so warm runs stop re-parsing garbage.

        The entry is renamed to ``<digest>.json.corrupt`` (preserved for
        post-mortem; swept by :meth:`gc`); if even the rename fails it is
        deleted outright.  Either way the digest reads as a plain miss —
        and parses nothing — from now on.
        """
        path = self._path(digest)
        try:
            os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink: entry already gone
                pass
        self.statistics.corrupt_entries += 1
        self.statistics.quarantined += 1

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        """Total bytes held by live entries (quarantine/debris excluded)."""
        return sum(path.stat().st_size for path in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def gc(self, older_than_seconds: Optional[float] = None) -> GcResult:
        """Sweep the store directory.

        Always removes debris — quarantined ``.corrupt`` entries and
        orphaned ``.tmp`` files from crashed writers (only those older
        than a minute, so in-flight writes are never torn).  With
        ``older_than_seconds``, additionally evicts live entries whose
        modification time is older than the horizon — the store is a
        cache, so eviction costs recomputation, never correctness.
        """
        result = GcResult()
        # The one legitimate wall-clock read in the store layer: the age
        # horizon compares against file *mtimes*, which are wall-clock
        # timestamps — perf_counter has no defined epoch to compare them to.
        now = wall_clock()
        for path in self.root.glob(f"??/*{_QUARANTINE_SUFFIX}"):
            result.bytes_freed += _size_of(path)
            path.unlink(missing_ok=True)
            result.removed_debris += 1
        for path in self.root.glob("??/.*.tmp"):
            if now - _mtime_of(path, now) > 60:
                result.bytes_freed += _size_of(path)
                path.unlink(missing_ok=True)
                result.removed_debris += 1
        for path in self.root.glob("??/*.json"):
            if older_than_seconds is not None and now - _mtime_of(path, now) > older_than_seconds:
                result.bytes_freed += _size_of(path)
                path.unlink(missing_ok=True)
                result.removed_entries += 1
            else:
                result.kept_entries += 1
        return result


def _size_of(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:  # pragma: no cover - racing removal
        return 0


def _mtime_of(path: Path, default: float) -> float:
    try:
        return path.stat().st_mtime
    except OSError:  # pragma: no cover - racing removal
        return default


class SummaryStore(JsonFileStore):
    """Content-addressed persistence for element summaries."""

    kind = "summary store"

    # -- keyed by element ----------------------------------------------------------

    def load(
        self, element: Element, input_length: int, options: SymbexOptions
    ) -> Optional[ElementSummary]:
        """Return the stored summary for the job, or ``None`` on a miss."""
        return self.load_digest(summary_key(element, input_length, options))

    def save(
        self,
        element: Element,
        input_length: int,
        options: SymbexOptions,
        summary: ElementSummary,
    ) -> str:
        """Persist a summary; returns the digest it was stored under."""
        digest = summary_key(element, input_length, options)
        self.save_digest(digest, summary)
        return digest

    # -- keyed by digest (workers compute keys once and ship them around) -----------

    def load_digest(self, digest: str) -> Optional[ElementSummary]:
        text = self.read_entry(digest)
        if text is None:
            return None
        try:
            summary = loads_summary(text)
        except Exception:
            # A half-written or stale-format entry reads as a miss — and is
            # quarantined, so the *next* warm run doesn't re-parse the same
            # garbage; the recompute overwrites the digest with a good entry.
            self.quarantine_entry(digest)
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return summary

    def save_digest(self, digest: str, summary: ElementSummary) -> None:
        self.write_entry(digest, dumps_summary(summary))


class QueryStore(JsonFileStore):
    """Content-addressed persistence for sliced solver-query verdicts.

    The **L3 tier** of :class:`repro.smt.qcache.QueryCache`: entries are
    keyed by a *structural* slice fingerprint (term uids are
    process-local; the fingerprint survives any process), and the payload
    carries the verdict plus a SAT model or a minimized unsat core.  A
    warm fleet re-certification answers every solver question from here
    the same way the summary store lets it skip symbolic execution.

    Payload versioning lives in the qcache layer (``PAYLOAD_VERSION``
    inside the payload); this class only guards JSON well-formedness,
    quarantining garbage exactly like the other tiers.
    """

    kind = "query store"

    def contains(self, digest: str) -> bool:
        """Entry-existence probe (one stat), without reading or counting a hit.

        The cache uses it to skip re-persisting entries its in-memory
        shortcut tiers re-derived — on a warm run every slice answer is
        already on disk, and a stat is far cheaper than a tempfile+rename
        rewrite."""
        return self._path(digest).is_file()

    def load_payload(self, digest: str) -> Optional[dict]:
        """The stored payload dict, or ``None`` (a miss) when absent/corrupt."""
        text = self.read_entry(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("query-store entry is not an object")
        except Exception:
            self.quarantine_entry(digest)
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return payload

    def save_payload(self, digest: str, payload: dict) -> None:
        self.write_entry(digest, json.dumps(payload, sort_keys=True, separators=(",", ":")))

    # -- persisted tier metrics ------------------------------------------------------

    #: Sidecar holding cumulative :class:`repro.smt.qcache.QueryCacheStatistics`
    #: counters across every run that used this store — what lets
    #: ``repro store stats`` report tier hit *rates*, not just entry counts.
    _METRICS_NAME = "metrics.json"

    def load_metrics(self) -> dict:
        """The accumulated tier counters, or ``{}`` when none were recorded."""
        path = self.root / self._METRICS_NAME
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def record_metrics(self, counters: dict) -> dict:
        """Fold one run's tier counters into the sidecar; returns the new totals.

        Numeric values key-sum into the stored ones (the sidecar is
        cumulative across runs); the write is atomic like every entry
        write, so concurrent recorders lose at worst one run's increment,
        never the file.
        """
        totals = self.load_metrics()
        for key, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
        totals["runs"] = int(totals.get("runs", 0)) + 1
        path = self.root / self._METRICS_NAME
        temp = self.root / f".{self._METRICS_NAME}.{os.getpid()}.tmp"
        try:
            temp.write_text(json.dumps(totals, sort_keys=True))
            os.replace(temp, path)
        except OSError as exc:
            raise StoreError(f"cannot write {self.kind} metrics {path}: {exc}") from exc
        return totals
