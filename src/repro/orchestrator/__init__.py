"""``repro.orchestrator`` — fleet-scale verification on top of the two-step verifier.

The sixth architectural layer: stable DAG serialization for hash-consed
summaries (:mod:`serialize`), content-addressed on-disk stores shared
across processes and runs (:mod:`store` for Step-1 summaries,
:mod:`verdicts` for whole per-pipeline certification records),
multiprocessing workers with deterministic merging (:mod:`workers`), the
batch certification API (:mod:`fleet`), and the change-impact engine that
makes re-certification proportional to a configuration diff
(:mod:`impact`).

Typical usage::

    from repro.orchestrator import SummaryStore, VerdictStore, certify_fleet
    from repro.verify import CrashFreedom

    store = SummaryStore("~/.cache/repro-summaries")
    verdicts = VerdictStore("~/.cache/repro-verdicts")
    report = certify_fleet(
        catalog, [CrashFreedom()], workers=4, store=store, verdict_store=verdicts
    )
    print(report.summary())   # unchanged pipelines: delta-reused, zero work
"""

from .backends import (
    SQLITE_FILENAME,
    STORE_SCHEMA_VERSION,
    JsonFileBackend,
    MigrationResult,
    SqliteBackend,
    detect_backend_name,
    make_backend,
    migrate_store,
)
from .errors import OrchestratorError, SerializationError, StoreError, WorkerError
from .fleet import (
    DELTA_REUSED,
    FRESH,
    FleetReport,
    FleetStatistics,
    PipelineCertification,
    certify_fleet,
)
from .impact import (
    MANIFEST_VERSION,
    CatalogImpact,
    PipelineImpact,
    RecertificationReport,
    catalog_manifest,
    diff_catalogs,
    diff_manifests,
    recertify,
)
from .risk import RISK_VERSION, RiskHistory, RiskProfile, RiskStore, risk_key
from .scheduler import (
    SCHEDULES,
    JobGraph,
    PersistentPool,
    ScheduledRun,
    SchedulerStatistics,
    pipeline_ranks,
    run_scheduled,
)
from .serialize import (
    FORMAT_VERSION,
    TermLoader,
    TermTable,
    decode_terms,
    dumps_summary,
    encode_terms,
    loads_summary,
    summary_from_payload,
    summary_to_payload,
)
from .store import (
    GcResult,
    JsonFileStore,
    QueryStore,
    Store,
    StoreStatistics,
    SummaryStore,
    program_fingerprint,
    summary_key,
)
from .verdicts import (
    RECORD_VERSION,
    VerdictStore,
    property_fingerprint,
    property_set_fingerprint,
    verdict_key,
)
from .workers import WorkerPool, run_tasks, summarize_jobs

__all__ = [
    "DELTA_REUSED",
    "FORMAT_VERSION",
    "FRESH",
    "MANIFEST_VERSION",
    "RECORD_VERSION",
    "RISK_VERSION",
    "SCHEDULES",
    "SQLITE_FILENAME",
    "STORE_SCHEMA_VERSION",
    "CatalogImpact",
    "FleetReport",
    "FleetStatistics",
    "GcResult",
    "JobGraph",
    "JsonFileBackend",
    "JsonFileStore",
    "MigrationResult",
    "OrchestratorError",
    "PersistentPool",
    "PipelineCertification",
    "PipelineImpact",
    "QueryStore",
    "RecertificationReport",
    "RiskHistory",
    "RiskProfile",
    "RiskStore",
    "ScheduledRun",
    "SchedulerStatistics",
    "SerializationError",
    "SqliteBackend",
    "Store",
    "StoreError",
    "StoreStatistics",
    "SummaryStore",
    "TermLoader",
    "TermTable",
    "VerdictStore",
    "WorkerError",
    "WorkerPool",
    "catalog_manifest",
    "certify_fleet",
    "decode_terms",
    "detect_backend_name",
    "diff_catalogs",
    "diff_manifests",
    "dumps_summary",
    "encode_terms",
    "loads_summary",
    "make_backend",
    "migrate_store",
    "pipeline_ranks",
    "program_fingerprint",
    "property_fingerprint",
    "property_set_fingerprint",
    "recertify",
    "risk_key",
    "run_scheduled",
    "run_tasks",
    "summarize_jobs",
    "summary_from_payload",
    "summary_key",
    "summary_to_payload",
    "verdict_key",
]
