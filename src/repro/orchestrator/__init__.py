"""``repro.orchestrator`` — fleet-scale verification on top of the two-step verifier.

The sixth architectural layer: stable DAG serialization for hash-consed
summaries (:mod:`serialize`), a content-addressed on-disk summary store
shared across processes and runs (:mod:`store`), multiprocessing workers
with deterministic merging (:mod:`workers`), and the batch certification
API (:mod:`fleet`).

Typical usage::

    from repro.orchestrator import SummaryStore, certify_fleet
    from repro.verify import CrashFreedom

    store = SummaryStore("~/.cache/repro-summaries")
    report = certify_fleet(catalog, [CrashFreedom()], workers=4, store=store)
    print(report.summary())
"""

from .errors import OrchestratorError, SerializationError, StoreError, WorkerError
from .fleet import FleetReport, FleetStatistics, PipelineCertification, certify_fleet
from .serialize import (
    FORMAT_VERSION,
    TermLoader,
    TermTable,
    decode_terms,
    dumps_summary,
    encode_terms,
    loads_summary,
    summary_from_payload,
    summary_to_payload,
)
from .store import StoreStatistics, SummaryStore, program_fingerprint, summary_key
from .workers import run_tasks, summarize_jobs

__all__ = [
    "FORMAT_VERSION",
    "FleetReport",
    "FleetStatistics",
    "OrchestratorError",
    "PipelineCertification",
    "SerializationError",
    "StoreError",
    "StoreStatistics",
    "SummaryStore",
    "TermLoader",
    "TermTable",
    "WorkerError",
    "certify_fleet",
    "decode_terms",
    "dumps_summary",
    "encode_terms",
    "loads_summary",
    "program_fingerprint",
    "run_tasks",
    "summarize_jobs",
    "summary_from_payload",
    "summary_key",
    "summary_to_payload",
]
