"""Errors raised by the fleet orchestrator layer."""

from __future__ import annotations


class OrchestratorError(Exception):
    """Base class for orchestrator failures."""


class SerializationError(OrchestratorError):
    """A summary or term payload could not be encoded or decoded."""


class StoreError(OrchestratorError):
    """The on-disk summary store could not be read or written."""


class WorkerError(OrchestratorError):
    """A worker process failed while computing its shard."""
