"""Multiprocessing workers: shard Step-1 and Step-2 work across cores.

Two kinds of work parallelize cleanly:

* **Step-1 element summarization** — per-(element, input length) jobs are
  independent; each worker symbolically executes its element and ships the
  summary back as a serialized DAG payload (hash-consed terms cannot cross
  process boundaries by pickling — see
  :mod:`repro.orchestrator.serialize`).  When a shared
  :class:`~repro.orchestrator.store.SummaryStore` is configured, workers
  check it first and write through on compute, so a summary is computed
  once per *fleet*, not once per process.
* **Step-2 composition checks** — :func:`run_tasks` is the generic ordered
  fan-out used by :mod:`repro.orchestrator.fleet` to run per-pipeline
  suspect-composition verification in parallel.

Merging is deterministic: results always come back in input order
regardless of worker scheduling, so parallel runs produce byte-identical
reports to serial ones.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar, Union

from ..dataplane.element import Element
from ..obs.slowlog import slow_solve_log
from ..obs.trace import enable, tracer
from ..smt.qcache import QueryCache, QueryCacheStatistics, build_query_cache
from ..symbex.engine import SymbexOptions, SymbolicEngine
from ..symbex.errors import PathExplosionError
from ..symbex.segment import ElementSummary
from .serialize import dumps_summary, loads_summary
from .store import QueryStore, SummaryStore, summary_key

T = TypeVar("T")
R = TypeVar("R")

#: A Step-1 job: summarize ``element`` at ``input_length`` bytes.
SummaryJob = Tuple[Element, int]


def _pool_context():
    """Prefer fork (cheap, inherits the interned-term table read-only copy-on-write)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """A ``multiprocessing.Pool`` that outlives one :func:`run_tasks` call.

    The wave-synchronous fleet path used to fork a fresh pool per
    discovery wave and tear it down at the join — pool churn that at
    catalog scale costs more than the work between waves.  This wrapper
    forks lazily on first use, is handed to every subsequent
    :func:`run_tasks` / :func:`summarize_jobs` call, and is torn down
    once by the owner.  ``forks`` counts actual pool creations so tests
    and benches can assert "one pool per run, not one per wave".
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self.forks = 0
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            self._pool = _pool_context().Pool(processes=self.workers)
            self.forks += 1
        return self._pool

    def map(self, worker: Callable[[T], R], payloads: Sequence[T]) -> List[R]:
        """Ordered map over the persistent pool (imap, chunksize 1)."""
        if self.workers <= 1 or len(payloads) <= 1:
            return [worker(payload) for payload in payloads]
        pool = self._ensure()
        return list(pool.imap(worker, payloads, chunksize=1))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_tasks(
    worker: Callable[[T], R],
    payloads: Sequence[T],
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> List[R]:
    """Run ``worker`` over ``payloads``, in input order, on up to ``workers`` processes.

    ``worker`` must be a module-level callable and payloads/results must be
    picklable.  With ``workers <= 1`` (or a single payload) everything runs
    in-process — the degenerate case costs nothing and keeps behaviour
    identical for debugging.  Passing a :class:`WorkerPool` reuses its
    processes instead of forking (and joining) a fresh pool per call.
    """
    if pool is not None:
        return pool.map(worker, payloads)
    if workers <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    context = _pool_context()
    with context.Pool(processes=min(workers, len(payloads))) as pool_:
        # imap (not imap_unordered): completion order may vary, result order may not.
        return list(pool_.imap(worker, payloads, chunksize=1))


#: Result statuses shipped back by the summarization worker.
COMPUTED = "computed"
LOADED = "loaded"
#: The job blew its path/time budget; the payload is the error message.
#: Shipped as data (not an exception) so one exploding element does not
#: tear down the whole pool — callers re-raise or degrade per pipeline.
EXPLODED = "exploded"


def worker_query_cache(options: SymbexOptions) -> Optional[QueryCache]:
    """The query cache a worker process should route through.

    Workers open the persistent L3 tier **read-only**: many forks hitting
    one directory is fine for reads (and for the atomic writes the
    parent does), but a write storm of per-slice entries from every
    worker is not.  Entries a worker could not persist accumulate in
    ``cache.new_entries`` and travel back with its result for the parent
    to merge on join (:func:`merge_query_entries`).
    """
    return build_query_cache(
        options.incremental and options.query_opt,
        options.query_cache_dir,
        readonly=True,
    )


#: Process-local shard-name override (see :func:`set_worker_shard_tag`).
_shard_override: Optional[str] = None


def set_worker_shard_tag(tag: Optional[str]) -> None:
    """Override this process's shard name (``None`` restores the pid default).

    The persistent scheduler (:mod:`repro.orchestrator.scheduler`) names
    shards per *task attempt*, not per process: the parent can then merge
    exactly the shard a finished task flushed — incrementally, while the
    same worker is already running its next task — and a crashed attempt's
    half-written shard is never the one a retry writes into.
    """
    global _shard_override
    _shard_override = tag


def worker_shard_tag() -> str:
    """The per-worker store shard name: stable within a process, unique across a pool."""
    return _shard_override or f"w{os.getpid()}"


def worker_summary_store(store_root: Optional[str]) -> Optional[SummaryStore]:
    """Open the shared summary store the way a worker process must.

    Reads hit the main store; writes land in this worker's private shard
    (SQLite backend) or go atomically in place (JSON backend, which has
    no shards).  The parent folds shards in after the pool joins — see
    :meth:`repro.orchestrator.store.Store.merge_shards`.
    """
    if store_root is None:
        return None
    return SummaryStore(store_root, shard=worker_shard_tag())


def merge_query_entries(
    store_root: Optional[str], entries: Sequence[Tuple[str, dict]]
) -> None:
    """Merge worker-shipped query-cache entries into the parent's L3 store."""
    if store_root is None or not entries:
        return
    store = QueryStore(store_root)
    written: set = set()
    for digest, payload in entries:
        if digest not in written:
            written.add(digest)
            store.save_payload(digest, payload)
    store.close()  # push the batched writes before the store object goes away


def drain_observability(query_cache: Optional[QueryCache] = None) -> dict:
    """Collect this process's observability output for shipping to a parent.

    Returns a JSON-able dict with up to three keys: ``spans`` (the
    tracer's drained ring buffer), ``slow`` (drained slow-solve records)
    and ``qstats`` (the worker query cache's per-tier counters).  Keys
    are omitted when empty, so a disabled run ships ``{}`` — the merged
    result payload gains no observability weight unless something was
    observed.  Fork workers call this right before returning; the spans
    travel back with the result exactly like L3 query-store entries do.
    """
    extras: dict = {}
    trace = tracer()
    if trace.enabled:
        spans = trace.drain()
        if spans:
            extras["spans"] = spans
    slow = slow_solve_log().drain()
    if slow:
        extras["slow"] = slow
    if query_cache is not None:
        stats = query_cache.statistics.to_dict()
        if any(stats.values()):
            extras["qstats"] = stats
    return extras


def merge_observability(
    extras: Optional[dict], qstats: Optional[QueryCacheStatistics] = None
) -> None:
    """Fold a worker's :func:`drain_observability` payload into this process.

    Spans land in the active tracer (dropped when tracing is off here),
    slow records append to the process slow log, and the per-tier query
    counters merge into ``qstats`` when an accumulator is provided.  The
    degenerate in-process case (``run_tasks`` with one worker) drains and
    re-ingests the same buffers, which only repositions entries.
    """
    if not extras:
        return
    trace = tracer()
    spans = extras.get("spans")
    if spans and trace.enabled:
        trace.ingest(spans)
    slow = extras.get("slow")
    if slow:
        log = slow_solve_log()
        for record in slow:
            log.add(record)
    if qstats is not None and extras.get("qstats"):
        qstats.merge(QueryCacheStatistics.from_dict(extras["qstats"]))


#: (sat_core_calls, qcache_hits) a worker performed for one job.  The
#: counters are runtime accounting and deliberately not serialized with
#: the summary, so they travel alongside it and are restored on arrival —
#: parallel runs then account Step-1 solver work exactly like serial ones.
WorkerWork = Tuple[int, int]


def _summarize_worker(
    payload: Tuple[Element, int, SymbexOptions, Optional[str]],
) -> Tuple[str, str, List[Tuple[str, dict]], WorkerWork, dict]:
    """Compute (or fetch) one summary.

    Returns (status, serialized summary | message, new query-cache
    entries the parent should merge, solver work performed, drained
    observability extras — see :func:`drain_observability`).
    """
    element, input_length, options, store_root = payload
    if options.trace:
        enable()
    store = worker_summary_store(store_root)
    try:
        if store is not None:
            stored = store.load(element, input_length, options)
            if stored is not None:
                return LOADED, dumps_summary(stored), [], (0, 0), {}
        query_cache = worker_query_cache(options)
        engine = SymbolicEngine(options, query_cache=query_cache)
        try:
            summary = engine.summarize_element(
                element.program,
                input_length,
                tables=element.state.tables(),
                element_name=element.name,
                configuration_key=element.configuration_key(),
            )
        except PathExplosionError as exc:
            # A blown budget yields no summary; its partial solver work is
            # uncounted, matching the serial path (which raises the same way).
            return (
                EXPLODED,
                str(exc),
                query_cache.new_entries if query_cache else [],
                (0, 0),
                drain_observability(query_cache),
            )
        if store is not None:
            store.save(element, input_length, options, summary)
        return (
            COMPUTED,
            dumps_summary(summary),
            query_cache.new_entries if query_cache else [],
            (summary.sat_core_calls, summary.qcache_hits),
            drain_observability(query_cache),
        )
    finally:
        if store is not None:
            # Push this job's write into the worker's shard now: the pool
            # may recycle or kill the process before any destructor runs.
            store.close()


def summarize_jobs(
    jobs: Sequence[SummaryJob],
    options: SymbexOptions,
    workers: int = 1,
    store: Optional[Union[SummaryStore, str]] = None,
    qstats: Optional[QueryCacheStatistics] = None,
    pool: Optional[WorkerPool] = None,
) -> List[Tuple[str, Optional[ElementSummary], str]]:
    """Summarize every (element, input length) job, sharded across processes.

    Returns, in job order, ``(status, summary, detail)`` triples: status is
    :data:`COMPUTED`, :data:`LOADED` (from the store — no symbolic
    execution, which is how callers count real work), or :data:`EXPLODED`
    (summary is ``None`` and detail carries the budget message).  Loaded
    summaries are re-interned into the calling process's term table.

    Worker observability (spans, slow-solve records) merges into this
    process's tracer and slow log; per-tier query-cache counters fold
    into ``qstats`` when an accumulator is passed.  A :class:`WorkerPool`
    reuses processes across calls (one fork per run, not per wave).
    """
    store_root = None
    if store is not None:
        store_root = str(store.root) if isinstance(store, SummaryStore) else str(store)
    payloads = [(element, length, options, store_root) for element, length in jobs]
    results = run_tasks(_summarize_worker, payloads, workers=workers, pool=pool)
    if store_root is not None:
        # Every result is in (run_tasks returned), and each worker flushed
        # its shard per job (store.close() in _summarize_worker's finally),
        # so no shard of *this batch* has a live writer even when the pool
        # persists: fold every worker shard into the main store in one
        # bulk copy each.  A no-op on the JSON backend.
        main_store = store if isinstance(store, SummaryStore) else SummaryStore(store_root)
        main_store.merge_shards()
    merge_query_entries(
        options.query_cache_dir,
        [entry for _status, _text, entries, _work, _extras in results for entry in entries],
    )
    merged: List[Tuple[str, Optional[ElementSummary], str]] = []
    for status, text, _entries, work, extras in results:
        merge_observability(extras, qstats)
        if status == EXPLODED:
            merged.append((status, None, text))
            continue
        summary = loads_summary(text)
        if status == COMPUTED:
            # Serialization drops the runtime work counters; restore the
            # worker's so downstream accounting matches a serial run.
            summary.sat_core_calls, summary.qcache_hits = work
        merged.append((status, summary, ""))
    return merged


def job_digest(element: Element, input_length: int, options: SymbexOptions) -> str:
    """The store digest identifying a Step-1 job (used to dedupe fleet work)."""
    return summary_key(element, input_length, options)
