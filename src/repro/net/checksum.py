"""The Internet checksum (RFC 1071) used by IPv4, TCP, UDP and ICMP."""

from __future__ import annotations


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    ``initial`` allows chaining partial sums (e.g. a pseudo-header followed
    by a payload).  The returned value is the checksum to be stored in the
    header (i.e. already complemented).
    """
    total = initial
    length = len(data)
    for index in range(0, length - 1, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Running one's-complement sum (not complemented) for incremental updates."""
    total = initial
    length = len(data)
    for index in range(0, length - 1, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (with its checksum field in place) sums to zero."""
    return internet_checksum(data) == 0


def incremental_update(old_checksum: int, old_field: int, new_field: int) -> int:
    """RFC 1624 incremental checksum update for a single 16-bit field change.

    Used by DecTTL-style elements that rewrite one header field and must
    patch the checksum without recomputing it over the whole header.
    """
    # checksum' = ~(~checksum + ~old_field + new_field)
    total = (~old_checksum & 0xFFFF) + (~old_field & 0xFFFF) + (new_field & 0xFFFF)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
