"""Longest-prefix-match forwarding tables.

Two implementations are provided, mirroring the paper's discussion of
verification-friendly data structures (§3 "Element Verification"):

* :class:`TrieLPM` — a binary trie, the textbook structure.
* :class:`DirectIndexLPM` — a DIR-24-8-style flat-array scheme (Gupta,
  Lin, McKeown, INFOCOM 1998), which the paper singles out as the kind of
  pre-allocated array-based structure that is easy to verify statically.

Both expose the same ``add_route`` / ``lookup`` interface and are
interchangeable as the static state behind the ``IPLookup`` element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .addresses import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class RouteEntry:
    """A forwarding-table entry: prefix, output port, optional next hop."""

    prefix: IPv4Prefix
    port: int
    next_hop: Optional[IPv4Address] = None

    def __str__(self) -> str:
        hop = f" via {self.next_hop}" if self.next_hop is not None else ""
        return f"{self.prefix} -> port {self.port}{hop}"


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.entry: Optional[RouteEntry] = None


class TrieLPM:
    """Binary-trie longest-prefix-match table."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add_route(
        self,
        prefix: Union[str, IPv4Prefix],
        port: int,
        next_hop: Optional[Union[str, IPv4Address]] = None,
    ) -> RouteEntry:
        """Insert (or replace) a route and return the stored entry."""
        prefix = IPv4Prefix(prefix)
        entry = RouteEntry(
            prefix=prefix,
            port=port,
            next_hop=IPv4Address(next_hop) if next_hop is not None else None,
        )
        node = self._root
        address = int(prefix.network)
        for depth in range(prefix.length):
            bit = (address >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]  # type: ignore[assignment]
        if node.entry is None:
            self._size += 1
        node.entry = entry
        return entry

    def lookup(self, address: Union[str, int, IPv4Address]) -> Optional[RouteEntry]:
        """Return the most specific matching entry, or None."""
        value = int(IPv4Address(address))
        node: Optional[_TrieNode] = self._root
        best: Optional[RouteEntry] = None
        for depth in range(33):
            assert node is not None
            if node.entry is not None:
                best = node.entry
            if depth == 32:
                break
            bit = (value >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
        return best

    def routes(self) -> Iterator[RouteEntry]:
        """Iterate every stored route (pre-order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.entry is not None:
                yield node.entry
            for child in node.children:
                if child is not None:
                    stack.append(child)


class DirectIndexLPM:
    """DIR-24-8-style longest-prefix match over pre-allocated arrays.

    The first 24 bits of the address index a flat table; prefixes longer
    than 24 bits spill into second-level 256-entry blocks.  Lookups are at
    most two array reads — the O(1), pre-allocated access pattern the paper
    argues is amenable to static verification.

    To keep memory reasonable in pure Python the first-level "array" is a
    dict used as a sparse array; the access discipline (bounded index,
    fixed capacity) is preserved and checked.

    Very short prefixes are not expanded into the first level: a ``/0``
    would mean 2^24 slot writes per insert.  Prefixes of length up to
    :data:`WIDE_THRESHOLD` instead live in a small side list consulted
    when the direct index has nothing more specific — insertion stays
    bounded at ``2^(24 - WIDE_THRESHOLD)`` slot writes, and lookups remain
    two array reads plus a scan of the (few) wide routes.
    """

    SECOND_LEVEL_SIZE = 256
    #: Prefixes this short (or shorter) are kept unexpanded.
    WIDE_THRESHOLD = 12

    def __init__(self) -> None:
        # level-1 slot: ("direct", entry-or-None) or ("indirect", block index)
        self._level1: Dict[int, Tuple[str, object]] = {}
        self._level2: List[List[Optional[RouteEntry]]] = []
        self._wide: List[RouteEntry] = []
        self._routes: List[RouteEntry] = []

    def __len__(self) -> int:
        return len(self._routes)

    def add_route(
        self,
        prefix: Union[str, IPv4Prefix],
        port: int,
        next_hop: Optional[Union[str, IPv4Address]] = None,
    ) -> RouteEntry:
        prefix = IPv4Prefix(prefix)
        entry = RouteEntry(
            prefix=prefix,
            port=port,
            next_hop=IPv4Address(next_hop) if next_hop is not None else None,
        )
        self._routes.append(entry)
        network = int(prefix.network)
        if prefix.length <= self.WIDE_THRESHOLD:
            self._wide.append(entry)
        elif prefix.length <= 24:
            span = 1 << (24 - prefix.length)
            base = network >> 8
            for index in range(base, base + span):
                slot = self._level1.get(index)
                if slot is None:
                    self._level1[index] = ("direct", entry)
                elif slot[0] == "direct":
                    if self._is_more_specific(entry, slot[1]):  # type: ignore[arg-type]
                        self._level1[index] = ("direct", entry)
                else:
                    # Indirect slot: fill less-specific positions inside the block.
                    block = self._level2[int(slot[1])]  # type: ignore[arg-type]
                    for offset in range(self.SECOND_LEVEL_SIZE):
                        if self._is_more_specific(entry, block[offset]):
                            block[offset] = entry
        else:
            base = network >> 8
            slot = self._level1.get(base)
            if slot is None or slot[0] == "direct":
                default = slot[1] if slot is not None else None
                block_index = len(self._level2)
                self._level2.append([default] * self.SECOND_LEVEL_SIZE)  # type: ignore[list-item]
                self._level1[base] = ("indirect", block_index)
            else:
                block_index = int(self._level1[base][1])  # type: ignore[arg-type]
            block = self._level2[block_index]
            span = 1 << (32 - prefix.length)
            start = network & 0xFF
            for offset in range(start, start + span):
                if self._is_more_specific(entry, block[offset]):
                    block[offset] = entry
        return entry

    @staticmethod
    def _is_more_specific(candidate: RouteEntry, incumbent: Optional[RouteEntry]) -> bool:
        if incumbent is None:
            return True
        return candidate.prefix.length >= incumbent.prefix.length

    def lookup(self, address: Union[str, int, IPv4Address]) -> Optional[RouteEntry]:
        value = int(IPv4Address(address))
        slot = self._level1.get(value >> 8)
        indexed: Optional[RouteEntry] = None
        if slot is not None:
            kind, payload = slot
            if kind == "direct":
                indexed = payload  # type: ignore[assignment]
            else:
                block = self._level2[int(payload)]  # type: ignore[arg-type]
                indexed = block[value & 0xFF]
        if indexed is not None:
            # Every indexed entry is longer than WIDE_THRESHOLD, so it always
            # beats any unexpanded wide route.
            return indexed
        return self._best_wide(value)

    def _best_wide(self, value: int) -> Optional[RouteEntry]:
        best: Optional[RouteEntry] = None
        for entry in self._wide:
            length = entry.prefix.length
            if length and (value >> (32 - length)) != (int(entry.prefix.network) >> (32 - length)):
                continue
            if best is None or length >= best.prefix.length:
                best = entry
        return best

    def routes(self) -> Iterator[RouteEntry]:
        return iter(list(self._routes))


def build_table(
    routes: Iterator[Tuple[str, int]] | List[Tuple[str, int]],
    implementation: str = "trie",
) -> Union[TrieLPM, DirectIndexLPM]:
    """Build an LPM table of the requested implementation from (prefix, port) pairs."""
    table: Union[TrieLPM, DirectIndexLPM]
    if implementation == "trie":
        table = TrieLPM()
    elif implementation in ("dir-24-8", "direct"):
        table = DirectIndexLPM()
    else:
        raise ValueError(f"unknown LPM implementation {implementation!r}")
    for prefix, port in routes:
        table.add_route(prefix, port)
    return table
