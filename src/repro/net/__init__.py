"""``repro.net`` — protocol substrate: addresses, headers, checksums, lookup tables.

This package provides the concrete networking building blocks the
dataplane elements and workload generators rely on: Ethernet/IPv4/TCP/UDP
header encoding and parsing, the Internet checksum, address and prefix
types, longest-prefix-match forwarding tables, and the classifier rule
language.
"""

from .addresses import EthernetAddress, IPv4Address, IPv4Prefix
from .checksum import internet_checksum, verify_checksum
from .headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    build_ethernet_frame,
    build_ipv4_packet,
    build_tcp_segment,
    build_udp_datagram,
)
from .lpm import DirectIndexLPM, RouteEntry, TrieLPM
from .rules import ClassifierPattern, ClassifierRule, parse_classifier_pattern

__all__ = [
    "ClassifierPattern",
    "ClassifierRule",
    "DirectIndexLPM",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetAddress",
    "EthernetHeader",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPv4Address",
    "IPv4Header",
    "IPv4Prefix",
    "RouteEntry",
    "TCPHeader",
    "TrieLPM",
    "UDPHeader",
    "build_ethernet_frame",
    "build_ipv4_packet",
    "build_tcp_segment",
    "build_udp_datagram",
    "internet_checksum",
    "parse_classifier_pattern",
    "verify_checksum",
]
