"""Address types: IPv4 addresses, IPv4 prefixes, Ethernet (MAC) addresses.

All types are immutable value objects with integer views, which is what
the dataplane elements (operating on packed fields) consume.
"""

from __future__ import annotations

from typing import Iterator, Union


class AddressError(ValueError):
    """Raised when an address or prefix cannot be parsed or is out of range."""


class IPv4Address:
    """An IPv4 address, convertible between dotted-quad, int and bytes forms."""

    __slots__ = ("_value",)

    def __init__(self, address: Union[str, int, bytes, "IPv4Address"]) -> None:
        if isinstance(address, IPv4Address):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise AddressError(f"IPv4 address out of range: {address}")
            self._value = address
        elif isinstance(address, bytes):
            if len(address) != 4:
                raise AddressError(f"IPv4 address needs 4 bytes, got {len(address)}")
            self._value = int.from_bytes(address, "big")
        elif isinstance(address, str):
            self._value = self._parse(address)
        else:
            raise AddressError(f"cannot build an IPv4 address from {address!r}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"IPv4 octet out of range in {text!r}")
            value = (value << 8) | octet
        return value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __str__(self) -> str:
        return ".".join(str((self._value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, (int, str, bytes)):
            try:
                return self._value == IPv4Address(other)._value
            except AddressError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IPv4Address", self._value))

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < int(other)

    def is_multicast(self) -> bool:
        return 0xE0000000 <= self._value <= 0xEFFFFFFF

    def is_loopback(self) -> bool:
        return (self._value >> 24) == 127

    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF


class IPv4Prefix:
    """An IPv4 prefix (network address plus prefix length)."""

    __slots__ = ("network", "length")

    def __init__(self, prefix: Union[str, "IPv4Prefix"], length: int | None = None) -> None:
        if isinstance(prefix, IPv4Prefix):
            self.network = prefix.network
            self.length = prefix.length
            return
        if isinstance(prefix, str) and "/" in prefix and length is None:
            address_text, length_text = prefix.split("/", 1)
            address = IPv4Address(address_text)
            length = int(length_text)
        else:
            address = IPv4Address(prefix)  # type: ignore[arg-type]
            length = 32 if length is None else length
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        self.length = length
        self.network = IPv4Address(int(address) & self.mask())

    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, address: Union[IPv4Address, int, str]) -> bool:
        return (int(IPv4Address(address)) & self.mask()) == int(self.network)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only for small prefixes)."""
        base = int(self.network)
        for offset in range(1 << (32 - self.length)):
            yield IPv4Address(base + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __hash__(self) -> int:
        return hash(("IPv4Prefix", int(self.network), self.length))


class EthernetAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    def __init__(self, address: Union[str, int, bytes, "EthernetAddress"]) -> None:
        if isinstance(address, EthernetAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFFFFFF:
                raise AddressError(f"Ethernet address out of range: {address}")
            self._value = address
        elif isinstance(address, bytes):
            if len(address) != 6:
                raise AddressError(f"Ethernet address needs 6 bytes, got {len(address)}")
            self._value = int.from_bytes(address, "big")
        elif isinstance(address, str):
            self._value = self._parse(address)
        else:
            raise AddressError(f"cannot build an Ethernet address from {address!r}")

    @staticmethod
    def _parse(text: str) -> int:
        separator = ":" if ":" in text else "-"
        parts = text.strip().split(separator)
        if len(parts) != 6:
            raise AddressError(f"malformed Ethernet address: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part, 16)
            except ValueError as exc:
                raise AddressError(f"malformed Ethernet address: {text!r}") from exc
            if not 0 <= octet <= 255:
                raise AddressError(f"Ethernet octet out of range in {text!r}")
            value = (value << 8) | octet
        return value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        return ":".join(f"{(self._value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"EthernetAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EthernetAddress):
            return self._value == other._value
        if isinstance(other, (int, str, bytes)):
            try:
                return self._value == EthernetAddress(other)._value
            except AddressError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("EthernetAddress", self._value))

    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFFFFFF

    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)
