"""Header codecs for Ethernet, IPv4, TCP and UDP.

These classes serve the *concrete* side of the system: workload
generators, examples and integration tests use them to build byte-exact
packets; the dataplane elements themselves parse headers field-by-field
through the IR (so that the same code path is symbolically executed).

Field offsets exported here are shared with the element implementations
so both sides agree on the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .addresses import EthernetAddress, IPv4Address
from .checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

#: Byte layout constants shared with the IR-level element programs.
ETHERNET_HEADER_LEN = 14
ETHERNET_DST_OFFSET = 0
ETHERNET_SRC_OFFSET = 6
ETHERNET_TYPE_OFFSET = 12

IPV4_MIN_HEADER_LEN = 20
IPV4_VERSION_IHL_OFFSET = 0
IPV4_TOS_OFFSET = 1
IPV4_TOTAL_LENGTH_OFFSET = 2
IPV4_ID_OFFSET = 4
IPV4_FLAGS_FRAG_OFFSET = 6
IPV4_TTL_OFFSET = 8
IPV4_PROTO_OFFSET = 9
IPV4_CHECKSUM_OFFSET = 10
IPV4_SRC_OFFSET = 12
IPV4_DST_OFFSET = 16
IPV4_OPTIONS_OFFSET = 20

UDP_HEADER_LEN = 8
TCP_MIN_HEADER_LEN = 20


class HeaderError(ValueError):
    """Raised when a header cannot be parsed or serialised."""


@dataclass
class EthernetHeader:
    """An Ethernet II header."""

    dst: EthernetAddress = field(default_factory=lambda: EthernetAddress(0))
    src: EthernetAddress = field(default_factory=lambda: EthernetAddress(0))
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        return bytes(self.dst) + bytes(self.src) + self.ethertype.to_bytes(2, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETHERNET_HEADER_LEN:
            raise HeaderError(f"Ethernet header needs {ETHERNET_HEADER_LEN} bytes, got {len(data)}")
        return cls(
            dst=EthernetAddress(data[0:6]),
            src=EthernetAddress(data[6:12]),
            ethertype=int.from_bytes(data[12:14], "big"),
        )


@dataclass
class IPv4Header:
    """An IPv4 header, including options."""

    src: IPv4Address = field(default_factory=lambda: IPv4Address(0))
    dst: IPv4Address = field(default_factory=lambda: IPv4Address(0))
    protocol: int = IPPROTO_UDP
    ttl: int = 64
    tos: int = 0
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0
    total_length: Optional[int] = None  # filled from payload when packing if None
    checksum: Optional[int] = None      # computed when packing if None
    options: bytes = b""
    payload_length: int = 0             # used when total_length is None

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words (5 when there are no options)."""
        options_len = len(self.options)
        if options_len % 4:
            raise HeaderError("IPv4 options must be padded to a multiple of 4 bytes")
        return 5 + options_len // 4

    def header_length(self) -> int:
        return self.ihl * 4

    def pack(self, payload: bytes = b"") -> bytes:
        total_length = self.total_length
        if total_length is None:
            total_length = self.header_length() + (len(payload) or self.payload_length)
        version_ihl = (4 << 4) | self.ihl
        flags_frag = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        header = bytearray()
        header.append(version_ihl)
        header.append(self.tos & 0xFF)
        header += total_length.to_bytes(2, "big")
        header += self.identification.to_bytes(2, "big")
        header += flags_frag.to_bytes(2, "big")
        header.append(self.ttl & 0xFF)
        header.append(self.protocol & 0xFF)
        header += b"\x00\x00"  # checksum placeholder
        header += bytes(self.src)
        header += bytes(self.dst)
        header += self.options
        checksum = self.checksum
        if checksum is None:
            checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + payload

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_MIN_HEADER_LEN:
            raise HeaderError(f"IPv4 header needs at least 20 bytes, got {len(data)}")
        version = data[0] >> 4
        ihl = data[0] & 0x0F
        if version != 4:
            raise HeaderError(f"not an IPv4 packet (version={version})")
        if ihl < 5:
            raise HeaderError(f"invalid IHL {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise HeaderError(f"truncated IPv4 header: need {header_len} bytes, got {len(data)}")
        flags_frag = int.from_bytes(data[6:8], "big")
        return cls(
            src=IPv4Address(data[12:16]),
            dst=IPv4Address(data[16:20]),
            protocol=data[9],
            ttl=data[8],
            tos=data[1],
            identification=int.from_bytes(data[4:6], "big"),
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            total_length=int.from_bytes(data[2:4], "big"),
            checksum=int.from_bytes(data[10:12], "big"),
            options=bytes(data[20:header_len]),
        )


@dataclass
class UDPHeader:
    """A UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: Optional[int] = None
    checksum: int = 0

    def pack(self, payload: bytes = b"") -> bytes:
        length = self.length if self.length is not None else UDP_HEADER_LEN + len(payload)
        header = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + length.to_bytes(2, "big")
            + self.checksum.to_bytes(2, "big")
        )
        return header + payload

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_HEADER_LEN:
            raise HeaderError(f"UDP header needs 8 bytes, got {len(data)}")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            length=int.from_bytes(data[4:6], "big"),
            checksum=int.from_bytes(data[6:8], "big"),
        )


@dataclass
class TCPHeader:
    """A TCP header (without options unless supplied)."""

    src_port: int = 0
    dst_port: int = 0
    sequence: int = 0
    acknowledgment: int = 0
    flags: int = 0x02  # SYN by default
    window: int = 65535
    checksum: int = 0
    urgent: int = 0
    options: bytes = b""

    @property
    def data_offset(self) -> int:
        options_len = len(self.options)
        if options_len % 4:
            raise HeaderError("TCP options must be padded to a multiple of 4 bytes")
        return 5 + options_len // 4

    def pack(self, payload: bytes = b"") -> bytes:
        offset_flags = (self.data_offset << 12) | (self.flags & 0x1FF)
        header = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.sequence.to_bytes(4, "big")
            + self.acknowledgment.to_bytes(4, "big")
            + offset_flags.to_bytes(2, "big")
            + self.window.to_bytes(2, "big")
            + self.checksum.to_bytes(2, "big")
            + self.urgent.to_bytes(2, "big")
            + self.options
        )
        return header + payload

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < TCP_MIN_HEADER_LEN:
            raise HeaderError(f"TCP header needs at least 20 bytes, got {len(data)}")
        offset_flags = int.from_bytes(data[12:14], "big")
        data_offset = offset_flags >> 12
        header_len = data_offset * 4
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            sequence=int.from_bytes(data[4:8], "big"),
            acknowledgment=int.from_bytes(data[8:12], "big"),
            flags=offset_flags & 0x1FF,
            window=int.from_bytes(data[14:16], "big"),
            checksum=int.from_bytes(data[16:18], "big"),
            urgent=int.from_bytes(data[18:20], "big"),
            options=bytes(data[20:header_len]) if len(data) >= header_len else b"",
        )


# -- convenience builders ---------------------------------------------------------------


def build_udp_datagram(
    src_port: int, dst_port: int, payload: bytes = b""
) -> bytes:
    """A UDP datagram (header + payload) with the length field filled in."""
    return UDPHeader(src_port=src_port, dst_port=dst_port).pack(payload)


def build_tcp_segment(
    src_port: int, dst_port: int, payload: bytes = b"", flags: int = 0x02
) -> bytes:
    """A TCP segment (header + payload)."""
    return TCPHeader(src_port=src_port, dst_port=dst_port, flags=flags).pack(payload)


def build_ipv4_packet(
    src: Union[str, IPv4Address],
    dst: Union[str, IPv4Address],
    payload: bytes = b"",
    protocol: int = IPPROTO_UDP,
    ttl: int = 64,
    options: bytes = b"",
    checksum: Optional[int] = None,
    total_length: Optional[int] = None,
) -> bytes:
    """An IPv4 packet with a valid (or explicitly overridden) checksum."""
    header = IPv4Header(
        src=IPv4Address(src),
        dst=IPv4Address(dst),
        protocol=protocol,
        ttl=ttl,
        options=options,
        checksum=checksum,
        total_length=total_length,
    )
    return header.pack(payload)


def build_ethernet_frame(
    dst: Union[str, EthernetAddress],
    src: Union[str, EthernetAddress],
    payload: bytes,
    ethertype: int = ETHERTYPE_IPV4,
) -> bytes:
    """An Ethernet frame wrapping ``payload``."""
    header = EthernetHeader(
        dst=EthernetAddress(dst), src=EthernetAddress(src), ethertype=ethertype
    )
    return header.pack() + payload
