"""Classifier rule language.

Click's ``Classifier`` element matches packets against patterns of the
form ``offset/value[%mask]`` (for example ``12/0800`` matches an IPv4
ethertype at byte offset 12).  This module parses that pattern syntax and
represents compiled rules; the ``Classifier`` element turns them into IR
branches so the same rules drive both concrete classification and
symbolic verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class RuleError(ValueError):
    """Raised when a classifier pattern cannot be parsed."""


@dataclass(frozen=True)
class ClassifierPattern:
    """One ``offset/value%mask`` conjunct of a classifier rule.

    ``value`` and ``mask`` cover ``len(mask)`` bytes starting at ``offset``.
    A packet matches when ``packet[offset:offset+n] & mask == value & mask``.
    """

    offset: int
    value: bytes
    mask: bytes

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise RuleError(f"negative offset in classifier pattern: {self.offset}")
        if len(self.value) != len(self.mask):
            raise RuleError("classifier pattern value and mask lengths differ")
        if not self.value:
            raise RuleError("classifier pattern must cover at least one byte")

    @property
    def length(self) -> int:
        return len(self.value)

    def matches(self, data: bytes) -> bool:
        """Concrete match against raw packet bytes."""
        end = self.offset + self.length
        if end > len(data):
            return False
        window = data[self.offset : end]
        return all((w & m) == (v & m) for w, v, m in zip(window, self.value, self.mask))

    def __str__(self) -> str:
        value_hex = self.value.hex()
        if all(m == 0xFF for m in self.mask):
            return f"{self.offset}/{value_hex}"
        return f"{self.offset}/{value_hex}%{self.mask.hex()}"


@dataclass(frozen=True)
class ClassifierRule:
    """A conjunction of patterns mapped to an output port.

    The special "catch-all" rule (no patterns) matches every packet and is
    written ``-`` in Click configurations.
    """

    patterns: Tuple[ClassifierPattern, ...]
    port: int

    def matches(self, data: bytes) -> bool:
        return all(pattern.matches(data) for pattern in self.patterns)

    def is_catch_all(self) -> bool:
        return not self.patterns

    def __str__(self) -> str:
        if self.is_catch_all():
            return f"- -> {self.port}"
        body = " ".join(str(pattern) for pattern in self.patterns)
        return f"{body} -> {self.port}"


def _parse_hex_with_wildcards(text: str) -> Tuple[bytes, bytes]:
    """Parse a hex string where '?' nibbles are wildcards; return (value, mask)."""
    if len(text) % 2:
        text += "?"  # odd number of nibbles: final low nibble is a wildcard
    value = bytearray()
    mask = bytearray()
    for index in range(0, len(text), 2):
        pair = text[index : index + 2]
        byte_value = 0
        byte_mask = 0
        for position, char in enumerate(pair):
            shift = 4 if position == 0 else 0
            if char == "?":
                continue
            try:
                nibble = int(char, 16)
            except ValueError as exc:
                raise RuleError(f"bad hex digit {char!r} in pattern {text!r}") from exc
            byte_value |= nibble << shift
            byte_mask |= 0xF << shift
        value.append(byte_value)
        mask.append(byte_mask)
    return bytes(value), bytes(mask)


def parse_classifier_pattern(text: str) -> ClassifierPattern:
    """Parse one ``offset/value[%mask]`` conjunct."""
    text = text.strip()
    if "/" not in text:
        raise RuleError(f"classifier pattern missing '/': {text!r}")
    offset_text, remainder = text.split("/", 1)
    try:
        offset = int(offset_text)
    except ValueError as exc:
        raise RuleError(f"bad offset in classifier pattern {text!r}") from exc
    if "%" in remainder:
        value_text, mask_text = remainder.split("%", 1)
        value, implicit_mask = _parse_hex_with_wildcards(value_text)
        explicit_mask, _ = _parse_hex_with_wildcards(mask_text)
        if len(explicit_mask) != len(value):
            raise RuleError(f"mask length does not match value length in {text!r}")
        mask = bytes(a & b for a, b in zip(implicit_mask, explicit_mask))
    else:
        value, mask = _parse_hex_with_wildcards(remainder)
    return ClassifierPattern(offset=offset, value=value, mask=mask)


def parse_classifier_rule(text: str, port: int) -> ClassifierRule:
    """Parse a full rule: whitespace-separated conjuncts, or ``-`` for catch-all."""
    text = text.strip()
    if text in ("-", ""):
        return ClassifierRule(patterns=(), port=port)
    patterns = tuple(parse_classifier_pattern(part) for part in text.split())
    return ClassifierRule(patterns=patterns, port=port)


def parse_classifier_config(rules: Sequence[str]) -> List[ClassifierRule]:
    """Parse a Click-style Classifier configuration (one rule per output port)."""
    return [parse_classifier_rule(rule, port) for port, rule in enumerate(rules)]
