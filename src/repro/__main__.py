"""``python -m repro`` — the command-line front door (see :mod:`repro.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
