"""Summary cache: process each element once (§2 "Our Approach").

Element summaries are keyed by the element's configuration key, the input
packet length, and the static-table mode — so an element that appears in
many pipelines (or at many positions of the same pipeline) is symbolically
executed a single time, which is where the ``k * 2^n`` (rather than
``2^(k*n)``) cost of the decomposed approach comes from.

The cache is tiered: this class is the in-process **L1**, and it can be
backed by an on-disk :class:`repro.orchestrator.store.SummaryStore` (the
**L2**) shared between worker processes and across runs.  An L2 hit loads
and re-interns a previously serialized summary instead of re-executing the
element symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import smt
from ..obs.stats import StatisticsMixin
from ..obs.trace import clock, tracer
from ..dataplane.element import Element
from ..dataplane.fingerprint import configuration_fingerprint
from ..symbex.engine import StaticTableMode, SymbexOptions, SymbolicEngine
from ..symbex.segment import ElementSummary


@dataclass
class CacheStatistics(StatisticsMixin):
    """Traffic counters for the tiered summary cache.

    ``l1_hits`` were answered from the in-process dict, ``l2_hits`` from
    the on-disk store, and ``misses`` required a fresh symbolic execution.
    ``entries`` is the number of summaries currently live in L1 — it is
    maintained explicitly (not derived from the miss count), so it stays
    correct across ``invalidate()`` and L2-served fills.
    """

    l1_hits: int = 0
    l2_hits: int = 0
    misses: int = 0
    entries: int = 0
    seconds_spent_summarizing: float = 0.0

    @property
    def hits(self) -> int:
        """Total lookups answered without symbolic execution (L1 + L2)."""
        return self.l1_hits + self.l2_hits


class SummaryCache:
    """Tiered cache of Step-1 element summaries."""

    def __init__(
        self,
        options: Optional[SymbexOptions] = None,
        store: Optional[object] = None,
        query_cache: Optional[smt.QueryCache] = None,
    ) -> None:
        self.options = options or SymbexOptions()
        #: Optional L2 tier: any object with ``load(element, length, mode)``
        #: and ``save(element, length, mode, summary)`` — in practice a
        #: :class:`repro.orchestrator.store.SummaryStore`.
        self.store = store
        #: The query-optimization cache shared by every engine this cache
        #: spawns (and by the composition engine attached to it), so slice
        #: verdicts cross element and pipeline boundaries within a run.
        self.query_cache = (
            query_cache
            if query_cache is not None
            else smt.build_query_cache(
                self.options.incremental and self.options.query_opt,
                self.options.query_cache_dir,
            )
        )
        self._summaries: Dict[Tuple[str, int, str], ElementSummary] = {}
        self.statistics = CacheStatistics()

    def _key(self, element: Element, input_length: int) -> Tuple[str, int, str]:
        # The configuration fingerprint covers the config key, the program
        # structure, and (in concrete mode) static-table contents — two
        # elements share an entry iff symbolic execution would agree.
        mode = self.options.static_table_mode
        fingerprint = configuration_fingerprint(
            element, include_static_tables=mode == StaticTableMode.CONCRETE
        )
        return (fingerprint, input_length, mode)

    def summarize(self, element: Element, input_length: int) -> ElementSummary:
        """Return the element's summary for the given input length, computing it if needed."""
        mode = self.options.static_table_mode
        key = self._key(element, input_length)
        trace = tracer()
        cached = self._summaries.get(key)
        if cached is not None:
            self.statistics.l1_hits += 1
            if trace.enabled:
                trace.event("cache.hit", "cache", tier="l1", element=element.name)
            return cached
        if self.store is not None:
            stored = self.store.load(element, input_length, self.options)
            if stored is not None:
                self.statistics.l2_hits += 1
                if trace.enabled:
                    trace.event("cache.hit", "cache", tier="l2", element=element.name)
                self._insert(key, stored)
                return stored
        self.statistics.misses += 1
        if trace.enabled:
            trace.event("cache.miss", "cache", element=element.name)
        started = clock()
        engine = SymbolicEngine(self.options, query_cache=self.query_cache)
        summary = engine.summarize_element(
            element.program,
            input_length,
            tables=element.state.tables(),
            element_name=element.name,
            configuration_key=element.configuration_key(),
        )
        self.statistics.seconds_spent_summarizing += clock() - started
        self._insert(key, summary)
        if self.store is not None:
            self.store.save(element, input_length, self.options, summary)
        return summary

    def contains(self, element: Element, input_length: int) -> bool:
        """True if the summary is already resident in L1 (no L2 probe)."""
        return self._key(element, input_length) in self._summaries

    def seed(self, element: Element, input_length: int, summary: ElementSummary) -> None:
        """Install a summary computed elsewhere (a worker process, a peer cache)."""
        self._insert(self._key(element, input_length), summary)

    def _insert(self, key: Tuple[str, int, str], summary: ElementSummary) -> None:
        if key not in self._summaries:
            self.statistics.entries += 1
        self._summaries[key] = summary

    def invalidate(self) -> None:
        self._summaries.clear()
        self.statistics.entries = 0

    def __len__(self) -> int:
        return len(self._summaries)
