"""Summary cache: process each element once (§2 "Our Approach").

Element summaries are keyed by the element's configuration key, the input
packet length, and the static-table mode — so an element that appears in
many pipelines (or at many positions of the same pipeline) is symbolically
executed a single time, which is where the ``k * 2^n`` (rather than
``2^(k*n)``) cost of the decomposed approach comes from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dataplane.element import Element
from ..symbex.engine import StaticTableMode, SymbexOptions, SymbolicEngine
from ..symbex.segment import ElementSummary


@dataclass
class CacheStatistics:
    hits: int = 0
    misses: int = 0
    seconds_spent_summarizing: float = 0.0

    @property
    def entries(self) -> int:
        return self.misses


class SummaryCache:
    """Cache of Step-1 element summaries."""

    def __init__(
        self,
        options: Optional[SymbexOptions] = None,
    ) -> None:
        self.options = options or SymbexOptions()
        self._summaries: Dict[Tuple[str, int, str], ElementSummary] = {}
        self.statistics = CacheStatistics()

    def summarize(self, element: Element, input_length: int) -> ElementSummary:
        """Return the element's summary for the given input length, computing it if needed."""
        key = (element.configuration_key(), input_length, self.options.static_table_mode)
        cached = self._summaries.get(key)
        if cached is not None:
            self.statistics.hits += 1
            return cached
        self.statistics.misses += 1
        started = time.perf_counter()
        engine = SymbolicEngine(self.options)
        summary = engine.summarize_element(
            element.program,
            input_length,
            tables=element.state.tables(),
            element_name=element.name,
            configuration_key=element.configuration_key(),
        )
        self.statistics.seconds_spent_summarizing += time.perf_counter() - started
        self._summaries[key] = summary
        return summary

    def invalidate(self) -> None:
        self._summaries.clear()

    def __len__(self) -> int:
        return len(self._summaries)
