"""The baseline the paper compares against: whole-pipeline symbolic execution.

Instead of summarising elements in isolation and composing (Step 1 /
Step 2), the monolithic verifier symbolically executes the entire pipeline
as if it were one program: every path of element *i* is extended by every
path of element *i+1* under the accumulated path constraint.  The number
of explored paths therefore grows as the product of the per-element path
counts — the ``2^(k·n)`` behaviour of §3 — and on non-trivial pipelines
the run exceeds its budget, reproducing the paper's "did not complete
within 12 hours" data point as a ``budget exceeded`` verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import smt
from ..obs.trace import clock
from ..dataplane.element import Element
from ..dataplane.pipeline import Pipeline
from ..symbex.engine import SymbexOptions, SymbolicEngine
from ..symbex.errors import PathExplosionError
from ..symbex.segment import SegmentOutcome
from ..symbex.state import PathState, SymbolicPacket
from .errors import VerificationError
from .properties import CrashFreedom, Property
from .report import (
    Counterexample,
    VerificationResult,
    VerificationStatistics,
    Verdict,
)


@dataclass
class MonolithicStatistics(VerificationStatistics):
    """Statistics specific to whole-pipeline exploration."""

    pipeline_paths_explored: int = 0


class MonolithicVerifier:
    """Whole-pipeline symbolic execution without decomposition (the baseline)."""

    def __init__(
        self,
        pipeline: Pipeline,
        entry: Optional[Element] = None,
        options: Optional[SymbexOptions] = None,
    ) -> None:
        pipeline.validate()
        self.pipeline = pipeline
        self.options = options or SymbexOptions(max_paths=20_000, max_seconds=60.0)
        if entry is None:
            entries = pipeline.entry_elements()
            if len(entries) != 1:
                raise VerificationError(
                    f"pipeline has {len(entries)} entry elements; pass `entry` explicitly"
                )
            entry = entries[0]
        self.entry = entry

    def verify(
        self,
        target_property: Property,
        input_length: int = 64,
        max_counterexamples: int = 3,
    ) -> VerificationResult:
        """Explore every pipeline path under a symbolic packet; classify terminal paths."""
        started = clock()
        statistics = MonolithicStatistics()
        counterexamples: List[Counterexample] = []
        verdict = Verdict.PROVED
        notes: List[str] = []
        deadline = (
            started + self.options.max_seconds if self.options.max_seconds is not None else None
        )
        engine = SymbolicEngine(self.options)

        terminal_paths: List[Tuple[Element, PathState, List[str]]] = []

        def explore(element: Element, packet: SymbolicPacket, constraints, metadata, trail: List[str]) -> None:
            if deadline is not None and clock() > deadline:
                raise PathExplosionError(
                    f"monolithic exploration exceeded {self.options.max_seconds} seconds"
                )
            states = engine.execute_program(
                element.program,
                packet,
                tables=element.state.tables(),
                element_name=element.name,
                initial_constraints=constraints,
                initial_metadata=metadata,
            )
            for state in states:
                new_trail = trail + [element.name]
                if state.outcome == SegmentOutcome.EMIT:
                    downstream = self.pipeline.downstream(element, state.port or 0)
                    if downstream is None:
                        self._record_terminal(statistics, terminal_paths, element, state, new_trail)
                        continue
                    explore(
                        downstream[0],
                        SymbolicPacket(list(state.packet.bytes)),
                        list(state.constraints),
                        dict(state.metadata),
                        new_trail,
                    )
                else:
                    self._record_terminal(statistics, terminal_paths, element, state, new_trail)

        try:
            explore(self.entry, SymbolicPacket.fresh(input_length), [], {}, [])
            for element, state, trail in terminal_paths:
                violating = self._violates(target_property, element, state)
                if not violating:
                    continue
                verdict = Verdict.VIOLATED
                if len(counterexamples) < max_counterexamples:
                    counterexamples.append(self._counterexample(engine, element, state, trail, input_length))
        except PathExplosionError as exc:
            verdict = Verdict.UNKNOWN
            statistics.budget_exceeded = True
            notes.append(f"did not complete within budget: {exc}")

        statistics.count_solver_checks(
            engine.solver_checks,
            incremental=engine.checker is not None,
            memo_hits=engine.checker.memo_hits if engine.checker else 0,
        )
        statistics.elapsed_seconds = clock() - started
        return VerificationResult(
            property_name=target_property.describe(),
            pipeline_name=self.pipeline.name,
            verdict=verdict,
            input_lengths=(input_length,),
            counterexamples=counterexamples,
            statistics=statistics,
            notes=notes,
        )

    def _record_terminal(
        self,
        statistics: MonolithicStatistics,
        terminal_paths: List[Tuple[Element, PathState, List[str]]],
        element: Element,
        state: PathState,
        trail: List[str],
    ) -> None:
        """Count one complete pipeline path (the ``2^(k*n)`` quantity of §3)."""
        statistics.pipeline_paths_explored += 1
        if statistics.pipeline_paths_explored > self.options.max_paths:
            raise PathExplosionError(
                f"monolithic exploration exceeded {self.options.max_paths} pipeline paths"
            )
        terminal_paths.append((element, state, trail))

    @staticmethod
    def _violates(target_property: Property, element: Element, state: PathState) -> bool:
        if isinstance(target_property, CrashFreedom):
            return state.outcome == SegmentOutcome.CRASH
        # Generic fallback: reuse the property's per-segment classification on a
        # pseudo-segment built from the terminal state.
        from ..symbex.segment import summarize_path

        return target_property.is_suspect(element.name, summarize_path(element.name, 0, state))

    def _counterexample(
        self,
        engine: SymbolicEngine,
        element: Element,
        state: PathState,
        trail: List[str],
        input_length: int,
    ) -> Counterexample:
        solver = engine.solver
        status = solver.check(state.path_constraint())
        packet = bytes(input_length)
        if status == smt.CheckResult.SAT:
            model = solver.model()
            data = bytearray(input_length)
            for index in range(input_length):
                data[index] = int(model.get(f"in_b{index}", 0)) & 0xFF
            packet = bytes(data)
        return Counterexample(
            packet=packet,
            element_path=trail,
            violating_element=element.name,
            violation_kind=state.outcome or "",
            detail=state.crash_message or state.drop_reason,
        )

    def count_paths(self, input_length: int = 64) -> int:
        """Explore and return the number of whole-pipeline paths (for the scaling benches)."""
        result = self.verify(CrashFreedom(), input_length=input_length)
        explored = result.statistics
        return getattr(explored, "pipeline_paths_explored", 0)
