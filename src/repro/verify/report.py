"""Verification results: proofs, counterexamples and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Verdict:
    """Possible outcomes of a verification run."""

    PROVED = "proved"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass
class Counterexample:
    """A concrete packet (plus any required table state) violating the property."""

    packet: bytes
    element_path: List[str] = field(default_factory=list)
    violating_element: str = ""
    violation_kind: str = ""
    detail: str = ""
    required_table_values: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, int] = field(default_factory=dict)
    confirmed_by_replay: Optional[bool] = None

    def __repr__(self) -> str:
        return (
            f"Counterexample(len={len(self.packet)}, element={self.violating_element!r}, "
            f"kind={self.violation_kind!r}, detail={self.detail!r}, "
            f"confirmed={self.confirmed_by_replay})"
        )


@dataclass
class VerificationStatistics:
    """Work performed during one verification run.

    ``solver_checks`` counts every feasibility/satisfiability question the
    run asked.  The incremental/scratch split reports which solving core
    answered them: ``incremental_solver_checks`` went through a persistent
    assumption-based context (encodings and learned clauses retained
    between questions), ``scratch_solver_checks`` rebuilt the query from
    nothing, and ``feasibility_memo_hits`` were answered from the
    interned-constraint-set memo without touching a solver at all.
    """

    elements_analyzed: int = 0
    segments_total: int = 0
    suspect_segments: int = 0
    composed_paths_checked: int = 0
    composed_paths_feasible: int = 0
    solver_checks: int = 0
    incremental_solver_checks: int = 0
    scratch_solver_checks: int = 0
    feasibility_memo_hits: int = 0
    summary_cache_hits: int = 0
    elapsed_seconds: float = 0.0
    per_element_segments: Dict[str, int] = field(default_factory=dict)
    per_element_seconds: Dict[str, float] = field(default_factory=dict)
    budget_exceeded: bool = False

    def merge_element(self, name: str, segments: int, seconds: float) -> None:
        self.elements_analyzed += 1
        self.segments_total += segments
        self.per_element_segments[name] = segments
        self.per_element_seconds[name] = self.per_element_seconds.get(name, 0.0) + seconds

    def count_solver_checks(self, checks: int, incremental: bool, memo_hits: int = 0) -> None:
        """Attribute ``checks`` solver questions to the right solving core."""
        self.solver_checks += checks
        if incremental:
            self.incremental_solver_checks += checks
        else:
            self.scratch_solver_checks += checks
        self.feasibility_memo_hits += memo_hits


@dataclass
class VerificationResult:
    """The outcome of verifying one property on one pipeline."""

    property_name: str
    pipeline_name: str
    verdict: str
    input_lengths: Tuple[int, ...] = ()
    counterexamples: List[Counterexample] = field(default_factory=list)
    statistics: VerificationStatistics = field(default_factory=VerificationStatistics)
    notes: List[str] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        return self.verdict == Verdict.PROVED

    @property
    def violated(self) -> bool:
        return self.verdict == Verdict.VIOLATED

    def summary(self) -> str:
        lines = [
            f"property   : {self.property_name}",
            f"pipeline   : {self.pipeline_name}",
            f"verdict    : {self.verdict}",
            f"lengths    : {list(self.input_lengths)}",
            f"segments   : {self.statistics.segments_total} "
            f"({self.statistics.suspect_segments} suspect)",
            f"composed   : {self.statistics.composed_paths_checked} checked, "
            f"{self.statistics.composed_paths_feasible} feasible",
            f"solver     : {self.statistics.solver_checks} checks "
            f"({self.statistics.incremental_solver_checks} incremental / "
            f"{self.statistics.scratch_solver_checks} scratch, "
            f"{self.statistics.feasibility_memo_hits} memo hits)",
            f"time       : {self.statistics.elapsed_seconds:.2f}s",
        ]
        for counterexample in self.counterexamples[:5]:
            lines.append(f"counterexample: {counterexample!r}")
        for note in self.notes:
            lines.append(f"note       : {note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"VerificationResult({self.property_name!r}, {self.pipeline_name!r}, "
            f"{self.verdict}, {len(self.counterexamples)} counterexamples)"
        )


@dataclass
class InstructionBoundResult:
    """Result of the bounded-instructions analysis."""

    pipeline_name: str
    input_lengths: Tuple[int, ...]
    bound: int
    witness_packet: Optional[bytes] = None
    witness_instructions: Optional[int] = None
    witness_confirmed: Optional[bool] = None
    per_path_bounds: List[Tuple[str, int]] = field(default_factory=list)
    statistics: VerificationStatistics = field(default_factory=VerificationStatistics)

    def summary(self) -> str:
        lines = [
            f"pipeline            : {self.pipeline_name}",
            f"instruction bound   : {self.bound}",
            f"witness instructions: {self.witness_instructions}",
            f"witness confirmed   : {self.witness_confirmed}",
        ]
        return "\n".join(lines)
