"""Verification results: proofs, counterexamples and statistics.

Every result type round-trips through plain-JSON dicts (``to_dict`` /
``from_dict``): counterexamples carry concrete bytes and scalars, never
solver terms, so — unlike element summaries — verdict records need no DAG
serialization.  The orchestrator's :class:`VerdictStore` persists these
payloads to make re-certification proportional to a configuration diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.stats import StatisticsMixin


class Verdict:
    """Possible outcomes of a verification run."""

    PROVED = "proved"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass
class Counterexample:
    """A concrete packet (plus any required table state) violating the property."""

    packet: bytes
    element_path: List[str] = field(default_factory=list)
    violating_element: str = ""
    violation_kind: str = ""
    detail: str = ""
    required_table_values: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, int] = field(default_factory=dict)
    confirmed_by_replay: Optional[bool] = None

    def __repr__(self) -> str:
        return (
            f"Counterexample(len={len(self.packet)}, element={self.violating_element!r}, "
            f"kind={self.violation_kind!r}, detail={self.detail!r}, "
            f"confirmed={self.confirmed_by_replay})"
        )

    def to_dict(self) -> dict:
        return {
            "packet": self.packet.hex(),
            "element_path": list(self.element_path),
            "violating_element": self.violating_element,
            "violation_kind": self.violation_kind,
            "detail": self.detail,
            "required_table_values": dict(self.required_table_values),
            "metadata": dict(self.metadata),
            "confirmed_by_replay": self.confirmed_by_replay,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Counterexample":
        return cls(
            packet=bytes.fromhex(payload["packet"]),
            element_path=list(payload.get("element_path", [])),
            violating_element=payload.get("violating_element", ""),
            violation_kind=payload.get("violation_kind", ""),
            detail=payload.get("detail", ""),
            required_table_values=dict(payload.get("required_table_values", {})),
            metadata=dict(payload.get("metadata", {})),
            confirmed_by_replay=payload.get("confirmed_by_replay"),
        )


@dataclass
class VerificationStatistics(StatisticsMixin):
    """Work performed during one verification run.

    ``solver_checks`` counts every feasibility/satisfiability question the
    run asked.  The incremental/scratch split reports which solving core
    answered them: ``incremental_solver_checks`` went through a persistent
    assumption-based context (encodings and learned clauses retained
    between questions), ``scratch_solver_checks`` rebuilt the query from
    nothing, and ``feasibility_memo_hits`` were answered from the
    interned-constraint-set memo without touching a solver at all.
    """

    elements_analyzed: int = 0
    segments_total: int = 0
    suspect_segments: int = 0
    composed_paths_checked: int = 0
    composed_paths_feasible: int = 0
    solver_checks: int = 0
    incremental_solver_checks: int = 0
    scratch_solver_checks: int = 0
    feasibility_memo_hits: int = 0
    #: Times the CDCL core actually searched during this run (slice-level;
    #: quick-check and query-cache answers excluded).  0 on a warm run
    #: backed by the persistent L3 query cache.
    sat_core_calls: int = 0
    #: Slice questions the query-optimization layer answered from its
    #: tiers (exact, unsat-core subset, SAT superset, model reuse, L3).
    qcache_hits: int = 0
    #: Slice sub-queries that reached a solving core at all.
    slices_solved: int = 0
    #: Step-1 path statistics: states that reached a terminal outcome plus
    #: the merge pass's work (pairs collapsed into ite-lifted states, ite
    #: terms introduced doing so, and candidate pairs rejected by policy).
    paths_explored: int = 0
    paths_merged: int = 0
    ites_introduced: int = 0
    merge_rejected: int = 0
    summary_cache_hits: int = 0
    elapsed_seconds: float = 0.0
    per_element_segments: Dict[str, int] = field(default_factory=dict)
    per_element_seconds: Dict[str, float] = field(default_factory=dict)
    budget_exceeded: bool = False

    def merge_element(self, name: str, segments: int, seconds: float) -> None:
        self.elements_analyzed += 1
        self.segments_total += segments
        self.per_element_segments[name] = segments
        self.per_element_seconds[name] = self.per_element_seconds.get(name, 0.0) + seconds

    def count_solver_checks(self, checks: int, incremental: bool, memo_hits: int = 0) -> None:
        """Attribute ``checks`` solver questions to the right solving core."""
        self.solver_checks += checks
        if incremental:
            self.incremental_solver_checks += checks
        else:
            self.scratch_solver_checks += checks
        self.feasibility_memo_hits += memo_hits


@dataclass
class VerificationResult:
    """The outcome of verifying one property on one pipeline."""

    property_name: str
    pipeline_name: str
    verdict: str
    input_lengths: Tuple[int, ...] = ()
    counterexamples: List[Counterexample] = field(default_factory=list)
    statistics: VerificationStatistics = field(default_factory=VerificationStatistics)
    notes: List[str] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        return self.verdict == Verdict.PROVED

    @property
    def violated(self) -> bool:
        return self.verdict == Verdict.VIOLATED

    def summary(self) -> str:
        lines = [
            f"property   : {self.property_name}",
            f"pipeline   : {self.pipeline_name}",
            f"verdict    : {self.verdict}",
            f"lengths    : {list(self.input_lengths)}",
            f"segments   : {self.statistics.segments_total} "
            f"({self.statistics.suspect_segments} suspect)",
            f"composed   : {self.statistics.composed_paths_checked} checked, "
            f"{self.statistics.composed_paths_feasible} feasible",
            f"solver     : {self.statistics.solver_checks} checks "
            f"({self.statistics.incremental_solver_checks} incremental / "
            f"{self.statistics.scratch_solver_checks} scratch, "
            f"{self.statistics.feasibility_memo_hits} memo hits)",
            f"sat core   : {self.statistics.sat_core_calls} calls "
            f"({self.statistics.qcache_hits} query-cache hits, "
            f"{self.statistics.slices_solved} slices solved)",
            f"paths      : {self.statistics.paths_explored} explored, "
            f"{self.statistics.paths_merged} merged "
            f"({self.statistics.ites_introduced} ites, "
            f"{self.statistics.merge_rejected} rejected)",
            f"time       : {self.statistics.elapsed_seconds:.2f}s",
        ]
        for counterexample in self.counterexamples[:5]:
            lines.append(f"counterexample: {counterexample!r}")
        for note in self.notes:
            lines.append(f"note       : {note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"VerificationResult({self.property_name!r}, {self.pipeline_name!r}, "
            f"{self.verdict}, {len(self.counterexamples)} counterexamples)"
        )

    def to_dict(self) -> dict:
        return {
            "property_name": self.property_name,
            "pipeline_name": self.pipeline_name,
            "verdict": self.verdict,
            "input_lengths": list(self.input_lengths),
            "counterexamples": [ce.to_dict() for ce in self.counterexamples],
            "statistics": self.statistics.to_dict(),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VerificationResult":
        return cls(
            property_name=payload["property_name"],
            pipeline_name=payload["pipeline_name"],
            verdict=payload["verdict"],
            input_lengths=tuple(payload.get("input_lengths", ())),
            counterexamples=[
                Counterexample.from_dict(ce) for ce in payload.get("counterexamples", [])
            ],
            statistics=VerificationStatistics.from_dict(payload.get("statistics", {})),
            notes=list(payload.get("notes", [])),
        )


@dataclass
class InstructionBoundResult:
    """Result of the bounded-instructions analysis."""

    pipeline_name: str
    input_lengths: Tuple[int, ...]
    bound: int
    witness_packet: Optional[bytes] = None
    witness_instructions: Optional[int] = None
    witness_confirmed: Optional[bool] = None
    per_path_bounds: List[Tuple[str, int]] = field(default_factory=list)
    statistics: VerificationStatistics = field(default_factory=VerificationStatistics)

    def summary(self) -> str:
        lines = [
            f"pipeline            : {self.pipeline_name}",
            f"instruction bound   : {self.bound}",
            f"witness instructions: {self.witness_instructions}",
            f"witness confirmed   : {self.witness_confirmed}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "pipeline_name": self.pipeline_name,
            "input_lengths": list(self.input_lengths),
            "bound": self.bound,
            "witness_packet": self.witness_packet.hex() if self.witness_packet else None,
            "witness_instructions": self.witness_instructions,
            "witness_confirmed": self.witness_confirmed,
            "per_path_bounds": [list(pair) for pair in self.per_path_bounds],
            "statistics": self.statistics.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InstructionBoundResult":
        witness = payload.get("witness_packet")
        return cls(
            pipeline_name=payload["pipeline_name"],
            input_lengths=tuple(payload.get("input_lengths", ())),
            bound=payload["bound"],
            witness_packet=bytes.fromhex(witness) if witness else None,
            witness_instructions=payload.get("witness_instructions"),
            witness_confirmed=payload.get("witness_confirmed"),
            per_path_bounds=[
                (name, bound) for name, bound in payload.get("per_path_bounds", [])
            ],
            statistics=VerificationStatistics.from_dict(payload.get("statistics", {})),
        )
