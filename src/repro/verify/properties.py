"""Target properties the verifier can prove or refute.

The paper names three families (§1): crash freedom, bounded latency
(bounded instructions per packet in our instruction-count model), and
higher-level reachability properties such as "a well-formed packet with
destination X is never dropped".  Each property knows how to classify an
element's segments as *suspect* (Step 1) — the segments that could
violate the property and therefore need Step-2 composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Set

from .. import smt
from ..smt import Term
from ..symbex.segment import SegmentSummary


class Property:
    """Base class for verifiable properties."""

    name = "property"

    def is_suspect(self, element_name: str, segment: SegmentSummary) -> bool:
        """True if this segment, in isolation, might violate the property."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass
class CrashFreedom(Property):
    """No input packet can make the pipeline crash.

    A segment is suspect exactly when it crashes (failed assertion,
    out-of-bounds access, division by zero, loop-bound overrun).
    """

    name: str = "crash-freedom"

    def is_suspect(self, element_name: str, segment: SegmentSummary) -> bool:
        return segment.crashes

    def describe(self) -> str:
        return "no packet can cause the pipeline to crash"


@dataclass
class BoundedInstructions(Property):
    """Every packet finishes within ``bound`` executed IR instructions.

    Suspect segments are those whose own instruction count already exceeds
    the bound; the pipeline-level check additionally sums instruction
    counts along composed paths (see
    :meth:`repro.verify.pipeline_verifier.PipelineVerifier.instruction_bound`).
    """

    bound: int = 10_000
    name: str = "bounded-instructions"

    def is_suspect(self, element_name: str, segment: SegmentSummary) -> bool:
        return segment.instructions > self.bound

    def describe(self) -> str:
        return f"every packet executes at most {self.bound} instructions"


def all_packets(packet_bytes: Sequence[Term]) -> Term:
    """The default reachability predicate: every packet is of interest.

    A named module-level function (not a lambda) so default-constructed
    properties remain picklable for the fleet orchestrator's workers.
    """
    return smt.TRUE


@dataclass
class Reachability(Property):
    """Packets satisfying a predicate are never dropped (except by exempt elements).

    ``input_predicate`` receives the list of symbolic input-packet byte
    terms of the *first* element and returns a boolean term describing the
    packets of interest (for example "destination address is X").
    Elements listed in ``exempt_elements`` are allowed to drop such
    packets (e.g. CheckIPHeader dropping malformed packets — the paper's
    "unless it is malformed" qualifier).
    """

    input_predicate: Callable[[Sequence[Term]], Term] = all_packets
    exempt_elements: Set[str] = field(default_factory=set)
    description: str = "packets of interest are always delivered"
    name: str = "reachability"

    def is_suspect(self, element_name: str, segment: SegmentSummary) -> bool:
        if element_name in self.exempt_elements:
            return False
        return segment.drops

    def describe(self) -> str:
        return self.description


@dataclass(frozen=True)
class DestinationPredicate:
    """Callable predicate "destination address equals X" (a class, not a
    closure, so reachability properties survive pickling into the fleet
    orchestrator's worker processes)."""

    destination_ip: int
    ip_header_offset: int = 0

    def __call__(self, packet_bytes: Sequence[Term]) -> Term:
        offset = self.ip_header_offset + 16  # destination address field
        if offset + 4 > len(packet_bytes):
            # The packet cannot even hold the field: no packet of interest.
            return smt.FALSE
        address = smt.Concat(*packet_bytes[offset : offset + 4])
        return smt.Eq(address, smt.BitVecVal(self.destination_ip & 0xFFFFFFFF, 32))


def destination_reachability(
    destination_ip: int,
    ip_header_offset: int = 0,
    exempt_elements: Optional[Set[str]] = None,
) -> Reachability:
    """Build the paper's example property: packets to ``destination_ip`` are never dropped.

    ``ip_header_offset`` is the byte offset of the IPv4 header within the
    packets entering the *first* element of the pipeline (0 when the
    pipeline starts after Ethernet decapsulation, 14 when it starts with
    the Ethernet header in place).
    """
    return Reachability(
        input_predicate=DestinationPredicate(destination_ip, ip_header_offset),
        exempt_elements=exempt_elements or set(),
        description=(
            f"well-formed packets with destination {destination_ip & 0xFFFFFFFF:#010x} "
            "are never dropped"
        ),
    )
