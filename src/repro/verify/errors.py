"""Exception types for the verifier."""

from __future__ import annotations


class VerificationError(Exception):
    """Base class for verifier errors."""


class CompositionError(VerificationError):
    """Raised when segment summaries cannot be composed (length/port mismatch)."""


class VerificationBudgetExceeded(VerificationError):
    """Raised when a verification run exceeds its path or time budget.

    The monolithic baseline reports this as its normal failure mode — the
    paper's "did not complete within 12 hours".
    """
