"""``repro.verify`` — the paper's contribution: decomposed dataplane verification.

Typical usage::

    from repro.verify import PipelineVerifier, CrashFreedom

    verifier = PipelineVerifier(pipeline)
    result = verifier.verify(CrashFreedom(), input_lengths=[64])
    assert result.proved

    bound = verifier.instruction_bound(input_lengths=[64])
    print(bound.bound, bound.witness_packet)
"""

from .cache import CacheStatistics, SummaryCache
from .composition import ComposedPrefix, ComposedViolation, CompositionEngine
from .errors import CompositionError, VerificationBudgetExceeded, VerificationError
from .monolithic import MonolithicVerifier
from .pipeline_verifier import PipelineVerifier, verify_crash_freedom
from .properties import (
    BoundedInstructions,
    CrashFreedom,
    DestinationPredicate,
    Property,
    Reachability,
    all_packets,
    destination_reachability,
)
from .report import (
    Counterexample,
    InstructionBoundResult,
    VerificationResult,
    VerificationStatistics,
    Verdict,
)

__all__ = [
    "BoundedInstructions",
    "CacheStatistics",
    "ComposedPrefix",
    "ComposedViolation",
    "CompositionEngine",
    "CompositionError",
    "Counterexample",
    "CrashFreedom",
    "DestinationPredicate",
    "InstructionBoundResult",
    "MonolithicVerifier",
    "PipelineVerifier",
    "Property",
    "Reachability",
    "SummaryCache",
    "VerificationBudgetExceeded",
    "VerificationError",
    "VerificationResult",
    "VerificationStatistics",
    "Verdict",
    "all_packets",
    "destination_reachability",
    "verify_crash_freedom",
]
