"""The pipeline verifier: the paper's two-step decomposed verification.

Step 1 (:class:`repro.verify.cache.SummaryCache` + property classification)
symbolically executes each element *once per configuration and input
length* and tags suspect segments.  Step 2
(:class:`repro.verify.composition.CompositionEngine`) composes summaries
along pipeline routes ending in a suspect and checks feasibility.  If no
composed suspect path is feasible, the property is proved; otherwise the
solver model is turned into a concrete counterexample packet, which is
replayed on the concrete dataplane to confirm it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dataplane.driver import PipelineDriver
from ..dataplane.element import Element
from ..dataplane.pipeline import Pipeline
from ..ir.interpreter import Outcome
from ..obs.trace import clock, tracer
from ..symbex.engine import SymbexOptions
from ..symbex.errors import PathExplosionError
from ..symbex.segment import ElementSummary, SegmentSummary
from .cache import SummaryCache
from .composition import ComposedViolation, CompositionEngine
from .errors import VerificationError
from .properties import Property, Reachability
from .report import (
    Counterexample,
    InstructionBoundResult,
    VerificationResult,
    VerificationStatistics,
    Verdict,
)


class PipelineVerifier:
    """Verifies properties of a pipeline using pipeline decomposition."""

    def __init__(
        self,
        pipeline: Pipeline,
        entry: Optional[Element] = None,
        options: Optional[SymbexOptions] = None,
        cache: Optional[SummaryCache] = None,
        store: Optional[object] = None,
        workers: int = 1,
    ) -> None:
        """``store`` backs the summary cache with an on-disk L2 tier
        (:class:`repro.orchestrator.store.SummaryStore`); ``workers`` > 1
        shards Step-1 summarization of each BFS frontier across processes.
        """
        pipeline.validate()
        self.pipeline = pipeline
        self.options = options or SymbexOptions()
        if cache is not None and store is not None:
            raise VerificationError(
                "pass either `cache` or `store`: attach the store to the cache "
                "(SummaryCache(options, store=...)) when you need both"
            )
        self.cache = cache if cache is not None else SummaryCache(self.options, store=store)
        self.workers = workers
        self.composer = CompositionEngine(self.cache, incremental=self.options.incremental)
        if entry is None:
            entries = pipeline.entry_elements()
            if len(entries) != 1:
                raise VerificationError(
                    f"pipeline has {len(entries)} entry elements; pass `entry` explicitly"
                )
            entry = entries[0]
        self.entry = entry

    # -- Step 1: per-element summaries at the lengths each element actually sees -----------------

    def element_summaries(
        self, input_length: int
    ) -> Dict[Tuple[str, int], Tuple[Element, ElementSummary]]:
        """Summarise every reachable element at every packet length it can receive.

        With ``workers`` > 1 each BFS frontier (the branches of the
        pipeline graph discovered so far) is summarized in parallel worker
        processes; results are merged in deterministic frontier order.
        """
        summaries: Dict[Tuple[str, int], Tuple[Element, ElementSummary]] = {}
        worklist: List[Tuple[Element, int]] = [(self.entry, input_length)]
        while worklist:
            frontier: List[Tuple[Element, int]] = []
            for element, length in worklist:
                if (element.name, length) not in summaries and not any(
                    element is other and length == other_length
                    for other, other_length in frontier
                ):
                    frontier.append((element, length))
            worklist = []
            if not frontier:
                break
            for (element, length), summary in zip(
                frontier, self._summarize_frontier(frontier)
            ):
                summaries[(element.name, length)] = (element, summary)
                for segment in summary.emit_segments:
                    downstream = self.pipeline.downstream(element, segment.port or 0)
                    if downstream is not None:
                        key = (downstream[0].name, len(segment.output_bytes))
                        if key not in summaries:
                            worklist.append((downstream[0], len(segment.output_bytes)))
        return summaries

    def _summarize_frontier(
        self, frontier: List[Tuple[Element, int]]
    ) -> List[ElementSummary]:
        """Summarize one BFS frontier, through the cache (serial) or workers (parallel)."""
        if self.workers <= 1 or len(frontier) <= 1:
            return [self.cache.summarize(element, length) for element, length in frontier]
        # Import here: the orchestrator layer sits above verify and imports it.
        from ..orchestrator.workers import COMPUTED, EXPLODED, job_digest, summarize_jobs

        pending = [
            (element, length)
            for element, length in frontier
            if not self.cache.contains(element, length)
        ]
        shipped: Dict[Tuple[int, int], ElementSummary] = {}
        if pending:
            # Dedupe by summary digest: identically configured elements in
            # one wave share a single job, as they would share an L1 hit
            # on the serial path.
            jobs: List[Tuple[Element, int]] = []
            job_index: Dict[str, int] = {}
            digests = []
            for element, length in pending:
                digest = job_digest(element, length, self.options)
                digests.append(digest)
                if digest not in job_index:
                    job_index[digest] = len(jobs)
                    jobs.append((element, length))
            results = summarize_jobs(
                jobs, self.options, workers=self.workers, store=self.cache.store
            )
            for (element, length), (status, summary, detail) in zip(jobs, results):
                if status == EXPLODED:
                    # Same surface as a serial run: verify() catches this
                    # and reports the verdict as unknown.
                    raise PathExplosionError(detail)
                if status == COMPUTED:
                    self.cache.statistics.misses += 1
                else:
                    self.cache.statistics.l2_hits += 1
            for (element, length), digest in zip(pending, digests):
                summary = results[job_index[digest]][1]
                self.cache.seed(element, length, summary)
                shipped[(id(element), length)] = summary
        # Worker-shipped summaries are returned directly (their miss/L2 hit
        # is already counted above); only genuinely cached entries go back
        # through the cache and register an L1 hit, as in a serial run.
        return [
            shipped.get((id(element), length)) or self.cache.summarize(element, length)
            for element, length in frontier
        ]

    # -- main verification entry point --------------------------------------------------------------

    def _composer_work(self) -> Tuple[int, int, int]:
        """Snapshot of the composition engine's (sat-core calls, query-cache
        hits, slices solved) — cumulative, so callers take deltas."""
        if self.composer.checker is not None:
            stats = self.composer.checker.statistics
            return stats.sat_core_calls, stats.qcache_hits, stats.slices_solved
        stats = self.composer.solver.statistics
        return stats.sat_core_calls, stats.qcache_hits, 0

    def verify(
        self,
        target_property: Property,
        input_lengths: Sequence[int] = (64,),
        max_counterexamples: int = 3,
        confirm_by_replay: bool = True,
    ) -> VerificationResult:
        """Prove or refute ``target_property`` for every packet of the given lengths."""
        started = clock()
        statistics = VerificationStatistics()
        counterexamples: List[Counterexample] = []
        verdict = Verdict.PROVED
        notes: List[str] = []

        extra_predicate = None
        if isinstance(target_property, Reachability):
            extra_predicate = target_property.input_predicate

        # Summaries are cached and revisited — once per input length and per
        # element position — so statistics for a given summary object must be
        # merged exactly once, or the reported work inflates with every revisit.
        counted_summaries: Set[int] = set()
        core_before, qcache_before, slices_before = self._composer_work()

        try:
            for input_length in input_lengths:
                summaries = self.element_summaries(input_length)

                suspects: List[Tuple[Element, int, SegmentSummary]] = []
                for (name, length), (element, summary) in summaries.items():
                    if id(summary) not in counted_summaries:
                        counted_summaries.add(id(summary))
                        statistics.merge_element(
                            f"{name}@{length}", len(summary.segments), summary.elapsed_seconds
                        )
                        statistics.count_solver_checks(
                            summary.solver_checks,
                            incremental=summary.incremental,
                            memo_hits=summary.feasibility_memo_hits,
                        )
                        # Structural facts of the summary (serialized, so
                        # store-loaded summaries carry them too) — counted
                        # per use like solver_checks, so serial and
                        # parallel fleet runs account identically.
                        statistics.paths_explored += summary.paths_explored
                        statistics.paths_merged += summary.paths_merged
                        statistics.ites_introduced += summary.ites_introduced
                        statistics.merge_rejected += summary.merge_rejected
                        if not summary.work_counters_reported:
                            # Once per process, not per property/pipeline:
                            # the CDCL searches happened once, and fleet
                            # reports sum these per-result counters.
                            summary.work_counters_reported = True
                            statistics.sat_core_calls += summary.sat_core_calls
                            statistics.qcache_hits += summary.qcache_hits
                    for segment in summary.segments:
                        if target_property.is_suspect(element.name, segment):
                            suspects.append((element, length, segment))
                statistics.suspect_segments += len(suspects)

                if not suspects:
                    # Step 1 alone proves the property for this length.
                    continue

                # Step 2: compose routes that end in a suspect and check feasibility.
                suspect_elements: List[Element] = []
                seen: Set[str] = set()
                for element, _length, _segment in suspects:
                    if element.name not in seen:
                        seen.add(element.name)
                        suspect_elements.append(element)

                for element in suspect_elements:
                    if len(counterexamples) >= max_counterexamples:
                        break
                    for violation in self.composer.find_violations(
                        self.pipeline,
                        self.entry,
                        element,
                        suspect_filter=target_property.is_suspect,
                        input_length=input_length,
                        extra_predicate=extra_predicate,
                        max_violations=max_counterexamples - len(counterexamples),
                    ):
                        counterexamples.append(
                            self._counterexample(violation, confirm_by_replay)
                        )
                if counterexamples:
                    verdict = Verdict.VIOLATED
        except PathExplosionError as exc:
            verdict = Verdict.UNKNOWN
            statistics.budget_exceeded = True
            notes.append(f"budget exceeded: {exc}")

        statistics.composed_paths_checked = self.composer.paths_checked
        statistics.composed_paths_feasible = self.composer.paths_feasible
        statistics.count_solver_checks(
            self.composer.solver_checks,
            incremental=self.composer.checker is not None,
            memo_hits=self.composer.checker.memo_hits if self.composer.checker else 0,
        )
        core_after, qcache_after, slices_after = self._composer_work()
        statistics.sat_core_calls += core_after - core_before
        statistics.qcache_hits += qcache_after - qcache_before
        statistics.slices_solved += slices_after - slices_before
        statistics.summary_cache_hits = self.cache.statistics.hits
        statistics.elapsed_seconds = clock() - started
        trace = tracer()
        if trace.enabled:
            trace.record_span(
                "verify.property",
                "verify",
                started,
                started + statistics.elapsed_seconds,
                pipeline=self.pipeline.name,
                property=target_property.describe(),
                verdict=verdict,
                solver_checks=statistics.solver_checks,
                sat_core_calls=statistics.sat_core_calls,
            )
        return VerificationResult(
            property_name=target_property.describe(),
            pipeline_name=self.pipeline.name,
            verdict=verdict,
            input_lengths=tuple(input_lengths),
            counterexamples=counterexamples,
            statistics=statistics,
            notes=notes,
        )

    # -- bounded instructions ---------------------------------------------------------------------------

    def instruction_bound(
        self,
        input_lengths: Sequence[int] = (64,),
        find_witness: bool = True,
        confirm_by_replay: bool = True,
    ) -> InstructionBoundResult:
        """Compute the maximum number of IR instructions any packet can trigger.

        The bound is the maximum, over all pipeline paths, of the sum of the
        per-segment instruction counts — computed from the Step-1 summaries
        without re-executing anything.  When ``find_witness`` is set, the
        arg-max chain of segments is composed and solved to produce the
        packet that attains the bound (the paper reports both the ~3600
        instruction bound and the packet that yields it).
        """
        started = clock()
        statistics = VerificationStatistics()
        core_before, qcache_before, slices_before = self._composer_work()
        best_total = 0
        best_chain: Optional[List[Tuple[Element, SegmentSummary]]] = None
        best_length = 0

        for input_length in input_lengths:
            total, chain = self._max_instructions(self.entry, input_length, {})
            if total > best_total:
                best_total = total
                best_chain = chain
                best_length = input_length

        witness_packet: Optional[bytes] = None
        witness_instructions: Optional[int] = None
        witness_confirmed: Optional[bool] = None
        if find_witness and best_chain:
            witness_packet, witness_instructions = self._find_witness(best_chain, best_length)
            if witness_packet is not None and confirm_by_replay:
                replayed = self._replay(witness_packet)
                witness_confirmed = (
                    replayed is not None and replayed.total_instructions == witness_instructions
                )

        statistics.composed_paths_checked = self.composer.paths_checked
        statistics.count_solver_checks(
            self.composer.solver_checks,
            incremental=self.composer.checker is not None,
            memo_hits=self.composer.checker.memo_hits if self.composer.checker else 0,
        )
        core_after, qcache_after, slices_after = self._composer_work()
        statistics.sat_core_calls += core_after - core_before
        statistics.qcache_hits += qcache_after - qcache_before
        statistics.slices_solved += slices_after - slices_before
        statistics.summary_cache_hits = self.cache.statistics.hits
        statistics.elapsed_seconds = clock() - started
        trace = tracer()
        if trace.enabled:
            trace.record_span(
                "verify.instruction_bound",
                "verify",
                started,
                started + statistics.elapsed_seconds,
                pipeline=self.pipeline.name,
                bound=best_total,
            )
        return InstructionBoundResult(
            pipeline_name=self.pipeline.name,
            input_lengths=tuple(input_lengths),
            bound=best_total,
            witness_packet=witness_packet,
            witness_instructions=witness_instructions,
            witness_confirmed=witness_confirmed,
            statistics=statistics,
        )

    def _max_instructions(
        self,
        element: Element,
        length: int,
        memo: Dict[Tuple[str, int], Tuple[int, List[Tuple[Element, SegmentSummary]]]],
    ) -> Tuple[int, List[Tuple[Element, SegmentSummary]]]:
        key = (element.name, length)
        if key in memo:
            return memo[key]
        summary = self.cache.summarize(element, length)
        best_total = 0
        best_chain: List[Tuple[Element, SegmentSummary]] = []
        for segment in summary.segments:
            total = segment.instructions
            chain = [(element, segment)]
            if segment.emits:
                downstream = self.pipeline.downstream(element, segment.port or 0)
                if downstream is not None:
                    sub_total, sub_chain = self._max_instructions(
                        downstream[0], len(segment.output_bytes), memo
                    )
                    total += sub_total
                    chain = chain + sub_chain
            if total > best_total:
                best_total = total
                best_chain = chain
        memo[key] = (best_total, best_chain)
        return best_total, best_chain

    def _find_witness(
        self, chain: List[Tuple[Element, SegmentSummary]], input_length: int
    ) -> Tuple[Optional[bytes], Optional[int]]:
        """Compose the arg-max chain and solve it for a concrete witness packet."""
        prefix = self.composer.initial_prefix(input_length)
        for element, segment in chain:
            prefix = self.composer.extend(prefix, element.name, segment)
        feasible, model = self.composer.is_feasible(prefix)
        if not feasible or model is None:
            return None, None
        data = bytearray(input_length)
        for index in range(input_length):
            data[index] = int(model.get(f"in_b{index}", 0)) & 0xFF
        return bytes(data), prefix.instructions

    # -- counterexample handling ----------------------------------------------------------------------------

    def _counterexample(
        self, violation: ComposedViolation, confirm_by_replay: bool
    ) -> Counterexample:
        packet = violation.input_packet()
        segment = violation.segment
        detail = segment.crash_message or segment.drop_reason
        counterexample = Counterexample(
            packet=packet,
            element_path=[name for name, _segment in violation.prefix.stages],
            violating_element=violation.element_name,
            violation_kind=segment.outcome,
            detail=detail,
            required_table_values=violation.required_table_values(),
        )
        if confirm_by_replay and not counterexample.required_table_values:
            trace = self._replay(packet)
            if trace is None:
                counterexample.confirmed_by_replay = None
            else:
                if segment.outcome == Outcome.CRASH:
                    counterexample.confirmed_by_replay = trace.crashed
                elif segment.outcome == Outcome.DROP:
                    counterexample.confirmed_by_replay = trace.final_outcome == Outcome.DROP
                else:
                    counterexample.confirmed_by_replay = trace.delivered
        return counterexample

    def _replay(self, packet: bytes):
        """Run a packet through a fresh copy of the pipeline's concrete dataplane."""
        try:
            driver = PipelineDriver(self.pipeline)
            return driver.inject(packet, entry=self.entry)
        except Exception:  # pragma: no cover - defensive: replay must never mask results
            return None


def verify_crash_freedom(
    pipeline: Pipeline,
    input_lengths: Sequence[int] = (64,),
    entry: Optional[Element] = None,
    options: Optional[SymbexOptions] = None,
) -> VerificationResult:
    """Convenience wrapper: prove crash freedom of a pipeline."""
    from .properties import CrashFreedom

    verifier = PipelineVerifier(pipeline, entry=entry, options=options)
    return verifier.verify(CrashFreedom(), input_lengths=input_lengths)
