"""Step 2: compose segment summaries along pipeline paths and check feasibility.

A pipeline path is a concatenation of segments (§3 "Pipeline
Decomposition").  The composition engine rewrites each downstream
segment's constraint over the upstream segment's symbolic output
("constraint stitching"), conjoins the per-stage constraints, and asks the
solver whether the composed path is feasible — without ever re-executing
any element.  Infeasible prefixes are pruned as early as possible, which
is what keeps Step 2 cheap when Step 1 produced few suspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .. import smt
from ..smt import Term
from ..dataplane.element import Element
from ..dataplane.pipeline import Pipeline
from ..symbex.segment import SegmentSummary
from ..symbex.state import INPUT_BYTE_PREFIX, INPUT_META_PREFIX
from .cache import SummaryCache
from .errors import CompositionError


@dataclass
class ComposedPrefix:
    """A partially composed pipeline path.

    ``current_bytes`` / ``current_metadata`` are expressed over the
    *original* input variables of the first element (plus freshened havoc
    variables), so the final constraint directly describes input packets.
    """

    current_bytes: List[Term]
    current_metadata: Dict[str, Term] = field(default_factory=dict)
    constraints: List[Term] = field(default_factory=list)
    stages: List[Tuple[str, SegmentSummary]] = field(default_factory=list)
    instructions: int = 0

    def constraint(self) -> Term:
        return smt.conjoin(self.constraints) if self.constraints else smt.TRUE

    def copy(self) -> "ComposedPrefix":
        return ComposedPrefix(
            current_bytes=list(self.current_bytes),
            current_metadata=dict(self.current_metadata),
            constraints=list(self.constraints),
            stages=list(self.stages),
            instructions=self.instructions,
        )


@dataclass
class ComposedViolation:
    """A feasible composed path ending in a property-violating segment."""

    prefix: ComposedPrefix
    element_name: str
    segment: SegmentSummary
    model: smt.Model
    input_length: int

    def input_packet(self) -> bytes:
        """Extract the concrete counterexample packet from the model."""
        data = bytearray(self.input_length)
        for index in range(self.input_length):
            data[index] = int(self.model.get(f"{INPUT_BYTE_PREFIX}{index}", 0)) & 0xFF
        return bytes(data)

    def required_table_values(self) -> Dict[str, int]:
        """Havoc'd table reads the violation relies on (name -> value)."""
        values: Dict[str, int] = {}
        for name in self.model:
            if name.startswith("havoc"):
                values[name] = int(self.model[name])
        return values


class CompositionEngine:
    """Composes Step-1 summaries along pipeline routes and decides feasibility.

    Routes are walked DFS-style, and in incremental mode (the default,
    inherited from the cache's :class:`SymbexOptions`) the engine keeps one
    persistent assumption-based solver context aligned to the composed
    prefix: stage constraints shared by many routes are simplified,
    bit-blasted and propagated once, and each feasibility question is a
    single ``check_assumptions`` call on the retained CNF.
    """

    def __init__(
        self,
        cache: SummaryCache,
        solver: Optional[smt.Solver] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        self.cache = cache
        self.solver = solver if solver is not None else smt.Solver(
            sat_backend=cache.options.sat_backend
        )
        if incremental is None:
            incremental = cache.options.incremental and solver is None
        # The query cache is shared with the summary cache's engines, so
        # Step-2 composition reuses slice verdicts Step 1 already paid for.
        self.checker: Optional[smt.AssumptionChecker] = (
            smt.AssumptionChecker(
                max_conflicts=cache.options.solver_max_conflicts,
                query_cache=cache.query_cache,
                sat_backend=cache.options.sat_backend,
            )
            if incremental
            else None
        )
        self.paths_checked = 0
        self.paths_feasible = 0
        self.solver_checks = 0

    # -- stitching ----------------------------------------------------------------------------

    def initial_prefix(self, input_length: int) -> ComposedPrefix:
        """The composition starting point: the fully symbolic input packet."""
        return ComposedPrefix(
            current_bytes=[smt.BitVec(f"{INPUT_BYTE_PREFIX}{i}", 8) for i in range(input_length)]
        )

    def extend(
        self, prefix: ComposedPrefix, element_name: str, segment: SegmentSummary
    ) -> ComposedPrefix:
        """Append one segment to a composed prefix (constraint stitching)."""
        if segment.emits and len(segment.output_bytes) == 0 and segment.port is None:
            raise CompositionError(f"segment {segment!r} has no output to stitch")
        stage_index = len(prefix.stages)
        substitution = self._stage_substitution(prefix, segment, stage_index)

        extended = prefix.copy()
        stage_constraint = smt.substitute(segment.constraint, substitution)
        extended.constraints.append(smt.simplify(stage_constraint))
        extended.stages.append((element_name, segment))
        extended.instructions += segment.instructions

        if segment.emits:
            extended.current_bytes = [
                smt.simplify(smt.substitute(term, substitution)) for term in segment.output_bytes
            ]
            for key, value in segment.output_metadata.items():
                extended.current_metadata[key] = smt.simplify(
                    smt.substitute(value, substitution)
                )
        return extended

    def _stage_substitution(
        self, prefix: ComposedPrefix, segment: SegmentSummary, stage_index: int
    ) -> Dict[str, Term]:
        """Build the variable substitution that rewires a segment onto the prefix."""
        substitution: Dict[str, Term] = {}
        # Input packet bytes of the segment -> current symbolic bytes.
        for index, term in enumerate(prefix.current_bytes):
            substitution[f"{INPUT_BYTE_PREFIX}{index}"] = term
        # Metadata reads -> current metadata (0 when never set upstream).
        for name in segment.constraint.free_variables():
            if name.startswith(INPUT_META_PREFIX):
                key = name[len(INPUT_META_PREFIX):]
                substitution[name] = prefix.current_metadata.get(key, smt.BitVecVal(0, 64))
        for term in list(segment.output_bytes) + list(segment.output_metadata.values()):
            for name in term.free_variables():
                if name.startswith(INPUT_META_PREFIX) and name not in substitution:
                    key = name[len(INPUT_META_PREFIX):]
                    substitution[name] = prefix.current_metadata.get(key, smt.BitVecVal(0, 64))
        # Havoc variables -> freshened per stage so repeated elements do not collide.
        for havoc in segment.havoc_reads:
            for variable in (havoc.value_var, havoc.found_var):
                substitution[variable] = smt.BitVec(f"{variable}__stage{stage_index}", 64)
        return substitution

    # -- feasibility ---------------------------------------------------------------------------

    def is_feasible(self, prefix: ComposedPrefix, *extra: Term) -> Tuple[bool, Optional[smt.Model]]:
        """Check the composed constraint (plus optional extra predicates).

        Incremental mode aligns the persistent context to the prefix's
        constraint list — composed routes sharing an upstream prefix keep
        its scopes (and learned clauses) between checks.
        """
        self.solver_checks += 1
        if self.checker is not None:
            status, model = self.checker.check(prefix.constraints, extra, need_model=True)
            return status == smt.CheckResult.SAT, model
        goal = smt.conjoin(list(prefix.constraints) + [smt.simplify(t) for t in extra])
        status = self.solver.check(goal)
        if status == smt.CheckResult.SAT:
            return True, self.solver.model()
        return False, None

    # -- route enumeration over the pipeline graph ------------------------------------------------

    def routes_to(
        self, pipeline: Pipeline, entry: Element, target: Element
    ) -> List[List[Tuple[Element, int]]]:
        """All routes (element, output port taken) from ``entry`` up to (excluding) ``target``."""
        routes: List[List[Tuple[Element, int]]] = []

        def walk(element: Element, trail: List[Tuple[Element, int]]) -> None:
            if element is target:
                routes.append(list(trail))
                return
            for port in range(element.num_output_ports):
                downstream = pipeline.downstream(element, port)
                if downstream is None:
                    continue
                walk(downstream[0], trail + [(element, port)])

        walk(entry, [])
        return routes

    # -- suspect-path exploration -------------------------------------------------------------------

    def find_violations(
        self,
        pipeline: Pipeline,
        entry: Element,
        target: Element,
        suspect_filter,
        input_length: int,
        extra_predicate=None,
        max_violations: int = 1,
    ) -> Iterator[ComposedViolation]:
        """Yield feasible composed paths that reach ``target`` and end in a suspect segment.

        ``suspect_filter`` is a callable ``(element_name, segment) -> bool``
        selecting which of the target's segments are property violations
        (Step 1's classification).  The target element is re-summarised at
        the packet length the composed prefix actually delivers, so
        length-changing upstream elements (encap/decap) are handled
        correctly.  ``extra_predicate`` (if given) maps the list of input
        byte terms to an additional boolean constraint — used by the
        reachability property to restrict attention to packets of interest.
        """
        found = 0
        for route in self.routes_to(pipeline, entry, target):
            if found >= max_violations:
                return
            initial = self.initial_prefix(input_length)
            extra: List[Term] = []
            if extra_predicate is not None:
                extra.append(extra_predicate(initial.current_bytes))
            for violation in self._explore_route(
                route, 0, initial, target, suspect_filter, extra, input_length
            ):
                yield violation
                found += 1
                if found >= max_violations:
                    return

    def _explore_route(
        self,
        route: List[Tuple[Element, int]],
        position: int,
        prefix: ComposedPrefix,
        target: Element,
        suspect_filter,
        extra: List[Term],
        input_length: int,
    ) -> Iterator[ComposedViolation]:
        if position == len(route):
            # All upstream stages chosen; try each suspect segment of the target
            # at the packet length this prefix delivers.
            summary = self.cache.summarize(target, len(prefix.current_bytes))
            for segment in summary.segments:
                if not suspect_filter(target.name, segment):
                    continue
                candidate = self.extend(prefix, target.name, segment)
                self.paths_checked += 1
                feasible, model = self.is_feasible(candidate, *extra)
                if feasible and model is not None:
                    self.paths_feasible += 1
                    yield ComposedViolation(
                        prefix=candidate,
                        element_name=target.name,
                        segment=segment,
                        model=model,
                        input_length=input_length,
                    )
            return

        element, port = route[position]
        summary = self.cache.summarize(element, len(prefix.current_bytes))
        for segment in summary.emit_segments_for_port(port):
            candidate = self.extend(prefix, element.name, segment)
            self.paths_checked += 1
            feasible, _model = self.is_feasible(candidate)
            if not feasible:
                continue
            yield from self._explore_route(
                route, position + 1, candidate, target, suspect_filter, extra, input_length
            )
