"""Rewriting simplifier for SMT terms.

Bottom-up, cache-assisted rewriting: constant folding plus a catalogue of
algebraic identities chosen for the term shapes the symbolic executor
produces (packet-field extracts, additions of small constants, chained
comparisons).  Simplification is semantics-preserving; the property-based
tests check every rule against concrete evaluation.
"""

from __future__ import annotations

from .evaluate import evaluate
from .terms import (
    FALSE,
    TRUE,
    Op,
    Term,
    intern_term,
    mk_and,
    mk_bv_const,
    mk_cmp,
    mk_concat,
    mk_eq,
    mk_extract,
    mk_not,
    mk_or,
    mk_term,
)


def simplify(term: Term) -> Term:
    """Return a simplified term equivalent to ``term``.

    Results are memoized on the (hash-consed) term itself, so a shared
    subterm — and terms re-simplified across solver queries — are rewritten
    once per process rather than once per call.
    """

    def walk(node: Term) -> Term:
        hit = node._simplified
        if hit is not None:
            return hit
        if not node.args:
            result = intern_term(node)
        else:
            new_args = tuple(walk(arg) for arg in node.args)
            if node._interned and all(a is b for a, b in zip(new_args, node.args)):
                rebuilt = node
            else:
                rebuilt = mk_term(
                    node.op,
                    new_args,
                    node.sort,
                    value=node.value,
                    name=node.name,
                    params=node.params,
                )
            result = _rewrite(rebuilt)
        node._simplified = result
        result._simplified = result
        return result

    return walk(term)


def is_literal_true(term: Term) -> bool:
    """True if the term simplifies to the constant ``true``."""
    return simplify(term).is_true()


def is_literal_false(term: Term) -> bool:
    """True if the term simplifies to the constant ``false``."""
    return simplify(term).is_false()


def _rewrite(node: Term) -> Term:
    # Constant folding: every child is a constant.
    if node.args and all(arg.is_const() for arg in node.args):
        value = evaluate(node, {})
        if node.is_bool():
            return TRUE if value else FALSE
        return mk_bv_const(int(value), node.width)

    handler = _RULES.get(node.op)
    if handler is None:
        return node
    return handler(node)


# -- boolean rules -------------------------------------------------------------------


def _rw_not(node: Term) -> Term:
    (arg,) = node.args
    if arg.is_true():
        return FALSE
    if arg.is_false():
        return TRUE
    if arg.op == Op.NOT:
        return arg.args[0]
    # Push negation into comparisons: not(a < b)  ->  b <= a.
    if arg.op == Op.ULT:
        return mk_cmp(Op.ULE, arg.args[1], arg.args[0])
    if arg.op == Op.ULE:
        return mk_cmp(Op.ULT, arg.args[1], arg.args[0])
    if arg.op == Op.SLT:
        return mk_cmp(Op.SLE, arg.args[1], arg.args[0])
    if arg.op == Op.SLE:
        return mk_cmp(Op.SLT, arg.args[1], arg.args[0])
    return node


def _rw_and(node: Term) -> Term:
    # Hash-consing makes dedup and complement detection O(1) integer-set
    # lookups: structurally equal conjuncts share one uid.
    kept: list[Term] = []
    seen: set[int] = set()
    for arg in node.args:
        if arg.is_true():
            continue
        if arg.is_false():
            return FALSE
        arg = intern_term(arg)
        if arg.uid in seen:
            continue
        seen.add(arg.uid)
        # a ∧ ¬a  →  false
        negated = mk_not(arg) if arg.op != Op.NOT else arg.args[0]
        if negated.uid in seen:
            return FALSE
        kept.append(arg)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return mk_and(*kept)


def _rw_or(node: Term) -> Term:
    kept: list[Term] = []
    seen: set[int] = set()
    for arg in node.args:
        if arg.is_false():
            continue
        if arg.is_true():
            return TRUE
        arg = intern_term(arg)
        if arg.uid in seen:
            continue
        seen.add(arg.uid)
        negated = mk_not(arg) if arg.op != Op.NOT else arg.args[0]
        if negated.uid in seen:
            return TRUE
        kept.append(arg)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return mk_or(*kept)


def _rw_implies(node: Term) -> Term:
    a, b = node.args
    if a.is_false() or b.is_true():
        return TRUE
    if a.is_true():
        return b
    if b.is_false():
        return _rw_not(mk_not(a)) if a.op == Op.NOT else mk_not(a)
    return node


def _rw_iff(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return TRUE
    if a.is_true():
        return b
    if b.is_true():
        return a
    if a.is_false():
        return mk_not(b)
    if b.is_false():
        return mk_not(a)
    return node


def _rw_xor(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return FALSE
    if a.is_false():
        return b
    if b.is_false():
        return a
    if a.is_true():
        return mk_not(b)
    if b.is_true():
        return mk_not(a)
    return node


def _rw_bool_ite(node: Term) -> Term:
    cond, then, other = node.args
    if cond.is_true():
        return then
    if cond.is_false():
        return other
    if then.structurally_equal(other):
        return then
    if then.is_true() and other.is_false():
        return cond
    if then.is_false() and other.is_true():
        return mk_not(cond)
    return node


# -- comparison rules ---------------------------------------------------------------


def _rw_eq(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return TRUE
    # x = c with x an extract of a constant etc. is handled by constant folding;
    # here we handle the frequent "add-of-constant equals constant" shape:
    #   (x + c1) = c2   →   x = c2 - c1
    if (
        a.op == Op.BV_ADD
        and a.args[1].op == Op.BV_CONST
        and b.op == Op.BV_CONST
    ):
        folded = mk_bv_const(int(b.value) - int(a.args[1].value), a.width)  # type: ignore[arg-type]
        return mk_eq(a.args[0], folded)
    return node


def _rw_ult(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return FALSE
    if b.op == Op.BV_CONST and int(b.value) == 0:  # type: ignore[arg-type]
        return FALSE  # nothing is unsigned-less-than zero
    if a.op == Op.BV_CONST and int(a.value) == (1 << a.width) - 1:  # type: ignore[arg-type]
        return FALSE  # the all-ones value is never less than anything
    return node


def _rw_ule(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return TRUE
    if a.op == Op.BV_CONST and int(a.value) == 0:  # type: ignore[arg-type]
        return TRUE
    if b.op == Op.BV_CONST and int(b.value) == (1 << b.width) - 1:  # type: ignore[arg-type]
        return TRUE
    return node


def _rw_slt(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return FALSE
    return node


def _rw_sle(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return TRUE
    return node


# -- bitvector rules ----------------------------------------------------------------


def _const_value(term: Term) -> int | None:
    return int(term.value) if term.op == Op.BV_CONST else None  # type: ignore[arg-type]


def _rw_add(node: Term) -> Term:
    a, b = node.args
    if _const_value(b) == 0:
        return a
    if _const_value(a) == 0:
        return b
    # Re-associate (x + c1) + c2  →  x + (c1 + c2) so repeated header-offset
    # arithmetic collapses.
    if a.op == Op.BV_ADD and a.args[1].op == Op.BV_CONST and b.op == Op.BV_CONST:
        folded = mk_bv_const(int(a.args[1].value) + int(b.value), node.width)  # type: ignore[arg-type]
        return _rw_add(mk_term(Op.BV_ADD, (a.args[0], folded), node.sort))
    return node


def _rw_sub(node: Term) -> Term:
    a, b = node.args
    if _const_value(b) == 0:
        return a
    if a.structurally_equal(b):
        return mk_bv_const(0, node.width)
    return node


def _rw_mul(node: Term) -> Term:
    a, b = node.args
    for x, y in ((a, b), (b, a)):
        value = _const_value(y)
        if value == 0:
            return mk_bv_const(0, node.width)
        if value == 1:
            return x
    return node


def _rw_and_bv(node: Term) -> Term:
    a, b = node.args
    mask = (1 << node.width) - 1
    for x, y in ((a, b), (b, a)):
        value = _const_value(y)
        if value == 0:
            return mk_bv_const(0, node.width)
        if value == mask:
            return x
    if a.structurally_equal(b):
        return a
    return node


def _rw_or_bv(node: Term) -> Term:
    a, b = node.args
    mask = (1 << node.width) - 1
    for x, y in ((a, b), (b, a)):
        value = _const_value(y)
        if value == 0:
            return x
        if value == mask:
            return mk_bv_const(mask, node.width)
    if a.structurally_equal(b):
        return a
    return node


def _rw_xor_bv(node: Term) -> Term:
    a, b = node.args
    if a.structurally_equal(b):
        return mk_bv_const(0, node.width)
    for x, y in ((a, b), (b, a)):
        if _const_value(y) == 0:
            return x
    return node


def _rw_shift(node: Term) -> Term:
    a, b = node.args
    if _const_value(b) == 0:
        return a
    if _const_value(a) == 0:
        return mk_bv_const(0, node.width)
    return node


def _rw_extract(node: Term) -> Term:
    (arg,) = node.args
    hi, lo = node.params
    if hi == arg.width - 1 and lo == 0:
        return arg
    # Rebuilt extracts are re-rewritten so e.g. extract-of-concat that lands
    # exactly on one operand reduces all the way to the operand itself.
    # extract of extract composes.
    if arg.op == Op.BV_EXTRACT:
        inner_hi, inner_lo = arg.params
        return _rw_extract(mk_extract(arg.args[0], inner_lo + hi, inner_lo + lo))
    # extract of a concat that falls entirely inside one operand.
    if arg.op == Op.BV_CONCAT:
        offset = 0
        for child in reversed(arg.args):  # operands are MSB-first; walk from LSB
            if lo >= offset and hi < offset + child.width:
                return _rw_extract(mk_extract(child, hi - offset, lo - offset))
            offset += child.width
    # extract of zero-extension that stays within the original operand.
    if arg.op == Op.BV_ZEXT and hi < arg.args[0].width:
        return _rw_extract(mk_extract(arg.args[0], hi, lo))
    if arg.op == Op.BV_ZEXT and lo >= arg.args[0].width:
        return mk_bv_const(0, hi - lo + 1)
    return node


def _rw_concat(node: Term) -> Term:
    # Merge adjacent constants.
    merged: list[Term] = []
    for child in node.args:
        if merged and merged[-1].op == Op.BV_CONST and child.op == Op.BV_CONST:
            prev = merged.pop()
            merged.append(
                mk_bv_const(
                    (int(prev.value) << child.width) | int(child.value),  # type: ignore[arg-type]
                    prev.width + child.width,
                )
            )
        else:
            merged.append(child)
    if len(merged) == 1:
        return merged[0]
    if len(merged) != len(node.args):
        return mk_concat(*merged)
    return node


def _rw_bv_ite(node: Term) -> Term:
    cond, then, other = node.args
    if cond.is_true():
        return then
    if cond.is_false():
        return other
    if then.structurally_equal(other):
        return then
    return node


_RULES = {
    Op.NOT: _rw_not,
    Op.AND: _rw_and,
    Op.OR: _rw_or,
    Op.IMPLIES: _rw_implies,
    Op.IFF: _rw_iff,
    Op.XOR: _rw_xor,
    Op.BOOL_ITE: _rw_bool_ite,
    Op.EQ: _rw_eq,
    Op.ULT: _rw_ult,
    Op.ULE: _rw_ule,
    Op.SLT: _rw_slt,
    Op.SLE: _rw_sle,
    Op.BV_ADD: _rw_add,
    Op.BV_SUB: _rw_sub,
    Op.BV_MUL: _rw_mul,
    Op.BV_AND: _rw_and_bv,
    Op.BV_OR: _rw_or_bv,
    Op.BV_XOR: _rw_xor_bv,
    Op.BV_SHL: _rw_shift,
    Op.BV_LSHR: _rw_shift,
    Op.BV_ASHR: _rw_shift,
    Op.BV_EXTRACT: _rw_extract,
    Op.BV_CONCAT: _rw_concat,
    Op.BV_ITE: _rw_bv_ite,
}
