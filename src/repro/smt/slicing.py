"""Constraint independence slicing: split a conjunction into variable-disjoint parts.

A path constraint produced by the symbolic executor is a conjunction of
many small facts, most of which talk about different packet bytes.  Two
conjuncts interact only if they share a free variable, so the conjunct
set splits into **connected components** over the shared-variable
relation — the *slices*.  A slice can be decided independently: the whole
conjunction is satisfiable iff every slice is (models over disjoint
variables compose by union), and a single unsatisfiable slice refutes
the whole query.

Slicing is what makes the query cache (:mod:`repro.smt.qcache`)
effective: when a new branch condition touches two packet bytes, only the
slice containing those bytes changes — every other slice is the same
term set the previous hundred queries carried, and its verdict is an
O(1) exact-key cache hit instead of a SAT call.

Free-variable sets are memoized by interned-term ``uid`` (computed
bottom-up over the DAG, so a term is walked once per process, not once
per query), and the partition itself is a union-find over variable
names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .terms import Term, intern_term

#: Free-variable sets keyed by term uid.  Uids are never reused, so stale
#: entries can never be *wrong* — only dead.  The table is dropped
#: wholesale past the limit, like the feasibility memo.
_FREE_VARS_MEMO: Dict[int, FrozenSet[str]] = {}
_MEMO_LIMIT = 500_000


def free_variable_names(term: Term) -> FrozenSet[str]:
    """The set of free variable names of ``term``, memoized by interned uid."""
    term = intern_term(term)
    cached = _FREE_VARS_MEMO.get(term.uid)
    if cached is not None:
        return cached
    if len(_FREE_VARS_MEMO) >= _MEMO_LIMIT:
        _FREE_VARS_MEMO.clear()
    # Iterative post-order so arbitrarily deep terms (byte-select chains)
    # neither recurse nor re-walk subterms another query already visited.
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node.uid in _FREE_VARS_MEMO:
            continue
        if node.is_var():
            assert node.name is not None
            _FREE_VARS_MEMO[node.uid] = frozenset((node.name,))
        elif not node.args:
            _FREE_VARS_MEMO[node.uid] = frozenset()
        elif expanded:
            _FREE_VARS_MEMO[node.uid] = frozenset().union(
                *(_FREE_VARS_MEMO[arg.uid] for arg in node.args)
            )
        else:
            stack.append((node, True))
            for arg in node.args:
                if arg.uid not in _FREE_VARS_MEMO:
                    stack.append((arg, False))
    return _FREE_VARS_MEMO[term.uid]


@dataclass(frozen=True)
class Slice:
    """One variable-connected component of a constraint set.

    ``key`` — the sorted tuple of the slice's interned term uids — is the
    canonical in-process identity the query cache keys on: two queries
    assemble the same slice iff they carry the same term set, however
    the terms were ordered or duplicated.
    """

    terms: Tuple[Term, ...]
    variables: FrozenSet[str]
    key: Tuple[int, ...]


def _make_slice(terms: Sequence[Term]) -> Slice:
    variables: FrozenSet[str] = frozenset().union(
        *(free_variable_names(term) for term in terms)
    )
    return Slice(
        terms=tuple(terms),
        variables=variables,
        key=tuple(sorted(term.uid for term in terms)),
    )


def partition(terms: Sequence[Term]) -> List[Slice]:
    """Split ``terms`` into slices connected by shared free variables.

    Deterministic: slices come back ordered by the first appearance of
    one of their terms, each slice's terms in input order (no dependence
    on set-iteration order, so runs agree across hash seeds).  Ground
    terms (no free variables) each form their own singleton slice —
    after simplification they are rare, but a constant-valued conjunct
    must still be decided, not dropped.
    """
    if not terms:
        return []
    parent: Dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:  # path compression
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    term_vars: List[List[str]] = []
    for term in terms:
        names = sorted(free_variable_names(term))
        term_vars.append(names)
        for name in names:
            parent.setdefault(name, name)
        for name in names[1:]:
            union(names[0], name)

    # Group terms by the component of their first variable, in input order.
    groups_order = _group_terms(terms, term_vars, find)
    return groups_order


def arena_order(slices: Sequence[Slice]) -> List[int]:
    """Slice indices ordered cheapest-first for batched arena solving.

    When every missed slice shares one encode/solve arena, deciding the
    small slices first maximizes the chance an interval quick check or an
    UNSAT verdict short-circuits the query before the arena is ever
    built.  Stable on size ties, so the order stays deterministic.
    """
    return sorted(
        range(len(slices)),
        key=lambda index: (len(slices[index].terms), len(slices[index].variables), index),
    )


def _group_terms(terms: Sequence[Term], term_vars: List[List[str]], find) -> List[Slice]:
    """Materialize the slices of a partition, in first-appearance order."""
    groups: Dict[str, List[Term]] = {}
    order: List[Tuple[str, bool]] = []  # (group key, is_ground) in first-appearance order
    ground_count = 0
    for term, names in zip(terms, term_vars):
        if not names:
            key = f"\x00ground{ground_count}"  # never a variable name
            ground_count += 1
            groups[key] = [term]
            order.append((key, True))
            continue
        root = find(names[0])
        if root not in groups:
            groups[root] = []
            order.append((root, False))
        groups[root].append(term)
    return [_make_slice(groups[key]) for key, _ground in order]
