"""The pluggable SAT-backend seam.

Every layer above the CDCL core (facades, incremental context, query
cache, CLI) selects its decision procedure by *name* through
:func:`make_sat_solver`:

* ``reference`` — :class:`repro.smt.sat.SATSolver`, the clarity-first
  from-scratch core.  Kept as the oracle: differential tests check every
  other backend against it.
* ``array`` — :class:`repro.smt.satcore.ArraySolver`, the flat-arena
  rewrite.  The default.
* ``external`` — a subprocess bridge to an installed DIMACS solver
  (minisat / kissat / cadical / picosat), the optional fast path.  Only
  selectable when a binary is actually present; :func:`make_sat_solver`
  raises otherwise so a missing binary is a loud configuration error,
  never a silent slowdown.

All backends speak the same protocol (:class:`SatBackend`): DIMACS
integer literals in, :class:`~repro.smt.sat.SatResult` strings out, a
``model()`` list indexed by variable.  DIMACS emit/parse lives here too,
so differential testing across process boundaries falls out for free.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

from .errors import SolverError
from .sat import SATSolver, SatResult
from .satcore import ArraySolver

REFERENCE = "reference"
ARRAY = "array"
EXTERNAL = "external"

#: The backend used when callers do not choose one.
DEFAULT_BACKEND = ARRAY

#: Binaries probed for the ``external`` backend, in preference order.
EXTERNAL_SOLVER_CANDIDATES = ("kissat", "cadical", "minisat", "picosat")


class SatBackend(Protocol):
    """What the solver facades require of a SAT core."""

    conflicts: int
    decisions: int

    @property
    def num_vars(self) -> int: ...  # noqa: E704 - protocol stub

    @property
    def learned_clause_count(self) -> int: ...  # noqa: E704 - protocol stub

    def reserve(self, num_vars: int) -> None: ...  # noqa: E704 - protocol stub

    def add_clause(self, literals: Sequence[int]) -> bool: ...  # noqa: E704 - protocol stub

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None) -> str: ...  # noqa: E704 - protocol stub

    def model(self) -> List[bool]: ...  # noqa: E704 - protocol stub

    def cancel(self) -> None: ...  # noqa: E704 - protocol stub


def find_external_solver() -> Optional[str]:
    """Path of the first installed external DIMACS solver, or None.

    ``REPRO_SAT_SOLVER`` overrides the probe order (either a bare command
    name resolved on PATH or an absolute path).
    """
    override = os.environ.get("REPRO_SAT_SOLVER")
    if override:
        return shutil.which(override) or (override if os.path.exists(override) else None)
    for candidate in EXTERNAL_SOLVER_CANDIDATES:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def available_backends() -> List[str]:
    """Backends selectable on this host (``external`` only with a binary)."""
    backends = [REFERENCE, ARRAY]
    if find_external_solver() is not None:
        backends.append(EXTERNAL)
    return backends


def make_sat_solver(
    backend: Optional[str] = None,
    num_vars: int = 0,
    max_learned: Optional[int] = None,
):
    """Construct the SAT core named ``backend`` (default :data:`DEFAULT_BACKEND`)."""
    backend = backend or DEFAULT_BACKEND
    if backend == ARRAY:
        if max_learned is not None:
            return ArraySolver(num_vars, max_learned=max_learned)
        return ArraySolver(num_vars)
    if backend == REFERENCE:
        solver = SATSolver(num_vars)
        if max_learned is not None:
            solver.max_learned = max_learned
        return solver
    if backend == EXTERNAL:
        return ExternalSolver(num_vars)
    raise SolverError(
        f"unknown SAT backend {backend!r} (expected one of: {REFERENCE}, {ARRAY}, {EXTERNAL})"
    )


# -- DIMACS ---------------------------------------------------------------------------


def to_dimacs(
    clauses: Iterable[Sequence[int]],
    num_vars: int,
    assumptions: Sequence[int] = (),
) -> str:
    """Render a clause set (plus assumptions as unit clauses) as DIMACS CNF."""
    lines: List[str] = []
    count = 0
    for clause in clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
        count += 1
    for lit in assumptions:
        lines.append(f"{lit} 0")
        count += 1
    header = f"p cnf {num_vars} {count}"
    return "\n".join([header] + lines) + "\n"


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses).

    Tolerant of comment lines and clauses spanning multiple lines; the
    inverse of :func:`to_dimacs` for round-trip testing.
    """
    num_vars = 0
    clauses: List[List[int]] = []
    current: List[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise SolverError(f"malformed DIMACS header: {line!r}")
            num_vars = int(fields[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        raise SolverError("DIMACS clause without a terminating 0")
    return num_vars, clauses


def parse_solver_output(text: str) -> Tuple[Optional[str], List[int]]:
    """Parse ``s``/``v`` solver output lines into (status, model literals).

    Handles both the SAT-competition format (``s SATISFIABLE`` + ``v``
    lines) and minisat's result-file format (``SAT`` + one literal line).
    """
    status: Optional[str] = None
    literals: List[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("S ") or upper in ("SAT", "UNSAT", "UNSATISFIABLE", "SATISFIABLE"):
            body = upper[2:].strip() if upper.startswith("S ") else upper
            if body.startswith("UNSAT"):
                status = SatResult.UNSAT
            elif body.startswith("SAT"):
                status = SatResult.SAT
            elif body.startswith("UNKNOWN"):
                status = SatResult.UNKNOWN
            continue
        if line[0] in "vV" and (len(line) == 1 or line[1].isspace()):
            line = line[1:]
        try:
            literals.extend(int(token) for token in line.split())
        except ValueError:
            continue  # banner / statistics line
    return status, [lit for lit in literals if lit != 0]


class ExternalSolver:
    """Subprocess bridge to an installed DIMACS solver.

    One-shot per ``solve``: the clause set plus the call's assumptions are
    written as a DIMACS file, the binary runs, and the verdict/model is
    parsed back.  No incremental state crosses calls (learned clauses are
    the subprocess's to keep), so ``learned_clause_count`` is always 0 —
    the seam's statistics stay honest.  A crash, timeout, or unparseable
    answer degrades to ``unknown``, which no cache tier ever persists.
    """

    def __init__(
        self,
        num_vars: int = 0,
        command: Optional[str] = None,
        timeout_seconds: float = 300.0,
    ) -> None:
        resolved = command or find_external_solver()
        if resolved is None:
            raise SolverError(
                "no external DIMACS solver found (install one of: "
                + ", ".join(EXTERNAL_SOLVER_CANDIDATES)
                + ", or set REPRO_SAT_SOLVER)"
            )
        self.command = resolved
        self.timeout_seconds = timeout_seconds
        self._num_vars = num_vars
        self._clauses: List[List[int]] = []
        self._model: List[bool] = []
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def learned_clause_count(self) -> int:
        return 0

    def reserve(self, num_vars: int) -> None:
        if num_vars > self._num_vars:
            self._num_vars = num_vars

    def add_clause(self, literals: Sequence[int]) -> bool:
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.reserve(abs(lit))
        if not clause:
            self._ok = False
            return False
        self._clauses.append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def cancel(self) -> None:  # no cross-call state to undo
        return None

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,  # noqa: ARG002 - external budget unsupported
    ) -> str:
        """Run the external binary on the current clause set + assumptions.

        ``max_conflicts`` is not forwarded — external solvers answer
        definitively or time out (which degrades to ``unknown``).
        """
        if not self._ok:
            return SatResult.UNSAT
        for lit in assumptions:
            self.reserve(abs(lit))
        dimacs = to_dimacs(self._clauses, self._num_vars, assumptions)
        status, literals = self._run(dimacs)
        if status == SatResult.SAT:
            self._model = [False] * (self._num_vars + 1)
            for lit in literals:
                var = abs(lit)
                if var <= self._num_vars:
                    self._model[var] = lit > 0
        return status or SatResult.UNKNOWN

    def _run(self, dimacs: str) -> Tuple[Optional[str], List[int]]:
        basename = os.path.basename(self.command)
        with tempfile.TemporaryDirectory(prefix="repro-sat-") as root:
            problem = os.path.join(root, "problem.cnf")
            with open(problem, "w") as handle:
                handle.write(dimacs)
            if "minisat" in basename:
                # minisat writes its verdict and model to a result file.
                result_path = os.path.join(root, "result.out")
                argv = [self.command, "-verb=0", problem, result_path]
            else:
                result_path = None
                argv = [self.command, problem]
            try:
                completed = subprocess.run(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    timeout=self.timeout_seconds,
                )
            except (OSError, subprocess.TimeoutExpired):
                return SatResult.UNKNOWN, []
            output = completed.stdout.decode("utf-8", "replace")
            if result_path is not None and os.path.exists(result_path):
                with open(result_path) as handle:
                    output = handle.read()
            # SAT solvers conventionally exit 10 (SAT) / 20 (UNSAT); the
            # parsed output is authoritative, the exit code the fallback.
            status, literals = parse_solver_output(output)
            if status is None:
                if completed.returncode == 10:
                    status = SatResult.SAT
                elif completed.returncode == 20:
                    status = SatResult.UNSAT
            return status, literals

    def model(self) -> List[bool]:
        return list(self._model)

    def value(self, var: int) -> bool:
        return bool(self._model[var]) if var < len(self._model) else False
