"""Incremental, assumption-based solving core.

This module is the persistent counterpart of the one-shot :class:`Solver`
facade.  A :class:`SolverContext` keeps one CNF, one bit-blaster and one
CDCL solver alive for its whole lifetime:

* every distinct (hash-consed) boolean term is Tseitin-encoded **once**,
  the first time it is seen — repeat queries over shared constraint
  prefixes reuse the encoding and the SAT solver's variable maps;
* queries are decided with ``check_assumptions``: the context passes the
  root literal of each active constraint as a CDCL assumption instead of
  asserting unit clauses, so the clause database never has to be rebuilt
  or retracted and **learned clauses remain valid across queries**;
* ``push``/``pop`` scope which constraints are active.  Popping is O(1)
  bookkeeping — the encodings stay behind for when the terms return,
  which is exactly what happens along a symbolic-execution fork tree or
  a DFS walk over composed pipeline routes.

:class:`AssumptionChecker` layers the two services the symbex and verify
layers need on top: *alignment* of the context's scope stack to a query's
constraint prefix (so append-only constraint lists share work with their
siblings), and a feasibility memo keyed on interned term uids.

Both classes optionally route through the **query-optimization layer**
(:mod:`repro.smt.qcache`): the query is partitioned into
variable-independent slices, each slice is answered by the cheapest cache
tier that can (exact verdict, unsat-core subset, SAT superset, model
reuse, persistent L3), and only unseen slices reach this context's CDCL
core — tried first with the interval quick check, since slices are small
enough for it to succeed where whole conjunctions are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.stats import StatisticsMixin
from ..obs.trace import clock
from .backend import make_sat_solver
from .bitblast import BitBlaster
from .cnf import CNFBuilder
from .errors import SolverError
from .interval import QuickCheckResult, quick_check
from .model import Model, model_from_bits
from .qcache import QueryCache
from .sat import SatResult
from .simplify import simplify
from .solver import CheckResult
from .terms import Term, intern_term, mk_and


@dataclass
class ContextStatistics(StatisticsMixin):
    """Counters describing the work of one :class:`SolverContext`."""

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    terms_encoded: int = 0
    literals_reused: int = 0
    #: Times the CDCL core actually ran a search.  With the query cache
    #: attached this counts per-slice solves; cache and quick-check
    #: answers never reach it — the counter the optimization layer is
    #: judged by.
    sat_core_calls: int = 0
    #: Slice sub-queries handed to this context by the query cache.
    slices_solved: int = 0
    #: Slice sub-queries the interval quick check decided (no SAT call).
    quick_check_hits: int = 0
    #: Slice questions answered by the query cache without solving.
    qcache_hits: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    learned_clauses: int = 0
    #: Root-level bit-blasting passes of the shared blaster (distinct
    #: roots encoded), and the node questions its uid-keyed cache
    #: answered instead — the evidence that shared subterms blast once.
    blast_passes: int = 0
    blast_cache_hits: int = 0
    #: Encode *sweeps* over slice sets: the unbatched path pays one per
    #: core-reaching slice, the batched arena one per whole slice set —
    #: so with batching this stays below ``slices_solved``.
    encode_passes: int = 0
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0

    #: ``learned_clauses`` is a gauge of the persistent core's clause
    #: database, not a per-run delta — merging takes the larger database.
    MERGE_MAX = ("learned_clauses",)


class SolverContext:
    """A persistent incremental solver over the QF_BV term language.

    Unlike :class:`repro.smt.solver.Solver`, which re-simplifies,
    re-bit-blasts and re-solves the full conjunction on every ``check``,
    a context accumulates state monotonically: the CNF only ever grows
    (with Tseitin definitions, which are unconditionally valid), and the
    SAT solver keeps its learned clauses, variable activities and saved
    phases between calls.
    """

    def __init__(
        self,
        max_conflicts: Optional[int] = 200_000,
        query_cache: Optional[QueryCache] = None,
        sat_backend: Optional[str] = None,
    ) -> None:
        """``query_cache`` routes every check through the slicing/cache
        layer; ``None`` keeps the direct assumption-solving path (the
        differential-testing baseline).  ``sat_backend`` names the CDCL
        core (see :mod:`repro.smt.backend`); ``None`` takes the default."""
        self._cnf = CNFBuilder()
        self._blaster = BitBlaster(self._cnf)
        self.sat_backend = sat_backend
        self._sat = make_sat_solver(sat_backend, self._cnf.num_vars)
        self._clauses_fed = 0
        self._flat_fed = 0
        self._max_conflicts = max_conflicts
        self.query_cache = query_cache
        # Scope stack of asserted terms; scope 0 is the root and never popped.
        self._scopes: List[List[Term]] = [[]]
        # Interned-term uid -> (term, root literal).  Holding the term keeps
        # every encoded subterm alive, which keeps the blaster's id-keyed
        # caches sound.
        self._literals: Dict[int, Tuple[Term, int]] = {}
        self._model: Optional[Model] = None
        self.statistics = ContextStatistics()

    # -- assertion scoping ---------------------------------------------------------

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append([])

    def pop(self) -> None:
        """Deactivate the constraints of the innermost scope (O(1); encodings stay)."""
        if len(self._scopes) == 1:
            raise SolverError("pop() without a matching push()")
        self._scopes.pop()

    @property
    def depth(self) -> int:
        """Number of open scopes above the root."""
        return len(self._scopes) - 1

    def assert_term(self, *constraints: Term) -> None:
        """Assert boolean terms in the current scope."""
        for constraint in constraints:
            if not isinstance(constraint, Term) or not constraint.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got {constraint!r}")
            self._scopes[-1].append(constraint)

    def assertions(self) -> List[Term]:
        """All currently active assertions, outermost scope first."""
        return [term for scope in self._scopes for term in scope]

    # -- solving -------------------------------------------------------------------

    def check_assumptions(self, *extra: Term) -> str:
        """Decide satisfiability of the active assertions plus ``extra``.

        ``extra`` terms are temporary assumptions for this call only; they
        are encoded (and their encodings retained for reuse) but never
        asserted.
        """
        started = clock()
        self.statistics.checks += 1
        self._model = None

        if self.query_cache is not None:
            return self._check_optimized(extra, started)

        literals: List[int] = []
        trivially_unsat = False
        for term in self.assertions() + [t for t in extra]:
            reduced = simplify(term)
            if reduced.is_true():
                continue
            if reduced.is_false():
                trivially_unsat = True
                break
            literals.append(self._literal(reduced))
        self.statistics.encode_seconds += clock() - started

        if trivially_unsat:
            return self._finish(CheckResult.UNSAT)

        solve_started = clock()
        status, model = self._solve_assumptions(literals)
        self.statistics.solve_seconds += clock() - solve_started
        self._model = model
        return self._finish(status)

    def _check_optimized(self, extra: Sequence[Term], started: float) -> str:
        """Decide the active assertions + ``extra`` through the query cache.

        Every constraint travels as a per-call assumption: the cache's
        slicing makes prefix bookkeeping unnecessary, and the persistent
        encodings/learned clauses of this context still back every slice
        that actually has to be solved.
        """
        terms: List[Term] = []
        for term in list(self.assertions()) + list(extra):
            reduced = simplify(term)
            if reduced.is_true():
                continue
            if reduced.is_false():
                self.statistics.encode_seconds += clock() - started
                return self._finish(CheckResult.UNSAT)
            terms.append(intern_term(reduced))
        self.statistics.encode_seconds += clock() - started

        solve_started = clock()
        hits_before = self.query_cache.statistics.hits
        status, model = self.query_cache.check(
            terms, self._solve_slice, make_batch=self._make_batch
        )
        self.statistics.qcache_hits += self.query_cache.statistics.hits - hits_before
        self.statistics.solve_seconds += clock() - solve_started
        if status == CheckResult.SAT:
            self._model = model if model is not None else Model({})
        return self._finish(status)

    def _solve_slice(self, terms: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        """Decide one variable-independent slice on the persistent core.

        Slices are small, so the interval quick check — useless on whole
        path conjunctions — resolves most of them outright; the rest are
        one assumption solve on the retained CNF.
        """
        self.statistics.slices_solved += 1
        goal = terms[0] if len(terms) == 1 else mk_and(*terms)
        quick = quick_check(goal)
        if quick.status == QuickCheckResult.UNSAT:
            self.statistics.quick_check_hits += 1
            return CheckResult.UNSAT, None
        if quick.status == QuickCheckResult.SAT:
            self.statistics.quick_check_hits += 1
            return CheckResult.SAT, Model(quick.model)

        # Unbatched: one encode sweep per core-reaching slice.
        self.statistics.encode_passes += 1
        return self._solve_assumptions([self._literal(term) for term in terms])

    def _make_batch(self, groups: Sequence[Sequence[Term]]) -> List:
        """Batched slice solving on the persistent core: one encode, N solves.

        The per-slice path encodes and feeds each missed slice on its
        own; the batch hook instead Tseitin-encodes *every* slice's root
        into the shared CNF the first time any slice actually needs the
        core, then streams the new clauses to the solver in one
        ``_feed_clauses`` call.  Ite-lifted merge constraints share most
        of their sub-DAG across slices, so the uid-keyed blast cache
        turns the remaining slices' encodings into lookups — one
        bit-blasting pass over the shared subterms instead of one per
        slice.  Each slice is still decided by its own assumption solve,
        so verdicts, counters and the one-UNSAT short-circuit match the
        unbatched path.
        """
        state: Dict[str, object] = {}

        def ensure_encoded() -> None:
            if state:
                return
            # One encode sweep covers every slice of the arena.
            self.statistics.encode_passes += 1
            state["literals"] = [
                [self._literal(term) for term in terms] for terms in groups
            ]
            self._feed_clauses()

        def solve_group(index: int):
            def run(terms: Sequence[Term]) -> Tuple[str, Optional[Model]]:
                self.statistics.slices_solved += 1
                goal = terms[0] if len(terms) == 1 else mk_and(*terms)
                quick = quick_check(goal)
                if quick.status == QuickCheckResult.UNSAT:
                    self.statistics.quick_check_hits += 1
                    return CheckResult.UNSAT, None
                if quick.status == QuickCheckResult.SAT:
                    self.statistics.quick_check_hits += 1
                    return CheckResult.SAT, Model(quick.model)
                ensure_encoded()
                return self._solve_assumptions(state["literals"][index])  # type: ignore[index]

            return run

        return [solve_group(index) for index in range(len(groups))]

    def _solve_assumptions(self, literals: List[int]) -> Tuple[str, Optional[Model]]:
        """Run one CDCL search under ``literals``, with the work bookkeeping.

        The shared tail of the plain and optimized paths; ``solve_seconds``
        is deliberately the caller's concern (the optimized path times the
        whole cache interaction instead).
        """
        self._feed_clauses()
        conflicts_before = self._sat.conflicts
        decisions_before = self._sat.decisions
        self.statistics.sat_core_calls += 1
        outcome = self._sat.solve(assumptions=literals, max_conflicts=self._max_conflicts)
        self.statistics.sat_conflicts += self._sat.conflicts - conflicts_before
        self.statistics.sat_decisions += self._sat.decisions - decisions_before
        self.statistics.learned_clauses = self._sat.learned_clause_count
        if outcome == SatResult.SAT:
            return CheckResult.SAT, model_from_bits(
                self._blaster.variable_bits(),
                self._blaster.boolean_variables(),
                self._sat.model(),
            )
        if outcome == SatResult.UNSAT:
            return CheckResult.UNSAT, None
        return CheckResult.UNKNOWN, None

    # ``check`` is an alias so the context can stand in for the scratch facade.
    check = check_assumptions

    def is_satisfiable(self, *extra: Term) -> bool:
        return self.check_assumptions(*extra) == CheckResult.SAT

    def is_unsatisfiable(self, *extra: Term) -> bool:
        return self.check_assumptions(*extra) == CheckResult.UNSAT

    def model(self) -> Model:
        """Model of the last satisfiable check."""
        if self._model is None:
            raise SolverError("model() is only available after a satisfiable check")
        return self._model

    # -- internals -----------------------------------------------------------------

    def _finish(self, status: str) -> str:
        if status == CheckResult.SAT:
            self.statistics.sat += 1
        elif status == CheckResult.UNSAT:
            self.statistics.unsat += 1
        else:
            self.statistics.unknown += 1
        # Blast counters are gauges of the context's one shared blaster;
        # syncing on every check keeps them current without per-node cost.
        self.statistics.blast_passes = self._blaster.passes
        self.statistics.blast_cache_hits = self._blaster.cache_hits
        return status

    def _literal(self, term: Term) -> int:
        """Root literal of a (simplified, interned) boolean term; encoded once ever."""
        term = intern_term(term)
        cached = self._literals.get(term.uid)
        if cached is not None:
            self.statistics.literals_reused += 1
            return cached[1]
        literal = self._blaster.blast_bool(term)
        self._literals[term.uid] = (term, literal)
        self.statistics.terms_encoded += 1
        return literal

    def _feed_clauses(self) -> None:
        """Hand newly generated CNF clauses (and variables) to the persistent SAT solver."""
        self._sat.reserve(self._cnf.num_vars)
        clauses = self._cnf.clauses
        if self._clauses_fed == len(clauses):
            return
        if not getattr(self._sat, "trail_safe_feed", False):
            # The reference core requires a quiescent solver before new
            # clauses; the array core feeds under a live trail, keeping
            # its cached assumption levels (and their propagations).
            self._sat.cancel()
        stream = getattr(self._sat, "add_clause_stream", None)
        if stream is not None:
            # Bulk path: feed the 0-terminated flat mirror in one call
            # instead of one Python call per clause.
            flat = self._cnf.flat
            stream(flat, self._flat_fed, len(flat))
            self._flat_fed = len(flat)
        else:
            for index in range(self._clauses_fed, len(clauses)):
                self._sat.add_clause(clauses[index])
        self._clauses_fed = len(clauses)


class AssumptionChecker:
    """Feasibility oracle sharing one :class:`SolverContext` across queries.

    Callers hand over whole constraint lists (a path's prefix) plus query
    terms.  The checker aligns the context's scope stack to the longest
    common prefix with the previous query — cheap for the append-only
    constraint lists of a fork tree or a DFS route walk — and memoizes
    verdicts by the *set* of interned term uids, so structurally identical
    queries (however they were reassembled) are solved once.
    """

    #: Memo entries are dropped wholesale past this size: uids are never
    #: reused, so entries for collected terms can never be hit again.
    MEMO_LIMIT = 100_000

    def __init__(
        self,
        max_conflicts: Optional[int] = 200_000,
        query_cache: Optional[QueryCache] = None,
        sat_backend: Optional[str] = None,
    ) -> None:
        """``query_cache`` (shared freely between checkers) slices every
        query and reuses verdicts/models/cores across them; without one
        the checker keeps the prefix-alignment path.  ``sat_backend``
        picks the CDCL core backing the shared context."""
        self.context = SolverContext(
            max_conflicts=max_conflicts, query_cache=query_cache, sat_backend=sat_backend
        )
        self.query_cache = query_cache
        self._stack: List[Term] = []
        # Verdicts only — models are not pinned here; a SAT repeat that
        # needs one re-solves on the warm context (or its cache) instead.
        self._memo: Dict[frozenset, str] = {}
        self.memo_hits = 0
        self.checks = 0

    # -- prefix alignment ----------------------------------------------------------

    def align(self, constraints: Sequence[Term]) -> None:
        """Re-derive the context's scope stack for this constraint prefix.

        One scope per constraint: sibling paths that share a prefix of
        length p keep p scopes (and their encodings) and only push/pop the
        divergent suffix.
        """
        common = 0
        for current, wanted in zip(self._stack, constraints):
            if current is not wanted and intern_term(current) is not intern_term(wanted):
                break
            common += 1
        while len(self._stack) > common:
            self.context.pop()
            self._stack.pop()
        for term in constraints[common:]:
            self.context.push()
            self.context.assert_term(term)
            self._stack.append(term)

    # -- querying ------------------------------------------------------------------

    def check(
        self, constraints: Sequence[Term], extra: Sequence[Term] = (), need_model: bool = False
    ) -> Tuple[str, Optional[Model]]:
        """Decide ``constraints ∧ extra``; returns (status, model-or-None).

        Pass ``need_model=True`` when the caller will consume the model of a
        satisfiable check; a memoized SAT verdict then re-solves (cheap on
        the warm context) instead of returning a pinned model.
        """
        self.checks += 1
        key = frozenset(
            intern_term(term).uid for term in list(constraints) + list(extra)
        )
        cached = self._memo.get(key)
        if cached is not None and not (need_model and cached == CheckResult.SAT):
            self.memo_hits += 1
            return cached, None
        if self.query_cache is not None:
            # Slicing subsumes prefix alignment: unchanged slices hit the
            # cache whatever the constraint order, so everything travels
            # as per-call assumptions and the scope stack stays empty.
            status = self.context.check_assumptions(*constraints, *extra)
        else:
            self.align(constraints)
            status = self.context.check_assumptions(*extra)
        model = self.context.model() if need_model and status == CheckResult.SAT else None
        if len(self._memo) >= self.MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = status
        return status, model

    def is_feasible(self, constraints: Sequence[Term], extra: Sequence[Term] = ()) -> bool:
        return self.check(constraints, extra)[0] == CheckResult.SAT

    @property
    def statistics(self) -> ContextStatistics:
        return self.context.statistics
