"""Solver facade: the entry point used by the symbolic executor and verifier.

A :class:`Solver` accumulates boolean assertions (with ``push``/``pop``
scoping), and decides satisfiability by:

1. rewriting the conjunction with the algebraic simplifier,
2. trying the unsigned-interval quick check, and
3. falling back to bit-blasting plus CDCL SAT.

Query results are cached by the simplified constraint's hash-consed term
uid — structurally identical queries share one interned term, so the
lookup is an O(1) integer-keyed dict hit with no rendering on the hot
path.  This matters for Step 2 of the verifier where many composed paths
reduce to the same residual constraint.  A :class:`~repro.smt.qcache.
QueryCache` can additionally be attached to slice each query into
variable-independent parts and reuse per-slice verdicts across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..obs.stats import StatisticsMixin
from ..obs.trace import clock
from .backend import make_sat_solver
from .bitblast import BitBlaster
from .builder import And
from .errors import SolverError
from .interval import QuickCheckResult, quick_check
from .model import Model, model_from_bits
from .sat import SatResult
from .simplify import simplify
from .terms import TRUE, Op, Term, mk_and

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (qcache imports nothing here,
    # but the annotation-only import keeps the layering one-directional)
    from .qcache import QueryCache


class CheckResult:
    """Tri-state result of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStatistics(StatisticsMixin):
    """Counters describing the work a solver instance has performed."""

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    quick_check_hits: int = 0
    cache_hits: int = 0
    #: Times the CDCL core actually ran a search (quick-check and cache
    #: answers excluded) — the denominator of the query-optimization win.
    sat_core_calls: int = 0
    #: Slice questions the attached QueryCache answered without solving.
    qcache_hits: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    #: Root-level bit-blasting passes across this solver's (per-check)
    #: blasters, and node questions their uid-keyed caches answered.
    blast_passes: int = 0
    blast_cache_hits: int = 0
    total_time: float = 0.0


@dataclass
class _CachedAnswer:
    status: str
    model: Optional[Model] = None
    #: The goal term itself.  The intern table is weak, so the entry must
    #: pin the term: a structurally identical future goal then reinterns
    #: to this instance (same uid) and the uid-keyed lookup hits.
    goal: Optional[Term] = None


class Solver:
    """Scratch-mode solver facade over the QF_BV term language.

    Each ``check()`` builds a fresh CNF for the current assertion set; the
    per-query cache absorbs exact repetition.  This is the from-scratch
    baseline kept for differential testing — production callers use the
    truly incremental :class:`repro.smt.context.SolverContext`, which
    retains the bit-blasted CNF, variable maps and learned clauses across
    checks instead of rebuilding per query.
    """

    def __init__(
        self,
        max_conflicts: Optional[int] = 200_000,
        enable_cache: bool = True,
        query_cache: Optional["QueryCache"] = None,
        sat_backend: Optional[str] = None,
    ) -> None:
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._model: Optional[Model] = None
        self._max_conflicts = max_conflicts
        self._enable_cache = enable_cache
        self.sat_backend = sat_backend
        # Keyed by the simplified goal's interned uid: uids are never
        # reused, so a key can go stale (unreachable) but never collide.
        self._cache: Dict[int, _CachedAnswer] = {}
        self._query_cache = query_cache
        self.statistics = SolverStatistics()

    # -- assertion management ------------------------------------------------------

    def add(self, *constraints: Term) -> None:
        """Assert one or more boolean terms."""
        for constraint in constraints:
            if not isinstance(constraint, Term) or not constraint.is_bool():
                raise SolverError(f"only boolean terms can be asserted, got {constraint!r}")
            self._assertions.append(constraint)

    def assertions(self) -> List[Term]:
        return list(self._assertions)

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        """Discard all assertions added since the matching ``push``."""
        if not self._scopes:
            raise SolverError("pop() without a matching push()")
        boundary = self._scopes.pop()
        del self._assertions[boundary:]

    def reset(self) -> None:
        """Drop every assertion and scope."""
        self._assertions.clear()
        self._scopes.clear()
        self._model = None

    # -- solving ---------------------------------------------------------------------

    def check(self, *extra: Term) -> str:
        """Decide satisfiability of the asserted constraints plus ``extra``."""
        started = clock()
        self.statistics.checks += 1
        self._model = None

        goal = simplify(And(*(self._assertions + list(extra)))) if (self._assertions or extra) else TRUE
        key = goal.uid

        if self._enable_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.statistics.cache_hits += 1
                self._model = cached.model
                self._count(cached.status)
                self.statistics.total_time += clock() - started
                return cached.status

        if self._query_cache is not None and not goal.is_true() and not goal.is_false():
            conjuncts = list(goal.args) if goal.op == Op.AND else [goal]
            hits_before = self._query_cache.statistics.hits
            status, model = self._query_cache.check(
                conjuncts, self._decide_slice, make_batch=self._make_batch
            )
            self.statistics.qcache_hits += self._query_cache.statistics.hits - hits_before
        else:
            status, model = self._decide(goal)
        self._model = model
        if self._enable_cache:
            self._cache[key] = _CachedAnswer(status, model, goal)
        self._count(status)
        self.statistics.total_time += clock() - started
        return status

    def is_satisfiable(self, *extra: Term) -> bool:
        """Convenience: True iff ``check`` returns SAT."""
        return self.check(*extra) == CheckResult.SAT

    def is_unsatisfiable(self, *extra: Term) -> bool:
        """Convenience: True iff ``check`` returns UNSAT."""
        return self.check(*extra) == CheckResult.UNSAT

    def model(self) -> Model:
        """Model of the last satisfiable ``check``."""
        if self._model is None:
            raise SolverError("model() is only available after a satisfiable check()")
        return self._model

    # -- internals ---------------------------------------------------------------------

    def _count(self, status: str) -> None:
        if status == CheckResult.SAT:
            self.statistics.sat += 1
        elif status == CheckResult.UNSAT:
            self.statistics.unsat += 1
        else:
            self.statistics.unknown += 1

    def _decide_slice(self, terms) -> tuple[str, Optional[Model]]:
        """Per-slice decision callback for the attached query cache."""
        return self._decide(terms[0] if len(terms) == 1 else mk_and(*terms))

    def _decide(self, goal: Term) -> tuple[str, Optional[Model]]:
        if goal.is_true():
            return CheckResult.SAT, Model({})
        if goal.is_false():
            return CheckResult.UNSAT, None

        quick = quick_check(goal)
        if quick.status == QuickCheckResult.UNSAT:
            self.statistics.quick_check_hits += 1
            return CheckResult.UNSAT, None
        if quick.status == QuickCheckResult.SAT:
            self.statistics.quick_check_hits += 1
            return CheckResult.SAT, Model(quick.model)

        blaster = BitBlaster()
        blaster.assert_term(goal)
        self.statistics.blast_passes += blaster.passes
        self.statistics.blast_cache_hits += blaster.cache_hits
        sat_solver = make_sat_solver(self.sat_backend, blaster.cnf.num_vars)
        if not _feed_cnf(sat_solver, blaster.cnf):
            return CheckResult.UNSAT, None
        self.statistics.sat_core_calls += 1
        outcome = sat_solver.solve(max_conflicts=self._max_conflicts)
        self.statistics.sat_conflicts += sat_solver.conflicts
        self.statistics.sat_decisions += sat_solver.decisions
        if outcome == SatResult.UNSAT:
            return CheckResult.UNSAT, None
        if outcome == SatResult.UNKNOWN:
            return CheckResult.UNKNOWN, None
        model = model_from_bits(
            blaster.variable_bits(), blaster.boolean_variables(), sat_solver.model()
        )
        return CheckResult.SAT, model

    def _make_batch(self, groups: Sequence[Sequence[Term]]) -> List:
        """Batched slice arena: one bit-blaster + one SAT core for all slices.

        Each slice's conjunction is Tseitin-encoded to a root literal in a
        *shared* CNF, fed once to a single solver; slice ``i`` is then one
        assumption solve under its root.  Encoding and solver construction
        are amortized over the slice set, and the encoding is lazy — it
        only happens if some slice actually misses every cache tier and
        the interval quick check (an earlier slice answering UNSAT means
        later slices never force the build at all).

        Sound because Tseitin definitions are satisfiable on their own:
        under root ``r_i`` only slice ``i``'s constraint is active, so
        verdicts match the solver-per-slice path (models may differ —
        any model of slice ``i`` is acceptable).
        """
        state: Dict[str, object] = {}

        def ensure_built() -> None:
            if state:
                return
            blaster = BitBlaster()
            roots = [
                blaster.blast_bool(terms[0] if len(terms) == 1 else mk_and(*terms))
                for terms in groups
            ]
            self.statistics.blast_passes += blaster.passes
            self.statistics.blast_cache_hits += blaster.cache_hits
            sat_solver = make_sat_solver(self.sat_backend, blaster.cnf.num_vars)
            state["ok"] = _feed_cnf(sat_solver, blaster.cnf)
            state["blaster"] = blaster
            state["solver"] = sat_solver
            state["roots"] = roots

        def solve_group(index: int):
            def run(terms: Sequence[Term]) -> tuple[str, Optional[Model]]:
                goal = terms[0] if len(terms) == 1 else mk_and(*terms)
                quick = quick_check(goal)
                if quick.status == QuickCheckResult.UNSAT:
                    self.statistics.quick_check_hits += 1
                    return CheckResult.UNSAT, None
                if quick.status == QuickCheckResult.SAT:
                    self.statistics.quick_check_hits += 1
                    return CheckResult.SAT, Model(quick.model)
                ensure_built()
                if not state["ok"]:
                    # A definitional CNF cannot be contradictory; if the
                    # feed still failed, degrade soundly (never cached).
                    return CheckResult.UNKNOWN, None
                sat_solver = state["solver"]
                conflicts_before = sat_solver.conflicts
                decisions_before = sat_solver.decisions
                self.statistics.sat_core_calls += 1
                outcome = sat_solver.solve(
                    assumptions=[state["roots"][index]],  # type: ignore[index]
                    max_conflicts=self._max_conflicts,
                )
                self.statistics.sat_conflicts += sat_solver.conflicts - conflicts_before
                self.statistics.sat_decisions += sat_solver.decisions - decisions_before
                if outcome == SatResult.UNSAT:
                    return CheckResult.UNSAT, None
                if outcome == SatResult.UNKNOWN:
                    return CheckResult.UNKNOWN, None
                blaster = state["blaster"]
                model = model_from_bits(
                    blaster.variable_bits(),  # type: ignore[attr-defined]
                    blaster.boolean_variables(),  # type: ignore[attr-defined]
                    sat_solver.model(),
                )
                return CheckResult.SAT, model

            return run

        return [solve_group(index) for index in range(len(groups))]


def _feed_cnf(sat_solver, cnf) -> bool:
    """Feed a whole CNF to a fresh SAT core; False on a trivially false clause.

    Uses the backend's bulk ``add_clause_stream`` (one call for the whole
    0-terminated flat buffer) when it has one, the per-clause loop
    otherwise.
    """
    sat_solver.reserve(cnf.num_vars)
    stream = getattr(sat_solver, "add_clause_stream", None)
    if stream is not None:
        return stream(cnf.flat)
    for clause in cnf.clauses:
        if not sat_solver.add_clause(clause):
            return False
    return True


def check_formula(formula: Term, max_conflicts: Optional[int] = 200_000) -> tuple[str, Optional[Model]]:
    """One-shot satisfiability check of a single boolean term."""
    solver = Solver(max_conflicts=max_conflicts, enable_cache=False)
    solver.add(formula)
    status = solver.check()
    model = solver.model() if status == CheckResult.SAT else None
    return status, model
