"""Models (satisfying assignments) returned by the solver."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

from .evaluate import Value, evaluate
from .terms import Term


class Model:
    """A satisfying assignment mapping variable names to concrete values.

    Variables that do not appear in the assignment are treated as zero /
    false when evaluating terms: the solver only records variables that
    were relevant to the query, and any value works for the others.
    """

    def __init__(self, assignment: Mapping[str, Value] | None = None) -> None:
        self._assignment: Dict[str, Value] = dict(assignment or {})

    def __getitem__(self, name: str) -> Value:
        return self._assignment[name]

    def get(self, name: str, default: Value = 0) -> Value:
        return self._assignment.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._assignment

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def items(self):
        return self._assignment.items()

    def as_dict(self) -> Dict[str, Value]:
        return dict(self._assignment)

    def evaluate(self, term: Term) -> Value:
        """Evaluate a term under this model (unbound variables default to 0/False)."""
        names = term.free_variables()
        env: Dict[str, Value] = {}
        for name, var in names.items():
            if name in self._assignment:
                env[name] = self._assignment[name]
            else:
                env[name] = False if var.is_bool() else 0
        return evaluate(term, env)

    def satisfies(self, term: Term) -> bool:
        """True if the boolean term evaluates to true under this model."""
        return bool(self.evaluate(term))

    def __repr__(self) -> str:
        entries = ", ".join(f"{k}={v}" for k, v in sorted(self._assignment.items()))
        return f"Model({entries})"


def model_from_bits(
    variable_bits: Mapping[tuple[str, int], list[int]],
    boolean_variables: Mapping[str, int],
    sat_assignment: list[bool],
) -> Model:
    """Build a model from the bit-blaster's variable map and a SAT assignment."""

    def lit_value(literal: int) -> bool:
        value = sat_assignment[abs(literal)] if abs(literal) < len(sat_assignment) else False
        return value if literal > 0 else not value

    assignment: Dict[str, Value] = {}
    for (name, _width), bits in variable_bits.items():
        value = 0
        for position, literal in enumerate(bits):
            if lit_value(literal):
                value |= 1 << position
        assignment[name] = value
    for name, literal in boolean_variables.items():
        assignment[name] = lit_value(literal)
    return Model(assignment)
