"""``repro.smt`` — a from-scratch QF_BV constraint solver.

The symbolic executor and verifier state all of their constraints in this
term language and decide them with :class:`Solver`.  The implementation
consists of an immutable term DAG, an algebraic simplifier, an
interval-domain quick check, a Tseitin bit-blaster, and a CDCL SAT core
selected through the pluggable backend seam (:mod:`repro.smt.backend`):
the flat-array :class:`ArraySolver` by default, the reference
:class:`SATSolver` oracle, or an external DIMACS solver subprocess.

Typical usage::

    from repro.smt import BitVec, BitVecVal, Solver, ULT, And

    x = BitVec("x", 8)
    solver = Solver()
    solver.add(And(ULT(x, 10), x > 3))
    assert solver.check() == "sat"
    print(solver.model()["x"])
"""

from .backend import (
    DEFAULT_BACKEND,
    ExternalSolver,
    SatBackend,
    available_backends,
    find_external_solver,
    make_sat_solver,
    parse_dimacs,
    parse_solver_output,
    to_dimacs,
)
from .builder import (
    AShR,
    And,
    BitVec,
    BitVecVal,
    Bool,
    BoolVal,
    Concat,
    Distinct,
    Eq,
    Extract,
    If,
    Iff,
    Implies,
    LShR,
    Not,
    Or,
    SGE,
    SGT,
    SLE,
    SLT,
    SignExt,
    UDiv,
    UGE,
    UGT,
    ULE,
    ULT,
    URem,
    Xor,
    ZeroExt,
    conjoin,
    disjoin,
    rename_variables,
    substitute,
)
from .errors import (
    BudgetExceededError,
    EvaluationError,
    InvalidTermError,
    SmtError,
    SolverError,
    SortMismatchError,
)
from .context import AssumptionChecker, ContextStatistics, SolverContext
from .evaluate import evaluate
from .model import Model
from .qcache import (
    QueryCache,
    QueryCacheStatistics,
    build_query_cache,
    slice_fingerprint,
    term_digest,
)
from .sat import SATSolver, SatResult
from .satcore import ArraySolver
from .simplify import is_literal_false, is_literal_true, simplify
from .slicing import Slice, free_variable_names, partition
from .solver import CheckResult, Solver, SolverStatistics, check_formula
from .sorts import BOOL, BitVecSort, BoolSort, Sort, bitvec
from .terms import FALSE, TRUE, Op, Term, intern_term, iter_dag, mk_term

__all__ = [
    "AShR",
    "And",
    "ArraySolver",
    "AssumptionChecker",
    "DEFAULT_BACKEND",
    "ExternalSolver",
    "SATSolver",
    "SatBackend",
    "SatResult",
    "BOOL",
    "BitVec",
    "BitVecSort",
    "BitVecVal",
    "Bool",
    "BoolSort",
    "BoolVal",
    "BudgetExceededError",
    "CheckResult",
    "Concat",
    "ContextStatistics",
    "Distinct",
    "Eq",
    "EvaluationError",
    "Extract",
    "FALSE",
    "If",
    "Iff",
    "Implies",
    "InvalidTermError",
    "LShR",
    "Model",
    "Not",
    "Op",
    "Or",
    "QueryCache",
    "QueryCacheStatistics",
    "SGE",
    "SGT",
    "SLE",
    "SLT",
    "SignExt",
    "Slice",
    "SmtError",
    "Solver",
    "SolverContext",
    "SolverError",
    "SolverStatistics",
    "Sort",
    "SortMismatchError",
    "TRUE",
    "Term",
    "UDiv",
    "UGE",
    "UGT",
    "ULE",
    "ULT",
    "URem",
    "Xor",
    "ZeroExt",
    "available_backends",
    "bitvec",
    "build_query_cache",
    "check_formula",
    "find_external_solver",
    "make_sat_solver",
    "parse_dimacs",
    "parse_solver_output",
    "to_dimacs",
    "conjoin",
    "disjoin",
    "evaluate",
    "free_variable_names",
    "intern_term",
    "is_literal_false",
    "is_literal_true",
    "iter_dag",
    "mk_term",
    "partition",
    "rename_variables",
    "simplify",
    "slice_fingerprint",
    "substitute",
    "term_digest",
]
