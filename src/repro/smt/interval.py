"""Unsigned-interval quick checks for conjunctions of simple constraints.

Path constraints produced by the symbolic executor are conjunctions of
comparisons between packet-field expressions and constants.  Before paying
for bit-blasting and SAT, the solver runs this light-weight pass: each
distinct non-constant sub-term appearing in a comparison against a
constant is treated as an opaque *pseudo-variable* with an unsigned
interval; intervals are intersected across the conjuncts.  An empty
interval proves unsatisfiability.  When every conjunct was understood and
every constrained term is a genuine variable, a model can be produced
directly, proving satisfiability without SAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .evaluate import evaluate
from .terms import Op, Term


@dataclass
class Interval:
    """A closed unsigned interval with a set of excluded points."""

    lo: int
    hi: int
    excluded: set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        if self.hi - self.lo + 1 <= len(self.excluded):
            # Only worth scanning when the exclusions could cover the interval.
            return all(value in self.excluded for value in range(self.lo, self.hi + 1))
        return False

    def pick(self) -> Optional[int]:
        """Return some value in the interval, or None if empty."""
        if self.lo > self.hi:
            return None
        for value in range(self.lo, min(self.hi, self.lo + len(self.excluded) + 1) + 1):
            if value not in self.excluded:
                return value
        return None


class QuickCheckResult:
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class QuickCheckOutcome:
    """Result of the interval pre-check, with a model when one was constructed."""

    status: str
    model: Dict[str, int] = field(default_factory=dict)
    reason: str = ""


def _conjuncts(term: Term) -> List[Term]:
    if term.op == Op.AND:
        parts: List[Term] = []
        for arg in term.args:
            parts.extend(_conjuncts(arg))
        return parts
    return [term]


def _term_key(term: Term) -> str:
    return term.to_sexpr(max_depth=64)


def quick_check(constraint: Term) -> QuickCheckOutcome:
    """Attempt to decide a constraint with interval reasoning alone.

    Returns an outcome whose ``status`` is ``UNSAT`` when a contradiction
    was found, ``SAT`` when a model was built (only possible when every
    conjunct is a simple comparison over plain variables), and ``UNKNOWN``
    otherwise.
    """
    if constraint.is_false():
        return QuickCheckOutcome(QuickCheckResult.UNSAT, reason="constant false")
    if constraint.is_true():
        return QuickCheckOutcome(QuickCheckResult.SAT, model={})

    intervals: Dict[str, Interval] = {}
    subjects: Dict[str, Term] = {}
    all_understood = True

    for conjunct in _conjuncts(constraint):
        understood = _apply_conjunct(conjunct, intervals, subjects)
        if not understood:
            all_understood = False

    for key, interval in intervals.items():
        if interval.is_empty():
            return QuickCheckOutcome(
                QuickCheckResult.UNSAT,
                reason=f"interval for {key} is empty ([{interval.lo}, {interval.hi}]"
                f" minus {len(interval.excluded)} exclusions)",
            )

    if not all_understood:
        return QuickCheckOutcome(QuickCheckResult.UNKNOWN)

    # Every conjunct was a simple comparison.  If every constrained subject is a
    # plain variable we can exhibit a model and conclude satisfiability.
    model: Dict[str, int] = {}
    for key, subject in subjects.items():
        if subject.op != Op.BV_VAR:
            return QuickCheckOutcome(QuickCheckResult.UNKNOWN)
        value = intervals[key].pick()
        if value is None:
            return QuickCheckOutcome(QuickCheckResult.UNSAT, reason=f"no value left for {key}")
        model[subject.name] = value  # type: ignore[index]
    # Confirm the model against the original constraint (defensive: interval
    # reasoning over independent variables cannot interact, but evaluation is cheap).
    try:
        if evaluate(constraint, model):
            return QuickCheckOutcome(QuickCheckResult.SAT, model=model)
    except Exception:  # pragma: no cover - defensive
        pass
    return QuickCheckOutcome(QuickCheckResult.UNKNOWN)


def _comparison_parts(conjunct: Term) -> Optional[Tuple[str, Term, int, bool]]:
    """Decompose ``conjunct`` into (op, subject, constant, subject_on_left)."""
    if conjunct.op not in (Op.EQ, Op.DISTINCT, Op.ULT, Op.ULE):
        return None
    left, right = conjunct.args
    if right.op == Op.BV_CONST and left.op != Op.BV_CONST:
        return conjunct.op, left, int(right.value), True  # type: ignore[arg-type]
    if left.op == Op.BV_CONST and right.op != Op.BV_CONST:
        return conjunct.op, right, int(left.value), False  # type: ignore[arg-type]
    return None


def _apply_conjunct(
    conjunct: Term, intervals: Dict[str, Interval], subjects: Dict[str, Term]
) -> bool:
    """Fold one conjunct into the interval map.  Returns True if understood."""
    negated = False
    if conjunct.op == Op.NOT:
        negated = True
        conjunct = conjunct.args[0]

    parts = _comparison_parts(conjunct)
    if parts is None:
        return False
    op, subject, constant, subject_left = parts
    if not subject.is_bitvec():
        return False

    key = _term_key(subject)
    interval = intervals.get(key)
    if interval is None:
        interval = Interval(0, (1 << subject.width) - 1)
        intervals[key] = interval
        subjects[key] = subject

    if negated:
        if op == Op.EQ:
            op = Op.DISTINCT
        elif op == Op.DISTINCT:
            op = Op.EQ
        elif op == Op.ULT:
            # not(subject < c)  ->  subject >= c ; not(c < subject) -> subject <= c
            op, subject_left = (Op.ULE, not subject_left)
        elif op == Op.ULE:
            op, subject_left = (Op.ULT, not subject_left)

    if op == Op.EQ:
        interval.lo = max(interval.lo, constant)
        interval.hi = min(interval.hi, constant)
    elif op == Op.DISTINCT:
        interval.excluded.add(constant)
    elif op == Op.ULT:
        if subject_left:
            interval.hi = min(interval.hi, constant - 1)
        else:
            interval.lo = max(interval.lo, constant + 1)
    elif op == Op.ULE:
        if subject_left:
            interval.hi = min(interval.hi, constant)
        else:
            interval.lo = max(interval.lo, constant)
    return True
