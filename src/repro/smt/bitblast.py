"""Bit-blasting of QF_BV terms into CNF.

Every bitvector term is translated into a list of SAT literals (least
significant bit first); every boolean term into a single literal.
Arithmetic uses ripple-carry adders, comparisons use ripple comparators,
shifts by symbolic amounts use barrel shifters, and division is encoded
through its multiplicative definition.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .cnf import CNFBuilder
from .errors import InvalidTermError
from .terms import Op, Term, intern_term


class BitBlaster:
    """Translates terms to CNF over a shared :class:`CNFBuilder`.

    The node caches are keyed by *interned* term uid and pin the term
    they encode: uids are never reused while the term is alive, so a
    structurally identical term built later — an ite-lifted merge DAG
    reassembling shared subterms, a reserialized summary constraint —
    reinterns to the pinned instance and reuses its encoding instead of
    re-blasting.  (The former ``id(term)``-keyed cache could neither
    survive reconstruction nor safely outlive unpinned subterms.)

    ``passes`` counts root-level blasts that missed the cache — genuine
    bit-blasting passes — and ``cache_hits`` counts every node answered
    from the cache; together they are the measure of how much work the
    shared-arena batching saves (see the acceptance gate in
    ``benchmarks/bench_path_merge.py``).
    """

    def __init__(self, cnf: CNFBuilder | None = None) -> None:
        self.cnf = cnf if cnf is not None else CNFBuilder()
        # Bitvector variables are shared by name so that structurally distinct
        # occurrences of the same symbol map to the same SAT variables.
        self._bv_vars: Dict[Tuple[str, int], List[int]] = {}
        self._bool_vars: Dict[str, int] = {}
        # Structural caches keyed by interned uid; the pinned term keeps
        # the whole encoded sub-DAG (and its uids) alive.
        self._bv_cache: Dict[int, Tuple[Term, List[int]]] = {}
        self._bool_cache: Dict[int, Tuple[Term, int]] = {}
        self.passes = 0
        self.cache_hits = 0
        self._depth = 0

    # -- public API -------------------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Assert that a boolean term holds."""
        literal = self.blast_bool(term)
        self.cnf.assert_lit(literal)

    def blast_bool(self, term: Term) -> int:
        """Return a literal equivalent to the boolean term."""
        if not term.is_bool():
            raise InvalidTermError(f"expected a boolean term, got {term!r}")
        term = intern_term(term)
        cached = self._bool_cache.get(term.uid)
        if cached is not None:
            self.cache_hits += 1
            return cached[1]
        if self._depth == 0:
            self.passes += 1
        self._depth += 1
        try:
            literal = self._blast_bool(term)
        finally:
            self._depth -= 1
        self._bool_cache[term.uid] = (term, literal)
        return literal

    def blast_bv(self, term: Term) -> List[int]:
        """Return the list of literals (LSB first) encoding a bitvector term."""
        if not term.is_bitvec():
            raise InvalidTermError(f"expected a bitvector term, got {term!r}")
        term = intern_term(term)
        cached = self._bv_cache.get(term.uid)
        if cached is not None:
            self.cache_hits += 1
            return cached[1]
        if self._depth == 0:
            self.passes += 1
        self._depth += 1
        try:
            bits = self._blast_bv(term)
        finally:
            self._depth -= 1
        if len(bits) != term.width:
            raise InvalidTermError(
                f"internal bit-blasting error: {term.op} produced {len(bits)} bits, "
                f"expected {term.width}"
            )
        self._bv_cache[term.uid] = (term, bits)
        return bits

    def variable_bits(self) -> Dict[Tuple[str, int], List[int]]:
        """Mapping from (variable name, width) to its SAT literals (for model extraction)."""
        return dict(self._bv_vars)

    def boolean_variables(self) -> Dict[str, int]:
        return dict(self._bool_vars)

    # -- boolean terms ------------------------------------------------------------------

    def _blast_bool(self, term: Term) -> int:
        cnf = self.cnf
        op = term.op
        if op == Op.BOOL_CONST:
            return cnf.TRUE if term.value else cnf.FALSE
        if op == Op.BOOL_VAR:
            assert term.name is not None
            literal = self._bool_vars.get(term.name)
            if literal is None:
                literal = cnf.new_var()
                self._bool_vars[term.name] = literal
            return literal
        if op == Op.NOT:
            return -self.blast_bool(term.args[0])
        if op == Op.AND:
            return cnf.lit_and_many([self.blast_bool(arg) for arg in term.args])
        if op == Op.OR:
            return cnf.lit_or_many([self.blast_bool(arg) for arg in term.args])
        if op == Op.XOR:
            return cnf.lit_xor(self.blast_bool(term.args[0]), self.blast_bool(term.args[1]))
        if op == Op.IMPLIES:
            return cnf.lit_or(-self.blast_bool(term.args[0]), self.blast_bool(term.args[1]))
        if op == Op.IFF:
            return cnf.lit_iff(self.blast_bool(term.args[0]), self.blast_bool(term.args[1]))
        if op == Op.BOOL_ITE:
            return cnf.lit_ite(
                self.blast_bool(term.args[0]),
                self.blast_bool(term.args[1]),
                self.blast_bool(term.args[2]),
            )
        if op == Op.EQ:
            return self._equal_bits(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == Op.DISTINCT:
            return -self._equal_bits(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == Op.ULT:
            return self._unsigned_less(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1]), strict=True
            )
        if op == Op.ULE:
            return self._unsigned_less(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1]), strict=False
            )
        if op == Op.SLT:
            return self._signed_less(term.args[0], term.args[1], strict=True)
        if op == Op.SLE:
            return self._signed_less(term.args[0], term.args[1], strict=False)
        raise InvalidTermError(f"cannot bit-blast boolean operator {op!r}")

    # -- bitvector terms ----------------------------------------------------------------

    def _blast_bv(self, term: Term) -> List[int]:
        cnf = self.cnf
        op = term.op
        width = term.width

        if op == Op.BV_CONST:
            value = int(term.value)  # type: ignore[arg-type]
            return [cnf.TRUE if (value >> bit) & 1 else cnf.FALSE for bit in range(width)]
        if op == Op.BV_VAR:
            assert term.name is not None
            key = (term.name, width)
            bits = self._bv_vars.get(key)
            if bits is None:
                bits = cnf.new_vars(width)
                self._bv_vars[key] = bits
            return bits

        if op in (Op.BV_AND, Op.BV_OR, Op.BV_XOR):
            a = self.blast_bv(term.args[0])
            b = self.blast_bv(term.args[1])
            gate = {Op.BV_AND: cnf.lit_and, Op.BV_OR: cnf.lit_or, Op.BV_XOR: cnf.lit_xor}[op]
            return [gate(a[i], b[i]) for i in range(width)]
        if op == Op.BV_NOT:
            return [-bit for bit in self.blast_bv(term.args[0])]
        if op == Op.BV_NEG:
            zero = [cnf.FALSE] * width
            return self._subtract(zero, self.blast_bv(term.args[0]))
        if op == Op.BV_ADD:
            return self._add(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == Op.BV_SUB:
            return self._subtract(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == Op.BV_MUL:
            return self._multiply(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op in (Op.BV_UDIV, Op.BV_UREM):
            quotient, remainder = self._divide(term.args[0], term.args[1])
            return quotient if op == Op.BV_UDIV else remainder
        if op in (Op.BV_SHL, Op.BV_LSHR, Op.BV_ASHR):
            return self._shift(term)
        if op == Op.BV_CONCAT:
            bits: List[int] = []
            for child in reversed(term.args):  # operands MSB-first; LSB part comes last
                bits.extend(self.blast_bv(child))
            return bits
        if op == Op.BV_EXTRACT:
            hi, lo = term.params
            return self.blast_bv(term.args[0])[lo : hi + 1]
        if op == Op.BV_ZEXT:
            return self.blast_bv(term.args[0]) + [cnf.FALSE] * term.params[0]
        if op == Op.BV_SEXT:
            inner = self.blast_bv(term.args[0])
            return inner + [inner[-1]] * term.params[0]
        if op == Op.BV_ITE:
            cond = self.blast_bool(term.args[0])
            then = self.blast_bv(term.args[1])
            other = self.blast_bv(term.args[2])
            return [cnf.lit_ite(cond, then[i], other[i]) for i in range(width)]
        raise InvalidTermError(f"cannot bit-blast bitvector operator {op!r}")

    # -- circuits -----------------------------------------------------------------------

    def _add(self, a: List[int], b: List[int], carry_in: int | None = None) -> List[int]:
        cnf = self.cnf
        carry = carry_in if carry_in is not None else cnf.FALSE
        out: List[int] = []
        for bit_a, bit_b in zip(a, b):
            partial = cnf.lit_xor(bit_a, bit_b)
            out.append(cnf.lit_xor(partial, carry))
            carry = cnf.lit_or(cnf.lit_and(bit_a, bit_b), cnf.lit_and(partial, carry))
        return out

    def _subtract(self, a: List[int], b: List[int]) -> List[int]:
        return self._add(a, [-bit for bit in b], carry_in=self.cnf.TRUE)

    def _multiply(self, a: List[int], b: List[int]) -> List[int]:
        cnf = self.cnf
        width = len(a)
        accumulator = [cnf.FALSE] * width
        for shift in range(width):
            partial = [cnf.FALSE] * shift
            partial += [cnf.lit_and(a[shift], b[i]) for i in range(width - shift)]
            accumulator = self._add(accumulator, partial)
        return accumulator

    def _divide(self, numerator: Term, denominator: Term) -> Tuple[List[int], List[int]]:
        """Encode unsigned division via the multiplicative definition.

        Fresh variables q, r are introduced with ``q*d + r == n`` (computed at
        double width to rule out overflow), ``r < d`` when ``d != 0``, and the
        SMT-LIB convention for division by zero (q = all ones, r = n).
        """
        cnf = self.cnf
        width = numerator.width
        n_bits = self.blast_bv(numerator)
        d_bits = self.blast_bv(denominator)
        q_bits = cnf.new_vars(width)
        r_bits = cnf.new_vars(width)

        zero_ext = [cnf.FALSE] * width
        wide_q = q_bits + zero_ext
        wide_d = d_bits + zero_ext
        wide_r = r_bits + zero_ext
        wide_n = n_bits + zero_ext
        product = self._multiply(wide_q, wide_d)
        total = self._add(product, wide_r)
        d_is_zero = -cnf.lit_or_many(d_bits)

        # d != 0  ->  q*d + r = n  and  r < d
        equality = self._equal_bits(total, wide_n)
        remainder_ok = self._unsigned_less(r_bits, d_bits, strict=True)
        cnf.add_clause([d_is_zero, equality])
        cnf.add_clause([d_is_zero, remainder_ok])
        # d == 0  ->  q = all-ones  and  r = n
        q_all_ones = cnf.lit_and_many(q_bits)
        r_equals_n = self._equal_bits(r_bits, n_bits)
        cnf.add_clause([-d_is_zero, q_all_ones])
        cnf.add_clause([-d_is_zero, r_equals_n])
        return q_bits, r_bits

    def _shift(self, term: Term) -> List[int]:
        cnf = self.cnf
        op = term.op
        value_bits = self.blast_bv(term.args[0])
        amount_term = term.args[1]
        width = term.width
        fill = value_bits[-1] if op == Op.BV_ASHR else cnf.FALSE

        # Constant shift amounts reduce to rewiring.
        if amount_term.op == Op.BV_CONST:
            amount = int(amount_term.value)  # type: ignore[arg-type]
            return self._shift_by_constant(value_bits, amount, op, fill)

        amount_bits = self.blast_bv(amount_term)
        current = list(value_bits)
        stage_bits = max(1, (width - 1).bit_length())
        for stage in range(len(amount_bits)):
            if stage < stage_bits:
                shifted = self._shift_by_constant(current, 1 << stage, op, fill)
                current = [
                    cnf.lit_ite(amount_bits[stage], shifted[i], current[i]) for i in range(width)
                ]
            else:
                # A set bit at or above log2(width) shifts everything out.
                overflow = amount_bits[stage]
                current = [cnf.lit_ite(overflow, fill, current[i]) for i in range(width)]
        return current

    def _shift_by_constant(self, bits: List[int], amount: int, op: str, fill: int) -> List[int]:
        width = len(bits)
        if amount >= width:
            return [fill] * width
        if op == Op.BV_SHL:
            return [self.cnf.FALSE] * amount + bits[: width - amount]
        return bits[amount:] + [fill] * amount

    def _equal_bits(self, a: List[int], b: List[int]) -> int:
        cnf = self.cnf
        return cnf.lit_and_many([cnf.lit_iff(x, y) for x, y in zip(a, b)])

    def _unsigned_less(self, a: List[int], b: List[int], strict: bool) -> int:
        cnf = self.cnf
        result = cnf.FALSE if strict else cnf.TRUE
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            less = cnf.lit_and(-bit_a, bit_b)
            equal = cnf.lit_iff(bit_a, bit_b)
            result = cnf.lit_or(less, cnf.lit_and(equal, result))
        return result

    def _signed_less(self, a: Term, b: Term, strict: bool) -> int:
        # Signed comparison = unsigned comparison with the sign bits flipped.
        bits_a = list(self.blast_bv(a))
        bits_b = list(self.blast_bv(b))
        bits_a[-1] = -bits_a[-1]
        bits_b[-1] = -bits_b[-1]
        return self._unsigned_less(bits_a, bits_b, strict=strict)
