"""Sorts (types) for the QF_BV term language.

Two sorts exist: the boolean sort and fixed-width bitvector sorts.  Sorts
are value objects: two ``BitVecSort`` instances with the same width compare
equal and hash identically, so they can be used as dictionary keys.
"""

from __future__ import annotations

from .errors import InvalidTermError


class Sort:
    """Base class for sorts.  Not instantiated directly."""

    __slots__ = ()

    def is_bool(self) -> bool:
        return isinstance(self, BoolSort)

    def is_bitvec(self) -> bool:
        return isinstance(self, BitVecSort)


class BoolSort(Sort):
    """The sort of boolean terms."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Bool"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


class BitVecSort(Sort):
    """The sort of bitvectors of a fixed positive width."""

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if not isinstance(width, int) or width <= 0:
            raise InvalidTermError(f"bitvector width must be a positive int, got {width!r}")
        self.width = width

    def __repr__(self) -> str:
        return f"BitVec({self.width})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitVecSort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("BitVecSort", self.width))

    @property
    def mask(self) -> int:
        """Bit mask covering every bit of this sort (``2**width - 1``)."""
        return (1 << self.width) - 1

    @property
    def modulus(self) -> int:
        """Number of distinct values of this sort (``2**width``)."""
        return 1 << self.width


#: Singleton boolean sort, shared by all boolean terms.
BOOL = BoolSort()


def bitvec(width: int) -> BitVecSort:
    """Return the bitvector sort of the given width (cached for small widths)."""
    cached = _SMALL_SORTS.get(width)
    if cached is not None:
        return cached
    return BitVecSort(width)


_SMALL_SORTS = {w: BitVecSort(w) for w in (1, 2, 4, 8, 16, 24, 32, 48, 64, 128)}
