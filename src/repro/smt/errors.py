"""Exception types raised by the :mod:`repro.smt` constraint solver."""

from __future__ import annotations


class SmtError(Exception):
    """Base class for all solver-related errors."""


class SortMismatchError(SmtError):
    """Raised when an operation is applied to terms of incompatible sorts.

    For example adding a 16-bit and a 32-bit bitvector, or using a
    bitvector where a boolean is required.
    """


class InvalidTermError(SmtError):
    """Raised when a term is constructed with malformed arguments.

    Examples: an extract whose bounds exceed the operand width, a
    bitvector constant that does not fit in its width, or an unknown
    operator passed to the generic constructor.
    """


class SolverError(SmtError):
    """Raised when the solver is used incorrectly.

    Examples: requesting a model before a satisfiable ``check()``, or
    popping more scopes than were pushed.
    """


class EvaluationError(SmtError):
    """Raised when a term cannot be evaluated under a given assignment.

    Typically this means the assignment does not bind one of the free
    variables appearing in the term.
    """


class BudgetExceededError(SmtError):
    """Raised when a solver query exceeds its configured resource budget."""
