"""Public construction API for SMT terms.

This module is the surface the rest of the code base imports: it mirrors
the small subset of the z3 Python API that the symbolic executor and the
verifier need, implemented on top of :mod:`repro.smt.terms`.
"""

from __future__ import annotations

from typing import Iterable, Union

from . import terms
from .errors import SortMismatchError
from .terms import FALSE, TRUE, Op, Term

TermLike = Union[Term, int, bool]


def BitVec(name: str, width: int) -> Term:
    """A fresh symbolic bitvector variable of the given width."""
    return terms.mk_bv_var(name, width)


def BitVecVal(value: int, width: int) -> Term:
    """A bitvector constant (value is reduced modulo ``2**width``)."""
    return terms.mk_bv_const(value, width)


def Bool(name: str) -> Term:
    """A fresh symbolic boolean variable."""
    return terms.mk_bool_var(name)


def BoolVal(value: bool) -> Term:
    """The boolean constant ``true`` or ``false``."""
    return TRUE if value else FALSE


def _as_bool(term: TermLike) -> Term:
    if isinstance(term, Term):
        if not term.is_bool():
            raise SortMismatchError(f"expected a boolean term, got {term!r}")
        return term
    if isinstance(term, bool):
        return BoolVal(term)
    raise SortMismatchError(f"expected a boolean term, got {term!r}")


def _as_bv(term: TermLike, width_hint: int | None = None) -> Term:
    if isinstance(term, Term):
        if not term.is_bitvec():
            raise SortMismatchError(f"expected a bitvector term, got {term!r}")
        return term
    if isinstance(term, int) and width_hint is not None:
        return BitVecVal(term, width_hint)
    raise SortMismatchError(f"expected a bitvector term, got {term!r}")


def And(*args: TermLike) -> Term:
    """Boolean conjunction (n-ary, flattened)."""
    return terms.mk_and(*[_as_bool(a) for a in args])


def Or(*args: TermLike) -> Term:
    """Boolean disjunction (n-ary, flattened)."""
    return terms.mk_or(*[_as_bool(a) for a in args])


def Not(arg: TermLike) -> Term:
    """Boolean negation."""
    return terms.mk_not(_as_bool(arg))


def Xor(a: TermLike, b: TermLike) -> Term:
    return terms.mk_xor(_as_bool(a), _as_bool(b))


def Implies(a: TermLike, b: TermLike) -> Term:
    return terms.mk_implies(_as_bool(a), _as_bool(b))


def Iff(a: TermLike, b: TermLike) -> Term:
    return terms.mk_eq(_as_bool(a), _as_bool(b))


def Eq(a: Term, b: TermLike) -> Term:
    """Equality between two bitvectors (or two booleans)."""
    if isinstance(b, int) and isinstance(a, Term) and a.is_bitvec():
        b = BitVecVal(b, a.width)
    return terms.mk_eq(a, b)  # type: ignore[arg-type]


def Distinct(a: Term, b: TermLike) -> Term:
    return Not(Eq(a, b))


def ULT(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.ULT, a, _as_bv(b, a.width))


def ULE(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.ULE, a, _as_bv(b, a.width))


def UGT(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.ULT, _as_bv(b, a.width), a)


def UGE(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.ULE, _as_bv(b, a.width), a)


def SLT(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.SLT, a, _as_bv(b, a.width))


def SLE(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.SLE, a, _as_bv(b, a.width))


def SGT(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.SLT, _as_bv(b, a.width), a)


def SGE(a: Term, b: TermLike) -> Term:
    return terms.mk_cmp(Op.SLE, _as_bv(b, a.width), a)


def If(cond: TermLike, then: Term, other: Term) -> Term:
    """If-then-else over bitvectors or booleans."""
    return terms.mk_ite(_as_bool(cond), then, other)


def Concat(*args: Term) -> Term:
    """Concatenate bitvectors, most-significant first."""
    return terms.mk_concat(*args)


def Extract(hi: int, lo: int, term: Term) -> Term:
    """Extract bits ``hi:lo`` (inclusive) from a bitvector."""
    return terms.mk_extract(term, hi, lo)


def ZeroExt(extra: int, term: Term) -> Term:
    """Zero-extend a bitvector by ``extra`` bits."""
    return terms.mk_zero_extend(term, extra)


def SignExt(extra: int, term: Term) -> Term:
    """Sign-extend a bitvector by ``extra`` bits."""
    return terms.mk_sign_extend(term, extra)


def UDiv(a: Term, b: TermLike) -> Term:
    return terms.mk_bv_binop(Op.BV_UDIV, a, _as_bv(b, a.width))


def URem(a: Term, b: TermLike) -> Term:
    return terms.mk_bv_binop(Op.BV_UREM, a, _as_bv(b, a.width))


def LShR(a: Term, b: TermLike) -> Term:
    """Logical shift right (``>>`` on terms is also logical)."""
    return terms.mk_bv_binop(Op.BV_LSHR, a, _as_bv(b, a.width))


def AShR(a: Term, b: TermLike) -> Term:
    """Arithmetic shift right."""
    return terms.mk_bv_binop(Op.BV_ASHR, a, _as_bv(b, a.width))


def conjoin(parts: Iterable[Term]) -> Term:
    """``And`` over an iterable (convenience for path-constraint assembly)."""
    return And(*list(parts))


def disjoin(parts: Iterable[Term]) -> Term:
    """``Or`` over an iterable."""
    return Or(*list(parts))


def substitute(term: Term, bindings: dict[str, Term]) -> Term:
    """Replace free variables by name with the supplied terms.

    This is the primitive the Step-2 composition engine uses to rewrite a
    downstream segment's constraint over the upstream segment's symbolic
    output: the downstream element's input variables are substituted with
    the upstream element's output expressions.
    """
    cache: dict[int, Term] = {}

    def walk(node: Term) -> Term:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        if node.is_var():
            result = bindings.get(node.name, node)  # type: ignore[arg-type]
            if result is not node and result.sort != node.sort:
                raise SortMismatchError(
                    f"substitution for {node.name!r} has sort {result.sort}, "
                    f"expected {node.sort}"
                )
        elif not node.args:
            result = node
        else:
            new_args = tuple(walk(arg) for arg in node.args)
            if all(a is b for a, b in zip(new_args, node.args)):
                result = node
            else:
                result = terms.mk_term(
                    node.op,
                    new_args,
                    node.sort,
                    value=node.value,
                    name=node.name,
                    params=node.params,
                )
        cache[id(node)] = result
        return result

    return walk(term)


def rename_variables(term: Term, suffix: str) -> Term:
    """Append ``suffix`` to every free variable name (used to freshen summaries)."""
    bindings: dict[str, Term] = {}
    for name, var in term.free_variables().items():
        if var.is_bitvec():
            bindings[name] = BitVec(name + suffix, var.width)
        else:
            bindings[name] = Bool(name + suffix)
    return substitute(term, bindings)
