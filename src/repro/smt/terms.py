"""Term language for the QF_BV (quantifier-free bitvector) theory.

Terms are immutable DAG nodes.  Each node carries an operator tag
(:class:`Op`), a tuple of child terms, a sort, and — for leaves — a
constant value or a variable name.  Construction performs sort checking
but no simplification; rewriting lives in :mod:`repro.smt.simplify`.

The module also gives bitvector terms the usual Python operator
overloads (``a + b``, ``a & b``, ``a == b`` builds an *equation term*,
etc.), which is the style the rest of the code base uses to state
constraints.

Terms are **hash-consed**: every constructor routes through
:func:`mk_term`, which interns structurally identical nodes into one
shared instance.  Interned terms carry a process-unique ``uid``, so
structural equality between interned terms is an ``is`` check, constraint
sets deduplicate by integer id, and downstream caches (the simplifier,
the bit-blaster, the feasibility memo) key on ``uid`` in O(1) instead of
rendering s-expressions.  The intern table holds weak references so terms
no longer reachable from live constraints can be collected; ``uid``s are
never reused.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Iterable, Iterator, Optional, Sequence, Union

from .errors import InvalidTermError, SortMismatchError
from .sorts import BOOL, BitVecSort, Sort, bitvec


class Op:
    """Operator tags for term nodes."""

    # Leaves.
    BV_CONST = "bv-const"
    BV_VAR = "bv-var"
    BOOL_CONST = "bool-const"
    BOOL_VAR = "bool-var"

    # Bitvector arithmetic / bitwise operators (all same-width binary unless noted).
    BV_ADD = "bvadd"
    BV_SUB = "bvsub"
    BV_MUL = "bvmul"
    BV_UDIV = "bvudiv"
    BV_UREM = "bvurem"
    BV_NEG = "bvneg"          # unary
    BV_AND = "bvand"
    BV_OR = "bvor"
    BV_XOR = "bvxor"
    BV_NOT = "bvnot"          # unary
    BV_SHL = "bvshl"
    BV_LSHR = "bvlshr"
    BV_ASHR = "bvashr"

    # Structural bitvector operators.
    BV_CONCAT = "concat"      # args are MSB-first
    BV_EXTRACT = "extract"    # params = (hi, lo), inclusive
    BV_ZEXT = "zero-extend"   # params = (extra_bits,)
    BV_SEXT = "sign-extend"   # params = (extra_bits,)
    BV_ITE = "bv-ite"         # args = (cond: Bool, then: BV, else: BV)

    # Predicates over bitvectors (produce booleans).
    EQ = "="
    DISTINCT = "distinct"
    ULT = "bvult"
    ULE = "bvule"
    SLT = "bvslt"
    SLE = "bvsle"

    # Boolean connectives.
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMPLIES = "=>"
    IFF = "<=>"
    BOOL_ITE = "bool-ite"

    #: Operators whose result sort is boolean.
    BOOL_RESULT = frozenset(
        {
            BOOL_CONST,
            BOOL_VAR,
            EQ,
            DISTINCT,
            ULT,
            ULE,
            SLT,
            SLE,
            NOT,
            AND,
            OR,
            XOR,
            IMPLIES,
            IFF,
            BOOL_ITE,
        }
    )

    #: Commutative operators (used by the simplifier for canonical ordering).
    COMMUTATIVE = frozenset({BV_ADD, BV_MUL, BV_AND, BV_OR, BV_XOR, EQ, AND, OR, XOR, IFF})


class Term:
    """An immutable node in the term DAG.

    Attributes:
        op: operator tag from :class:`Op`.
        args: child terms.
        sort: the term's sort.
        value: constant value for ``BV_CONST`` / ``BOOL_CONST`` leaves.
        name: variable name for ``BV_VAR`` / ``BOOL_VAR`` leaves.
        params: static parameters (extract bounds, extension widths).
        uid: process-unique integer id, assigned at construction and never
            reused.  Interned (canonical) terms share one uid per
            structural shape, which is what makes uid-keyed caches sound.
    """

    __slots__ = (
        "op",
        "args",
        "sort",
        "value",
        "name",
        "params",
        "uid",
        "_hash",
        "_interned",
        "_simplified",
        "__weakref__",
    )

    def __init__(
        self,
        op: str,
        args: Sequence["Term"] = (),
        sort: Optional[Sort] = None,
        value: Optional[Union[int, bool]] = None,
        name: Optional[str] = None,
        params: Sequence[int] = (),
    ) -> None:
        self.op = op
        self.args = tuple(args)
        self.sort = sort if sort is not None else BOOL
        self.value = value
        self.name = name
        self.params = tuple(params)
        self.uid = next(_UID_COUNTER)
        self._hash = hash((self.op, self.args, self.sort, self.value, self.name, self.params))
        self._interned = False
        self._simplified: Optional["Term"] = None

    # -- identity -----------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        """Structural equality for boolean terms; equation construction for bitvectors.

        Using ``==`` between two bitvector terms builds an :data:`Op.EQ`
        predicate (mirroring the z3 API the code base is written against).
        Boolean terms and non-term comparisons fall back to structural
        equality so terms remain usable in sets and dicts.
        """
        if isinstance(other, int) and self.sort.is_bitvec():
            return mk_eq(self, mk_bv_const(other, self.sort.width))  # type: ignore[return-value]
        if isinstance(other, Term) and self.sort.is_bitvec() and other.sort.is_bitvec():
            return mk_eq(self, other)  # type: ignore[return-value]
        if not isinstance(other, Term):
            return NotImplemented
        return self.structurally_equal(other)

    def __ne__(self, other: object) -> bool:
        if isinstance(other, int) and self.sort.is_bitvec():
            return mk_not(mk_eq(self, mk_bv_const(other, self.sort.width)))  # type: ignore[return-value]
        if isinstance(other, Term) and self.sort.is_bitvec() and other.sort.is_bitvec():
            return mk_not(mk_eq(self, other))  # type: ignore[return-value]
        if not isinstance(other, Term):
            return NotImplemented
        return not self.structurally_equal(other)

    def structurally_equal(self, other: "Term") -> bool:
        """True if ``self`` and ``other`` are the same term structurally."""
        if self is other:
            return True
        if self._interned and other._interned:
            # Interned terms are canonical: distinct instances differ structurally.
            return False
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.sort == other.sort
            and self.value == other.value
            and self.name == other.name
            and self.params == other.params
            and len(self.args) == len(other.args)
            and all(a.structurally_equal(b) for a, b in zip(self.args, other.args))
        )

    # -- introspection ------------------------------------------------------------

    @property
    def width(self) -> int:
        """Width of a bitvector term; raises for boolean terms."""
        if not isinstance(self.sort, BitVecSort):
            raise SortMismatchError(f"term {self!r} is not a bitvector")
        return self.sort.width

    def is_const(self) -> bool:
        return self.op in (Op.BV_CONST, Op.BOOL_CONST)

    def is_var(self) -> bool:
        return self.op in (Op.BV_VAR, Op.BOOL_VAR)

    def is_bool(self) -> bool:
        return self.sort.is_bool()

    def is_bitvec(self) -> bool:
        return self.sort.is_bitvec()

    def is_true(self) -> bool:
        return self.op == Op.BOOL_CONST and self.value is True

    def is_false(self) -> bool:
        return self.op == Op.BOOL_CONST and self.value is False

    def children(self) -> Iterator["Term"]:
        return iter(self.args)

    def free_variables(self) -> "dict[str, Term]":
        """Return a mapping from variable name to variable term for all leaves."""
        found: dict[str, Term] = {}
        stack = [self]
        seen: set[int] = set()
        while stack:
            term = stack.pop()
            key = id(term)
            if key in seen:
                continue
            seen.add(key)
            if term.is_var():
                assert term.name is not None
                found.setdefault(term.name, term)
            else:
                stack.extend(term.args)
        return found

    def size(self) -> int:
        """Number of distinct nodes in the term DAG (a proxy for term complexity)."""
        count = 0
        stack = [self]
        seen: set[int] = set()
        while stack:
            term = stack.pop()
            if id(term) in seen:
                continue
            seen.add(id(term))
            count += 1
            stack.extend(term.args)
        return count

    # -- printing -----------------------------------------------------------------

    def __repr__(self) -> str:
        return self.to_sexpr(max_depth=6)

    def to_sexpr(self, max_depth: int = 32) -> str:
        """Render the term as an SMT-LIB-flavoured s-expression string."""
        if self.op == Op.BV_CONST:
            return f"#x{self.value:0{(self.width + 3) // 4}x}"
        if self.op == Op.BOOL_CONST:
            return "true" if self.value else "false"
        if self.is_var():
            return str(self.name)
        if max_depth <= 0:
            return "(...)"
        head = self.op
        if self.op == Op.BV_EXTRACT:
            head = f"(_ extract {self.params[0]} {self.params[1]})"
        elif self.op in (Op.BV_ZEXT, Op.BV_SEXT):
            head = f"(_ {self.op} {self.params[0]})"
        parts = " ".join(arg.to_sexpr(max_depth - 1) for arg in self.args)
        return f"({head} {parts})"

    # -- operator overloads (bitvector sugar) ---------------------------------------

    def _coerce(self, other: Union["Term", int]) -> "Term":
        if isinstance(other, Term):
            return other
        if isinstance(other, int):
            return mk_bv_const(other, self.width)
        raise SortMismatchError(f"cannot combine bitvector term with {other!r}")

    def __add__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_ADD, self, self._coerce(other))

    def __radd__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_ADD, self._coerce(other), self)

    def __sub__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_SUB, self, self._coerce(other))

    def __rsub__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_SUB, self._coerce(other), self)

    def __mul__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_MUL, self, self._coerce(other))

    def __rmul__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_MUL, self._coerce(other), self)

    def __and__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_AND, self, self._coerce(other))

    def __rand__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_AND, self._coerce(other), self)

    def __or__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_OR, self, self._coerce(other))

    def __ror__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_OR, self._coerce(other), self)

    def __xor__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_XOR, self, self._coerce(other))

    def __rxor__(self, other: int) -> "Term":
        return mk_bv_binop(Op.BV_XOR, self._coerce(other), self)

    def __lshift__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_SHL, self, self._coerce(other))

    def __rshift__(self, other: Union["Term", int]) -> "Term":
        return mk_bv_binop(Op.BV_LSHR, self, self._coerce(other))

    def __invert__(self) -> "Term":
        return mk_bv_unop(Op.BV_NOT, self)

    def __neg__(self) -> "Term":
        return mk_bv_unop(Op.BV_NEG, self)

    # Unsigned comparisons (matching the dataplane's predominantly unsigned fields).
    def __lt__(self, other: Union["Term", int]) -> "Term":
        return mk_cmp(Op.ULT, self, self._coerce(other))

    def __le__(self, other: Union["Term", int]) -> "Term":
        return mk_cmp(Op.ULE, self, self._coerce(other))

    def __gt__(self, other: Union["Term", int]) -> "Term":
        return mk_cmp(Op.ULT, self._coerce(other), self)

    def __ge__(self, other: Union["Term", int]) -> "Term":
        return mk_cmp(Op.ULE, self._coerce(other), self)


# -- hash-consing -------------------------------------------------------------------

_UID_COUNTER = itertools.count(1)

#: Intern table mapping a structural key to the canonical term instance.
#: Values are weakly referenced: a shape no live constraint reaches is
#: collectable, and its entry disappears with it.  Keys embed child *uids*
#: (never ``id()``), so a collected child cannot alias a new one.
_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Term]" = weakref.WeakValueDictionary()


def _intern_key(
    op: str,
    args: tuple,
    sort: Sort,
    value: Optional[Union[int, bool]],
    name: Optional[str],
    params: tuple,
) -> tuple:
    return (op, tuple(arg.uid for arg in args), sort, value, name, params)


def mk_term(
    op: str,
    args: Sequence[Term] = (),
    sort: Optional[Sort] = None,
    value: Optional[Union[int, bool]] = None,
    name: Optional[str] = None,
    params: Sequence[int] = (),
) -> Term:
    """Build (or look up) the canonical interned term for the given shape."""
    canonical_args = tuple(
        arg if arg._interned else intern_term(arg) for arg in args
    )
    resolved_sort = sort if sort is not None else BOOL
    key = _intern_key(op, canonical_args, resolved_sort, value, name, tuple(params))
    hit = _INTERN_TABLE.get(key)
    if hit is not None:
        return hit
    term = Term(op, canonical_args, resolved_sort, value=value, name=name, params=params)
    term._interned = True
    _INTERN_TABLE[key] = term
    return term


def intern_term(term: Term) -> Term:
    """Return the canonical instance structurally equal to ``term``.

    ``intern_term(a) is intern_term(b)`` holds iff ``a`` and ``b`` are
    structurally equal.  Terms built through the public constructors are
    already interned and come back unchanged.
    """
    if term._interned:
        return term
    return mk_term(
        term.op, term.args, term.sort, value=term.value, name=term.name, params=term.params
    )


# -- constructors -------------------------------------------------------------------


def mk_bv_const(value: int, width: int) -> Term:
    """Build a bitvector constant, reducing ``value`` modulo ``2**width``."""
    if not isinstance(value, int):
        raise InvalidTermError(f"bitvector constant must be an int, got {value!r}")
    sort = bitvec(width)
    return mk_term(Op.BV_CONST, (), sort, value=value & sort.mask)


def mk_bv_var(name: str, width: int) -> Term:
    if not name:
        raise InvalidTermError("bitvector variable needs a non-empty name")
    return mk_term(Op.BV_VAR, (), bitvec(width), name=name)


def mk_bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def mk_bool_var(name: str) -> Term:
    if not name:
        raise InvalidTermError("boolean variable needs a non-empty name")
    return mk_term(Op.BOOL_VAR, (), BOOL, name=name)


def _require_bv(term: Term, what: str) -> None:
    if not term.is_bitvec():
        raise SortMismatchError(f"{what} expects a bitvector, got {term!r}")


def _require_bool(term: Term, what: str) -> None:
    if not term.is_bool():
        raise SortMismatchError(f"{what} expects a boolean, got {term!r}")


def _require_same_width(a: Term, b: Term, what: str) -> None:
    _require_bv(a, what)
    _require_bv(b, what)
    if a.width != b.width:
        raise SortMismatchError(f"{what} widths differ: {a.width} vs {b.width}")


def mk_bv_binop(op: str, a: Term, b: Term) -> Term:
    _require_same_width(a, b, op)
    return mk_term(op, (a, b), a.sort)


def mk_bv_unop(op: str, a: Term) -> Term:
    _require_bv(a, op)
    return mk_term(op, (a,), a.sort)


def mk_cmp(op: str, a: Term, b: Term) -> Term:
    _require_same_width(a, b, op)
    return mk_term(op, (a, b), BOOL)


def mk_eq(a: Term, b: Term) -> Term:
    if a.is_bool() and b.is_bool():
        return mk_term(Op.IFF, (a, b), BOOL)
    _require_same_width(a, b, "=")
    return mk_term(Op.EQ, (a, b), BOOL)


def mk_not(a: Term) -> Term:
    _require_bool(a, "not")
    return mk_term(Op.NOT, (a,), BOOL)


def _flatten(op: str, terms: Iterable[Term]) -> list[Term]:
    flat: list[Term] = []
    for term in terms:
        _require_bool(term, op)
        if term.op == op:
            flat.extend(term.args)
        else:
            flat.append(term)
    return flat


def mk_and(*terms: Term) -> Term:
    flat = _flatten(Op.AND, terms)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return mk_term(Op.AND, flat, BOOL)


def mk_or(*terms: Term) -> Term:
    flat = _flatten(Op.OR, terms)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return mk_term(Op.OR, flat, BOOL)


def mk_xor(a: Term, b: Term) -> Term:
    _require_bool(a, "xor")
    _require_bool(b, "xor")
    return mk_term(Op.XOR, (a, b), BOOL)


def mk_implies(a: Term, b: Term) -> Term:
    _require_bool(a, "=>")
    _require_bool(b, "=>")
    return mk_term(Op.IMPLIES, (a, b), BOOL)


def mk_ite(cond: Term, then: Term, other: Term) -> Term:
    _require_bool(cond, "ite condition")
    if then.is_bool() and other.is_bool():
        return mk_term(Op.BOOL_ITE, (cond, then, other), BOOL)
    _require_same_width(then, other, "ite")
    return mk_term(Op.BV_ITE, (cond, then, other), then.sort)


def mk_concat(*terms: Term) -> Term:
    """Concatenate bitvectors, most-significant operand first."""
    if not terms:
        raise InvalidTermError("concat needs at least one operand")
    for term in terms:
        _require_bv(term, "concat")
    if len(terms) == 1:
        return terms[0]
    total = sum(term.width for term in terms)
    return mk_term(Op.BV_CONCAT, terms, bitvec(total))


def mk_extract(term: Term, hi: int, lo: int) -> Term:
    """Extract bits ``hi`` down to ``lo`` (inclusive, LSB is bit 0)."""
    _require_bv(term, "extract")
    if not (0 <= lo <= hi < term.width):
        raise InvalidTermError(
            f"extract bounds [{hi}:{lo}] out of range for width {term.width}"
        )
    return mk_term(Op.BV_EXTRACT, (term,), bitvec(hi - lo + 1), params=(hi, lo))


def mk_zero_extend(term: Term, extra: int) -> Term:
    _require_bv(term, "zero-extend")
    if extra < 0:
        raise InvalidTermError("zero-extend amount must be non-negative")
    if extra == 0:
        return term
    return mk_term(Op.BV_ZEXT, (term,), bitvec(term.width + extra), params=(extra,))


def mk_sign_extend(term: Term, extra: int) -> Term:
    _require_bv(term, "sign-extend")
    if extra < 0:
        raise InvalidTermError("sign-extend amount must be non-negative")
    if extra == 0:
        return term
    return mk_term(Op.BV_SEXT, (term,), bitvec(term.width + extra), params=(extra,))


# -- DAG transport ------------------------------------------------------------------


def iter_dag(roots: Sequence[Term], seen: Optional[set] = None) -> Iterator[Term]:
    """Yield every distinct node reachable from ``roots``, children first.

    Each interned term is yielded exactly once (deduplicated by ``uid``),
    and every term appears after all of its children — the topological
    order a serializer needs to emit a hash-consed DAG without expanding
    shared subterms.  Iterative, so arbitrarily deep terms (byte-select
    chains, long conjunctions) do not hit the recursion limit.

    ``seen`` (a mutable set of uids) lets a caller thread the walk across
    multiple invocations: nodes whose uid is already in the set are
    pruned without traversal, and every yielded node's uid is added.  An
    encoder emitting many roots into one table stays O(DAG) overall.
    """
    emitted: set = seen if seen is not None else set()
    stack: list[tuple[Term, bool]] = [(intern_term(root), False) for root in reversed(roots)]
    while stack:
        term, expanded = stack.pop()
        if term.uid in emitted:
            continue
        if expanded:
            emitted.add(term.uid)
            yield term
        else:
            stack.append((term, True))
            for arg in reversed(term.args):
                if arg.uid not in emitted:
                    stack.append((arg, False))


#: Shared boolean constants.
TRUE = mk_term(Op.BOOL_CONST, (), BOOL, value=True)
FALSE = mk_term(Op.BOOL_CONST, (), BOOL, value=False)
