"""A CDCL SAT solver.

This is the decision backend of the bitvector solver: conflict-driven
clause learning with two-watched-literal propagation, VSIDS-style
activity-based branching, first-UIP conflict analysis, non-chronological
backjumping, phase saving, and Luby-sequence restarts.

The implementation favours clarity over raw speed — the formulas produced
by bit-blasting dataplane constraints are small (thousands of variables),
so a straightforward CDCL loop is more than adequate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..obs.slowlog import sat_observer

UNASSIGNED = 0
TRUE = 1
FALSE = -1

#: Conflicts allowed before the first restart; later restarts scale this
#: by the Luby sequence.
RESTART_BASE = 64


def luby(index: int) -> int:
    """The 1-based Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, ...

    Restart limits scaled by this sequence are a well-known universal
    strategy: within a constant factor of the optimal restart schedule
    for any (unknown) runtime distribution, unlike a geometric schedule
    which commits to one growth rate.
    """
    if index < 1:
        raise ValueError("luby() is defined for 1-based indices")
    while True:
        size = 1 << index.bit_length()
        if index == size - 1:
            return size >> 1
        index = index - (size >> 1) + 1


class SatResult:
    """Tri-state result of a SAT call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class SATSolver:
    """CDCL solver over clauses of integer literals (DIMACS conventions).

    ``max_learned`` bounds the learned-clause database: past it the solver
    restarts and drops the low-activity half of the non-binary, non-locked
    learned clauses (:meth:`_reduce_learned`).  ``None`` keeps every
    learned clause forever — the historical behaviour.
    """

    def __init__(self, num_vars: int = 0, max_learned: Optional[int] = None) -> None:
        self._num_vars = 0
        # Indexed by variable (1-based); index 0 unused.
        self._assign: List[int] = [UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        # Watch lists indexed by literal encoded as 2*v (positive) / 2*v+1 (negative).
        # Each entry is a mutable [blocker, clause] pair: when the cached
        # blocker literal is already true the clause is satisfied and the
        # walk skips it without dereferencing the clause at all.
        self._watches: List[List[List[object]]] = [[], []]
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        # Learned-clause activities keyed by clause identity; entries are
        # written at learning time and pruned on reduction, so a recycled
        # id can never carry a stale score into a live clause.
        self._learned_act: dict = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagate_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self.max_learned = max_learned
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.db_reductions = 0
        self._ensure_vars(num_vars)

    # -- public API -------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def reserve(self, num_vars: int) -> None:
        """Grow the variable tables to ``num_vars``.

        Needed by incremental callers whose assumption literals mention
        variables that appear in no clause (a blasted term can reduce to a
        bare input bit).
        """
        self._ensure_vars(num_vars)

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause.  Returns False if the formula became trivially unsatisfiable.

        Callers adding clauses to a solver that has already run must
        :meth:`cancel` first; literals decided at the root level are
        simplified away here (they are permanent), which keeps the
        two-watched-literal invariant for incrementally added clauses.
        """
        if not self._ok:
            return False
        seen: set[int] = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_vars(abs(lit))
            value = self._lit_value(lit)
            if value != UNASSIGNED and self._level[abs(lit)] == 0:
                if value == TRUE:
                    return True  # satisfied at the root forever
                continue  # permanently false literal: drop it
            if -lit in seen:
                return True  # tautology: always satisfied, skip
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue_root(clause[0]):
                self._ok = False
                return False
            return True
        self._clauses.append(clause)
        self._watch_clause(clause)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Solve the formula, optionally under assumptions and a conflict budget.

        Returns one of :class:`SatResult`'s values.  ``UNKNOWN`` is only
        returned when ``max_conflicts`` is exhausted.  The budget applies to
        *this* call: on a persistent solver the conflicts of earlier queries
        do not count against it.
        """
        observer = sat_observer("reference")
        if observer is None:
            return self._solve(assumptions, max_conflicts)
        conflicts = self.conflicts
        decisions = self.decisions
        restarts = self.restarts
        result = self._solve(assumptions, max_conflicts)
        observer.finish(
            result,
            self.conflicts - conflicts,
            self.decisions - decisions,
            self.restarts - restarts,
            assumptions=len(assumptions),
        )
        return result

    def _solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        if not self._ok:
            return SatResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult.UNSAT

        restart_number = 1
        restart_limit = RESTART_BASE * luby(restart_number)
        conflicts_since_restart = 0
        conflict_budget = None if max_conflicts is None else self.conflicts + max_conflicts
        assumptions = list(assumptions)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return SatResult.UNSAT
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._record_learned(learned)
                self._decay_activities()
                if conflict_budget is not None and self.conflicts >= conflict_budget:
                    self._backtrack(0)
                    return SatResult.UNKNOWN
                overfull = (
                    self.max_learned is not None and len(self._learned) >= self.max_learned
                )
                if conflicts_since_restart >= restart_limit or overfull:
                    conflicts_since_restart = 0
                    restart_number += 1
                    restart_limit = RESTART_BASE * luby(restart_number)
                    self.restarts += 1
                    self._backtrack(0)
                    if overfull:
                        self._reduce_learned()
                continue

            # Place assumptions before free decisions.
            placed_all_assumptions = True
            assumption_conflict = False
            for lit in assumptions:
                value = self._lit_value(lit)
                if value == TRUE:
                    continue
                if value == FALSE:
                    assumption_conflict = True
                    break
                self.decisions += 1
                self._new_decision_level()
                self._enqueue(lit, None)
                placed_all_assumptions = False
                break
            if assumption_conflict:
                self._backtrack(0)
                return SatResult.UNSAT
            if not placed_all_assumptions:
                continue

            lit = self._pick_branch()
            if lit is None:
                return SatResult.SAT
            self.decisions += 1
            self._new_decision_level()
            self._enqueue(lit, None)

    def model(self) -> List[bool]:
        """Return the satisfying assignment as a list indexed by variable (index 0 unused)."""
        return [value == TRUE for value in self._assign]

    def cancel(self) -> None:
        """Undo all decisions and assumptions, keeping clauses and heuristics.

        Incremental callers must cancel before adding clauses so that watch
        initialisation and root-level unit enqueueing see only the permanent
        (level-0) assignment.
        """
        self._backtrack(0)

    @property
    def learned_clause_count(self) -> int:
        """Learned clauses currently retained (reused by later incremental calls)."""
        return len(self._learned)

    def value(self, var: int) -> bool:
        """Truth value of a variable in the current model (False if unassigned)."""
        return self._assign[var] == TRUE

    # -- internal machinery -------------------------------------------------------------

    def _ensure_vars(self, count: int) -> None:
        while self._num_vars < count:
            self._num_vars += 1
            self._assign.append(UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])

    @staticmethod
    def _lit_index(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _lit_value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _watch_clause(self, clause: List[int]) -> None:
        # Each watcher caches the *other* watched literal as its blocker.
        self._watches[self._lit_index(-clause[0])].append([clause[1], clause])
        self._watches[self._lit_index(-clause[1])].append([clause[0], clause])

    def _enqueue_root(self, lit: int) -> bool:
        value = self._lit_value(lit)
        if value == FALSE:
            return False
        if value == TRUE:
            return True
        return self._enqueue(lit, None)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        var = abs(lit)
        value = self._lit_value(lit)
        if value != UNASSIGNED:
            return value == TRUE
        self._assign[var] = TRUE if lit > 0 else FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation.  Returns a conflicting clause or None."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            self.propagations += 1
            watch_list = self._watches[self._lit_index(lit)]
            index = 0
            while index < len(watch_list):
                entry = watch_list[index]
                # A true blocker means the clause is satisfied: skip it
                # without even dereferencing the clause.
                if self._lit_value(entry[0]) == TRUE:
                    index += 1
                    continue
                clause = entry[1]
                # Normalise so that clause[1] is the falsified watch (-lit).
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == TRUE:
                    entry[0] = first  # refresh the blocker for next time
                    index += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._lit_value(candidate) != FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches[self._lit_index(-clause[1])].append([first, clause])
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if self._lit_value(first) == FALSE:
                    self._propagate_head = len(self._trail)
                    return clause
                entry[0] = first
                self._enqueue(first, clause)
                index += 1
        return None

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        """First-UIP conflict analysis.  Returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[List[int]] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            if id(reason) in self._learned_act:
                self._learned_act[id(reason)] += self._cla_inc
            for reason_lit in reason:
                if lit is not None and reason_lit == lit:
                    continue
                var = abs(reason_lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_lit)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit = self._trail[trail_index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[var]

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Backjump to the second-highest level in the learned clause.
            levels = sorted((self._level[abs(lit)] for lit in learned[1:]), reverse=True)
            backjump_level = levels[0]
            # Move a literal of that level into the first watch position.
            for position in range(1, len(learned)):
                if self._level[abs(learned[position])] == backjump_level:
                    learned[1], learned[position] = learned[position], learned[1]
                    break
        return learned, backjump_level

    def _record_learned(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        self._learned.append(learned)
        self._learned_act[id(learned)] = self._cla_inc
        self._watch_clause(learned)
        self._enqueue(learned[0], learned)

    def _reduce_learned(self) -> None:
        """Drop the low-activity half of the learned-clause database.

        Called at decision level 0 only.  Binary clauses (cheap to keep,
        expensive to relearn) and clauses locked as the reason of a root
        assignment survive every sweep; the rest are ranked by bump
        activity.  Watch lists are rebuilt from the retained clauses —
        their watch positions still satisfy the two-watched invariant
        under the unchanged root assignment.
        """
        locked = {
            id(self._reason[abs(lit)])
            for lit in self._trail
            if self._reason[abs(lit)] is not None
        }
        keep: List[List[int]] = []
        candidates: List[List[int]] = []
        for clause in self._learned:
            if len(clause) <= 2 or id(clause) in locked:
                keep.append(clause)
            else:
                candidates.append(clause)
        candidates.sort(key=lambda clause: self._learned_act[id(clause)], reverse=True)
        keep.extend(candidates[: len(candidates) // 2])
        self._learned = keep
        self._learned_act = {id(clause): self._learned_act[id(clause)] for clause in keep}
        for watch_list in self._watches:
            del watch_list[:]
        for clause in self._clauses:
            self._watch_clause(clause)
        for clause in self._learned:
            self._watch_clause(clause)
        self.db_reductions += 1

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for position in range(len(self._trail) - 1, boundary - 1, -1):
            var = abs(self._trail[position])
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._propagate_head = len(self._trail)
        self._propagate_head = boundary

    def _pick_branch(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == UNASSIGNED and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var == 0:
            return None
        return best_var if self._phase[best_var] else -best_var

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay


def solve_clauses(
    clauses: Iterable[Sequence[int]],
    num_vars: int = 0,
    assumptions: Sequence[int] = (),
    max_conflicts: Optional[int] = None,
) -> tuple[str, Optional[List[bool]]]:
    """Convenience wrapper: solve a clause set, return (result, model-or-None)."""
    solver = SATSolver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
    if result == SatResult.SAT:
        return result, solver.model()
    return result, None
