"""CNF formula builder shared by the bit-blaster and the SAT solver.

Variables are positive integers starting at 1; a literal is ``+v`` or
``-v``.  Variable 1 is reserved as the constant *true* (a unit clause pins
it), which lets the bit-blaster represent constant bits as literals
without special cases.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence


class CNFBuilder:
    """Accumulates clauses and allocates variables for one solver query.

    Clauses are kept twice: as ``clauses`` (a list of literal lists, the
    view every existing consumer iterates) and as ``flat`` (the same
    clauses as one contiguous 0-terminated ``array('i')``).  The flat
    mirror exists for backends with a bulk-feed path
    (``add_clause_stream``), which can ingest the whole formula without
    materializing a Python list per clause.
    """

    def __init__(self) -> None:
        self._num_vars = 1  # variable 1 is the constant-true variable
        self.clauses: List[List[int]] = [[self.TRUE]]
        self.flat: array = array("i", [self.TRUE, 0])

    #: Literal that is always true / always false in every model.
    TRUE = 1
    FALSE = -1

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause (a disjunction of literals)."""
        clause = list(literals)
        for lit in clause:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range (have {self._num_vars} vars)")
        self.clauses.append(clause)
        self.flat.extend(clause)
        self.flat.append(0)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # -- gate encodings (Tseitin) ----------------------------------------------------

    def lit_not(self, a: int) -> int:
        return -a

    def lit_and(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a AND b``."""
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE:
            return b
        if b == self.TRUE:
            return a
        if a == b:
            return a
        if a == -b:
            return self.FALSE
        out = self.new_var()
        self.add_clause([-a, -b, out])
        self.add_clause([a, -out])
        self.add_clause([b, -out])
        return out

    def lit_or(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a OR b``."""
        return -self.lit_and(-a, -b)

    def lit_xor(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a XOR b``."""
        if a == self.FALSE:
            return b
        if b == self.FALSE:
            return a
        if a == self.TRUE:
            return -b
        if b == self.TRUE:
            return -a
        if a == b:
            return self.FALSE
        if a == -b:
            return self.TRUE
        out = self.new_var()
        self.add_clause([-a, -b, -out])
        self.add_clause([a, b, -out])
        self.add_clause([a, -b, out])
        self.add_clause([-a, b, out])
        return out

    def lit_iff(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a <=> b``."""
        return -self.lit_xor(a, b)

    def lit_ite(self, cond: int, then: int, other: int) -> int:
        """Return a literal equivalent to ``cond ? then : other``."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        out = self.new_var()
        self.add_clause([-cond, -then, out])
        self.add_clause([-cond, then, -out])
        self.add_clause([cond, -other, out])
        self.add_clause([cond, other, -out])
        return out

    def lit_and_many(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of ``literals``."""
        pending = [lit for lit in literals if lit != self.TRUE]
        if any(lit == self.FALSE for lit in pending):
            return self.FALSE
        if not pending:
            return self.TRUE
        if len(pending) == 1:
            return pending[0]
        out = self.new_var()
        for lit in pending:
            self.add_clause([lit, -out])
        self.add_clause([-lit_ for lit_ in pending] + [out])
        return out

    def lit_or_many(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of ``literals``."""
        return -self.lit_and_many([-lit for lit in literals])

    def assert_lit(self, literal: int) -> None:
        """Force a literal to be true in every model."""
        self.add_clause([literal])
