"""Concrete evaluation of SMT terms under a variable assignment.

Used for three purposes: validating models returned by the SAT backend,
constant folding in the simplifier, and replaying counterexample packets
produced by the verifier on the concrete dataplane.
"""

from __future__ import annotations

from typing import Mapping, Union

from .errors import EvaluationError
from .terms import Op, Term

Value = Union[int, bool]


def _to_signed(value: int, width: int) -> int:
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def _mask(width: int) -> int:
    return (1 << width) - 1


def evaluate(term: Term, env: Mapping[str, Value] | None = None) -> Value:
    """Evaluate ``term`` under ``env`` (a mapping from variable name to value).

    Raises :class:`EvaluationError` if a free variable is unbound.
    Bitvector results are returned as non-negative ints reduced modulo the
    term's width; boolean results as ``bool``.
    """
    env = env or {}
    cache: dict[int, Value] = {}

    def walk(node: Term) -> Value:
        cached = cache.get(id(node))
        if cached is not None or id(node) in cache:
            return cache[id(node)]
        result = _eval_node(node, env, walk)
        cache[id(node)] = result
        return result

    return walk(term)


def _eval_node(node: Term, env: Mapping[str, Value], walk) -> Value:
    op = node.op

    # Leaves.
    if op == Op.BV_CONST:
        return int(node.value)  # type: ignore[arg-type]
    if op == Op.BOOL_CONST:
        return bool(node.value)
    if op in (Op.BV_VAR, Op.BOOL_VAR):
        if node.name not in env:
            raise EvaluationError(f"variable {node.name!r} is not bound in the assignment")
        value = env[node.name]
        if op == Op.BV_VAR:
            return int(value) & _mask(node.width)
        return bool(value)

    args = [walk(arg) for arg in node.args]

    # Bitvector arithmetic / bitwise.
    if op in _BV_BINOPS:
        width = node.width
        return _BV_BINOPS[op](int(args[0]), int(args[1]), width) & _mask(width)
    if op == Op.BV_NOT:
        return (~int(args[0])) & _mask(node.width)
    if op == Op.BV_NEG:
        return (-int(args[0])) & _mask(node.width)

    # Structural.
    if op == Op.BV_CONCAT:
        result = 0
        for child, value in zip(node.args, args):
            result = (result << child.width) | int(value)
        return result & _mask(node.width)
    if op == Op.BV_EXTRACT:
        hi, lo = node.params
        return (int(args[0]) >> lo) & _mask(hi - lo + 1)
    if op == Op.BV_ZEXT:
        return int(args[0])
    if op == Op.BV_SEXT:
        child = node.args[0]
        return _to_signed(int(args[0]), child.width) & _mask(node.width)
    if op == Op.BV_ITE:
        return int(args[1]) if bool(args[0]) else int(args[2])

    # Predicates.
    if op == Op.EQ:
        return int(args[0]) == int(args[1])
    if op == Op.DISTINCT:
        return int(args[0]) != int(args[1])
    if op == Op.ULT:
        return int(args[0]) < int(args[1])
    if op == Op.ULE:
        return int(args[0]) <= int(args[1])
    if op == Op.SLT:
        width = node.args[0].width
        return _to_signed(int(args[0]), width) < _to_signed(int(args[1]), width)
    if op == Op.SLE:
        width = node.args[0].width
        return _to_signed(int(args[0]), width) <= _to_signed(int(args[1]), width)

    # Boolean connectives.
    if op == Op.NOT:
        return not bool(args[0])
    if op == Op.AND:
        return all(bool(a) for a in args)
    if op == Op.OR:
        return any(bool(a) for a in args)
    if op == Op.XOR:
        return bool(args[0]) != bool(args[1])
    if op == Op.IMPLIES:
        return (not bool(args[0])) or bool(args[1])
    if op == Op.IFF:
        return bool(args[0]) == bool(args[1])
    if op == Op.BOOL_ITE:
        return bool(args[1]) if bool(args[0]) else bool(args[2])

    raise EvaluationError(f"cannot evaluate operator {op!r}")


def _udiv(a: int, b: int, width: int) -> int:
    # SMT-LIB semantics: division by zero yields the all-ones vector.
    return _mask(width) if b == 0 else a // b


def _urem(a: int, b: int, width: int) -> int:
    # SMT-LIB semantics: remainder by zero yields the dividend.
    return a if b == 0 else a % b


def _shl(a: int, b: int, width: int) -> int:
    return 0 if b >= width else a << b


def _lshr(a: int, b: int, width: int) -> int:
    return 0 if b >= width else a >> b


def _ashr(a: int, b: int, width: int) -> int:
    signed = _to_signed(a, width)
    shift = min(b, width)
    return (signed >> shift) & _mask(width)


_BV_BINOPS = {
    Op.BV_ADD: lambda a, b, w: a + b,
    Op.BV_SUB: lambda a, b, w: a - b,
    Op.BV_MUL: lambda a, b, w: a * b,
    Op.BV_UDIV: _udiv,
    Op.BV_UREM: _urem,
    Op.BV_AND: lambda a, b, w: a & b,
    Op.BV_OR: lambda a, b, w: a | b,
    Op.BV_XOR: lambda a, b, w: a ^ b,
    Op.BV_SHL: _shl,
    Op.BV_LSHR: _lshr,
    Op.BV_ASHR: _ashr,
}
